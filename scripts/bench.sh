#!/usr/bin/env bash
# Wall-clock benchmark of the controller hot path: times the fixed
# paper-lineup sweep (tcm-run --bench-json) twice — once with the default
# indexed request queue and once with the pre-refactor flat queue
# (--features tcm-dram/flat-queue) — and merges the two records into
# BENCH_hotpath.json with the measured speedup. Results are bit-identical
# between the builds; only the wall clock differs.
#
# Usage:
#   scripts/bench.sh            full run (2M-cycle horizon per cell)
#   scripts/bench.sh --smoke    quick schema-validating run (CI gate)
#
# Everything works offline; JSON merging uses python3 (stdlib only).
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES=2000000
SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    CYCLES=100000
elif [[ -n "${1:-}" ]]; then
    echo "usage: scripts/bench.sh [--smoke]" >&2
    exit 2
fi

TMPDIR_BENCH=$(mktemp -d)
trap 'rm -rf "$TMPDIR_BENCH"' EXIT
# Smoke mode must not clobber the committed full-run record with tiny
# numbers: it writes to a scratch path and, after validating that, also
# schema-checks the committed BENCH_hotpath.json if present.
OUT=BENCH_hotpath.json
if [[ "$SMOKE" == 1 ]]; then
    OUT="$TMPDIR_BENCH/BENCH_hotpath.json"
fi

run_variant() {
    local impl="$1"; shift
    echo "==> build + run: $impl queue"
    # Both variants build the same binary path, so build and run in
    # sequence rather than in parallel.
    cargo build --release --offline -p tcm-sim --bin tcm-run "$@"
    ./target/release/tcm-run --bench-json "$TMPDIR_BENCH/$impl.json" --cycles "$CYCLES"
}

run_variant indexed
run_variant flat --features tcm-dram/flat-queue
# Leave the default build in place for whoever runs next.
cargo build --release --offline -p tcm-sim --bin tcm-run >/dev/null 2>&1 || true

python3 - "$TMPDIR_BENCH/indexed.json" "$TMPDIR_BENCH/flat.json" "$OUT" "$SMOKE" <<'PY'
import json
import sys

indexed_path, flat_path, out_path, smoke = sys.argv[1:5]

REQUIRED = {
    "schema": str, "queue_impl": str, "threads": int, "horizon": int,
    "policies": list, "workloads": list, "cells": int, "alone_runs": int,
    "workers": int, "sim_cycles": int, "wall_secs": float,
    "sim_cycles_per_sec": float, "cells_per_sec": float,
    "peak_queue_depth": int,
}

def load(path, expect_impl):
    with open(path) as f:
        record = json.load(f)
    for key, kind in REQUIRED.items():
        if key not in record:
            sys.exit(f"{path}: missing key {key!r}")
        if not isinstance(record[key], kind):
            sys.exit(f"{path}: key {key!r} is {type(record[key]).__name__}, "
                     f"expected {kind.__name__}")
    if record["schema"] != "tcm-bench-hotpath-v1":
        sys.exit(f"{path}: unexpected schema {record['schema']!r}")
    if record["queue_impl"] != expect_impl:
        sys.exit(f"{path}: queue_impl {record['queue_impl']!r}, "
                 f"expected {expect_impl!r}")
    if record["sim_cycles_per_sec"] <= 0:
        sys.exit(f"{path}: non-positive sim_cycles_per_sec")
    return record

indexed = load(indexed_path, "indexed")
flat = load(flat_path, "flat")
for key in ("threads", "horizon", "cells", "policies", "workloads"):
    if indexed[key] != flat[key]:
        sys.exit(f"variant mismatch on {key!r}: "
                 f"{indexed[key]!r} vs {flat[key]!r}")
# Same simulation either way: the peak depth is a behavioral quantity and
# must agree bit-for-bit between the builds.
if indexed["peak_queue_depth"] != flat["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs between builds — the refactor is "
             "supposed to be bit-identical")

speedup = indexed["sim_cycles_per_sec"] / flat["sim_cycles_per_sec"]
merged = {
    "schema": "tcm-bench-hotpath-v1",
    "generated_by": "scripts/bench.sh" + (" --smoke" if smoke == "1" else ""),
    "indexed": indexed,
    "flat": flat,
    "speedup_indexed_over_flat": speedup,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

print(f"indexed: {indexed['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({indexed['wall_secs']:.2f}s)")
print(f"flat:    {flat['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({flat['wall_secs']:.2f}s)")
print(f"speedup (indexed over flat): {speedup:.2f}x -> {out_path}")
if smoke == "1":
    print("smoke mode: schema validated; absolute numbers not gated")
    # Also schema-check the committed record, if one exists.
    import os
    if os.path.exists("BENCH_hotpath.json"):
        with open("BENCH_hotpath.json") as f:
            committed = json.load(f)
        for key in ("schema", "indexed", "flat", "speedup_indexed_over_flat"):
            if key not in committed:
                sys.exit(f"committed BENCH_hotpath.json: missing key {key!r}")
        if committed["schema"] != "tcm-bench-hotpath-v1":
            sys.exit("committed BENCH_hotpath.json: unexpected schema")
        for impl in ("indexed", "flat"):
            for key in REQUIRED:
                if key not in committed[impl]:
                    sys.exit(f"committed BENCH_hotpath.json [{impl}]: "
                             f"missing key {key!r}")
        print("committed BENCH_hotpath.json: schema ok")
PY
