#!/usr/bin/env bash
# Wall-clock benchmark of the controller hot path: times the fixed
# paper-lineup sweep (tcm-run --bench-json) six times — with the default
# indexed request queue, on a 2x2 multi-controller topology with the
# controller phase sharded over two host threads (default build), the
# same 2x2 sweep with the protocol checker armed and again with an
# empty fault plan installed (isolating the chaos layer's cost), with
# the pre-refactor flat queue (--features tcm-dram/flat-queue), and with
# the telemetry hooks compiled out (--features tcm-telemetry/off) — and
# merges the records into BENCH_hotpath.json with the measured queue
# speedup, the disabled-telemetry overhead, and the empty-plan chaos
# overhead. The single-controller builds are bit-identical to each
# other (the multi rows simulate a different machine); only the wall
# clock differs. The full run gates the telemetry-hook overhead and the
# empty-fault-plan overhead at <2% each (disabled hooks are one branch
# on a None option; an inert chaos layer is a None check per window);
# smoke mode only reports them, since sub-second runs are all noise.
# A final leg times a daemon sweep with and without a `tcm-run top`
# observer attached and gates the perturbation at <2% — watching the
# daemon must not slow it down.
#
# Usage:
#   scripts/bench.sh            full run (2M-cycle horizon per cell)
#   scripts/bench.sh --smoke    quick schema-validating run (CI gate)
#
# Everything works offline; JSON merging uses python3 (stdlib only).
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES=2000000
SMOKE=0
# Sub-second sweeps have several percent of run-to-run noise; the full
# run times each variant RUNS times and keeps the fastest, which is what
# the 2% telemetry-overhead gate is applied to. Contended machines need
# more samples for the overhead gates to converge: override with
# BENCH_RUNS.
RUNS="${BENCH_RUNS:-3}"
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    CYCLES=100000
    RUNS=1
elif [[ -n "${1:-}" ]]; then
    echo "usage: scripts/bench.sh [--smoke]" >&2
    exit 2
fi

TMPDIR_BENCH=$(mktemp -d)
trap 'rm -rf "$TMPDIR_BENCH"' EXIT
# Smoke mode must not clobber the committed full-run record with tiny
# numbers: it writes to a scratch path and, after validating that, also
# schema-checks the committed BENCH_hotpath.json if present.
OUT=BENCH_hotpath.json
if [[ "$SMOKE" == 1 ]]; then
    OUT="$TMPDIR_BENCH/BENCH_hotpath.json"
fi

# All feature variants build the same binary path, so build each in
# sequence and squirrel the binary away; the timed runs then interleave
# *across* variants round-robin. Sequential per-variant timing blocks
# would let slow machine-load drift masquerade as variant overhead —
# interleaving spreads the drift evenly, which is what the <2% overhead
# gates assume.
build_variant() {
    local impl="$1"; shift
    echo "==> build: $impl"
    cargo build --release --offline -p tcm-serve --bin tcm-run "$@"
    cp target/release/tcm-run "$TMPDIR_BENCH/bin-$impl"
}

build_variant indexed
build_variant flat --features tcm-dram/flat-queue
build_variant nohooks --features tcm-telemetry/off
# Leave the default build in place for whoever runs next.
cargo build --release --offline -p tcm-serve --bin tcm-run >/dev/null 2>&1 || true

# The six timed variants:
# - indexed / flat / nohooks: the fixed flat-topology sweep on each
#   build (queue refactor A/B, telemetry-hook cost).
# - multi: the same sweep on a 2x2 topology (two controllers x two
#   channels, TCM cells coordinated by the meta-controller), controller
#   phase sharded over two host threads; runs on the default build.
# - multi_verify / multi_chaos: the multi sweep with the protocol
#   checker armed, then with an *empty* fault plan installed (same
#   checker plus the inert chaos state). The pair isolates the chaos
#   layer's overhead from the checker's; the full run gates it at <2% —
#   when no fault is scheduled, the layer must be free.
echo "==> timed runs: $RUNS interleaved rounds x 6 variants"
for k in $(seq "$RUNS"); do
    "$TMPDIR_BENCH/bin-indexed" \
        --bench-json "$TMPDIR_BENCH/indexed.run$k.json" --cycles "$CYCLES"
    "$TMPDIR_BENCH/bin-indexed" \
        --bench-json "$TMPDIR_BENCH/multi.run$k.json" --cycles "$CYCLES" \
        --topology 2x2 --intra-hosts 2
    "$TMPDIR_BENCH/bin-indexed" \
        --bench-json "$TMPDIR_BENCH/multi_verify.run$k.json" --cycles "$CYCLES" \
        --topology 2x2 --intra-hosts 2 --verify
    "$TMPDIR_BENCH/bin-indexed" \
        --bench-json "$TMPDIR_BENCH/multi_chaos.run$k.json" --cycles "$CYCLES" \
        --topology 2x2 --intra-hosts 2 --chaos-empty
    "$TMPDIR_BENCH/bin-flat" \
        --bench-json "$TMPDIR_BENCH/flat.run$k.json" --cycles "$CYCLES"
    "$TMPDIR_BENCH/bin-nohooks" \
        --bench-json "$TMPDIR_BENCH/nohooks.run$k.json" --cycles "$CYCLES"
done

python3 - "$TMPDIR_BENCH" "$OUT" "$SMOKE" <<'PY'
import glob
import json
import statistics
import sys

tmp, out_path, smoke = sys.argv[1:4]

REQUIRED = {
    "schema": str, "queue_impl": str, "topology": str, "threads": int,
    "horizon": int, "policies": list, "workloads": list, "cells": int,
    "alone_runs": int, "workers": int, "sim_cycles": int,
    "wall_secs": float, "sim_cycles_per_sec": float, "cells_per_sec": float,
    "peak_queue_depth": int,
}

def load(path, expect_impl):
    with open(path) as f:
        record = json.load(f)
    for key, kind in REQUIRED.items():
        if key not in record:
            sys.exit(f"{path}: missing key {key!r}")
        if not isinstance(record[key], kind):
            sys.exit(f"{path}: key {key!r} is {type(record[key]).__name__}, "
                     f"expected {kind.__name__}")
    if record["schema"] != "tcm-bench-hotpath-v1":
        sys.exit(f"{path}: unexpected schema {record['schema']!r}")
    if record["queue_impl"] != expect_impl:
        sys.exit(f"{path}: queue_impl {record['queue_impl']!r}, "
                 f"expected {expect_impl!r}")
    if record["sim_cycles_per_sec"] <= 0:
        sys.exit(f"{path}: non-positive sim_cycles_per_sec")
    return record

def load_runs(impl, expect_impl):
    paths = sorted(glob.glob(f"{tmp}/{impl}.run*.json"))
    if not paths:
        sys.exit(f"no bench records for variant {impl!r}")
    return [load(p, expect_impl) for p in paths]

def best(records):
    """Fastest repeated run: the quiet-floor throughput estimate, used
    for the headline variant records."""
    return max(records, key=lambda r: r["sim_cycles_per_sec"])

def median_rate(records):
    """Median throughput across the interleaved rounds: the robust
    estimate for the A/B *overhead ratios*, where a single lucky or
    unlucky round on a contended machine would otherwise swing the
    <2% gates by several points."""
    return statistics.median(r["sim_cycles_per_sec"] for r in records)

indexed_runs = load_runs("indexed", "indexed")
multi_runs = load_runs("multi", "indexed")
multi_verify_runs = load_runs("multi_verify", "indexed")
multi_chaos_runs = load_runs("multi_chaos", "indexed")
flat_runs = load_runs("flat", "flat")
nohooks_runs = load_runs("nohooks", "indexed")
indexed = best(indexed_runs)
multi = best(multi_runs)
multi_verify = best(multi_verify_runs)
multi_chaos = best(multi_chaos_runs)
flat = best(flat_runs)
nohooks = best(nohooks_runs)
if nohooks.get("telemetry_impl", "off") != "off":
    sys.exit("nohooks variant: expected the tcm-telemetry/off build")
if indexed["topology"] != "4":
    sys.exit(f"indexed variant: expected the flat 4-channel topology, "
             f"got {indexed['topology']!r}")
if multi["topology"] != "2x2":
    sys.exit(f"multi variant: expected the 2x2 topology, "
             f"got {multi['topology']!r}")
for name, other in (("multi_verify", multi_verify),
                    ("multi_chaos", multi_chaos)):
    if other["topology"] != "2x2":
        sys.exit(f"{name} variant: expected the 2x2 topology, "
                 f"got {other['topology']!r}")
for key in ("threads", "horizon", "cells", "policies", "workloads"):
    for name, other in (("multi", multi), ("multi_verify", multi_verify),
                        ("multi_chaos", multi_chaos), ("flat", flat),
                        ("nohooks", nohooks)):
        if indexed[key] != other[key]:
            sys.exit(f"variant mismatch ({name}) on {key!r}: "
                     f"{indexed[key]!r} vs {other[key]!r}")
# The empty fault plan and the bare checker simulate the same machine;
# an armed-but-inert chaos layer must not change a single behavioral
# bit.
if multi["peak_queue_depth"] != multi_verify["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs with the protocol checker armed — "
             "verification is supposed to be observation-only")
if multi_verify["peak_queue_depth"] != multi_chaos["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs under the empty fault plan — the "
             "inert chaos layer is supposed to be bit-identical")
# Same simulation either way: the peak depth is a behavioral quantity and
# must agree bit-for-bit between the builds.
if indexed["peak_queue_depth"] != flat["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs between builds — the refactor is "
             "supposed to be bit-identical")
if indexed["peak_queue_depth"] != nohooks["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs with telemetry hooks compiled out — "
             "disabled telemetry is supposed to be bit-identical")

speedup = indexed["sim_cycles_per_sec"] / flat["sim_cycles_per_sec"]
# Positive = the hooks build (telemetry disabled at runtime) is slower
# than the build with hooks compiled out entirely.
overhead_pct = 100.0 * (median_rate(nohooks_runs)
                        / median_rate(indexed_runs) - 1.0)
# Positive = the empty fault plan is slower than the bare checker: both
# arm the same protocol verification, so the delta is the chaos layer
# alone.
chaos_overhead_pct = 100.0 * (median_rate(multi_verify_runs)
                              / median_rate(multi_chaos_runs) - 1.0)
# The multi engine's remaining gap vs the flat (single-controller)
# engine on the same build: ROADMAP's "24x penalty" was this ratio at
# ~0.04. Recorded so the windowed engine's cost is tracked
# release-over-release instead of eyeballed. (The two variants simulate
# different machines — 4 flat channels vs 2x2 — so this is a
# same-horizon throughput ratio, not an A/B of identical work; 1.0 means
# the window-barrier machinery no longer costs wall clock.)
multi_over_flat = multi["sim_cycles_per_sec"] / indexed["sim_cycles_per_sec"]
merged = {
    "schema": "tcm-bench-hotpath-v1",
    "generated_by": "scripts/bench.sh" + (" --smoke" if smoke == "1" else ""),
    "indexed": indexed,
    "multi": multi,
    "multi_verify": multi_verify,
    "multi_chaos": multi_chaos,
    "flat": flat,
    "nohooks": nohooks,
    "speedup_indexed_over_flat": speedup,
    "multi_over_flat_ratio": multi_over_flat,
    "telemetry_disabled_overhead_pct": overhead_pct,
    "chaos_empty_plan_overhead_pct": chaos_overhead_pct,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

print(f"indexed: {indexed['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({indexed['wall_secs']:.2f}s)")
print(f"multi:   {multi['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({multi['wall_secs']:.2f}s, 2x2 topology, 2 intra-cell hosts)")
print(f"flat:    {flat['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({flat['wall_secs']:.2f}s)")
print(f"speedup (indexed over flat): {speedup:.2f}x -> {out_path}")
print(f"multi over flat-engine ratio: {multi_over_flat:.3f} "
      f"(windowed-engine gap; 1.0 = parity)")
print(f"telemetry hooks, disabled at runtime, vs compiled out: "
      f"{overhead_pct:+.2f}% overhead")
print(f"empty fault plan vs bare protocol checker (2x2): "
      f"{chaos_overhead_pct:+.2f}% overhead")
if smoke != "1" and overhead_pct > 2.0:
    sys.exit(f"disabled-telemetry overhead {overhead_pct:.2f}% exceeds the "
             f"2% budget — the hooks must stay one branch when disabled")
if smoke != "1" and chaos_overhead_pct > 2.0:
    sys.exit(f"empty-fault-plan overhead {chaos_overhead_pct:.2f}% exceeds "
             f"the 2% budget — an inert chaos layer must be free")
if smoke == "1":
    print("smoke mode: schema validated; absolute numbers not gated")
    # Also schema-check the committed record, if one exists.
    import os
    if os.path.exists("BENCH_hotpath.json"):
        with open("BENCH_hotpath.json") as f:
            committed = json.load(f)
        for key in ("schema", "indexed", "multi", "flat",
                    "speedup_indexed_over_flat", "multi_over_flat_ratio"):
            if key not in committed:
                sys.exit(f"committed BENCH_hotpath.json: missing key {key!r}")
        ratio = committed["multi_over_flat_ratio"]
        if not isinstance(ratio, float) or not 0.0 < ratio:
            sys.exit(f"committed BENCH_hotpath.json: multi_over_flat_ratio "
                     f"{ratio!r} is not a positive float")
        if committed["schema"] != "tcm-bench-hotpath-v1":
            sys.exit("committed BENCH_hotpath.json: unexpected schema")
        for impl in ("indexed", "multi", "flat"):
            for key in REQUIRED:
                if key not in committed[impl]:
                    sys.exit(f"committed BENCH_hotpath.json [{impl}]: "
                             f"missing key {key!r}")
        print("committed BENCH_hotpath.json: schema ok")
PY

# Observer-effect gate: the observability surface is read-only, so a
# `tcm-run top`-style poller (Status+Metrics on a timer plus a Watch
# stream on the active job) attached to the daemon must not perturb
# sweep throughput. Bare and observed rounds interleave — same
# drift-spreading rationale as the variant rounds above — and the full
# run gates the median-to-median delta at <2%. Smoke mode reports only:
# sub-second daemon sweeps are all scheduler noise.
echo "==> observer-effect rounds: $RUNS x (bare, observed)"
OBS_GRID=(--policies fr-fcfs,tcm --workloads random:5:4:0.75 --seeds 0,1
          --cycles "$CYCLES")
obs_round() {
    local mode="$1" k="$2"
    local dir="$TMPDIR_BENCH/obs-$mode-$k"
    local sock="$dir/sock"
    mkdir -p "$dir"
    "$TMPDIR_BENCH/bin-indexed" serve --socket "$sock" --state-dir "$dir" \
        --workers 1 --log-level warn &
    local daemon=$!
    for _ in $(seq 200); do
        [[ -S "$sock" ]] && break
        sleep 0.05
    done
    local top_pid=""
    if [[ "$mode" == observed ]]; then
        "$TMPDIR_BENCH/bin-indexed" top --socket "$sock" --interval 0.2 \
            >/dev/null 2>&1 &
        top_pid=$!
    fi
    local t0 t1
    t0=$(date +%s%N)
    "$TMPDIR_BENCH/bin-indexed" client --socket "$sock" \
        submit "${OBS_GRID[@]}" --watch >/dev/null
    t1=$(date +%s%N)
    if [[ -n "$top_pid" ]]; then
        kill "$top_pid" 2>/dev/null || true
    fi
    "$TMPDIR_BENCH/bin-indexed" client --socket "$sock" drain >/dev/null
    wait "$daemon"
    echo $(( t1 - t0 )) >> "$TMPDIR_BENCH/obs-$mode.ns"
}
for k in $(seq "$RUNS"); do
    obs_round bare "$k"
    obs_round observed "$k"
done

python3 - "$TMPDIR_BENCH" "$OUT" "$SMOKE" <<'PY'
import json
import statistics
import sys

tmp, out_path, smoke = sys.argv[1:4]

def med(mode):
    with open(f"{tmp}/obs-{mode}.ns") as f:
        return statistics.median(int(line) for line in f if line.strip())

bare, observed = med("bare"), med("observed")
pct = 100.0 * (observed / bare - 1.0)
with open(out_path) as f:
    merged = json.load(f)
merged["observer_overhead_pct"] = pct
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"observer effect: bare {bare/1e9:.2f}s vs observed {observed/1e9:.2f}s "
      f"median sweep wall-clock ({pct:+.2f}%)")
if smoke != "1" and pct > 2.0:
    sys.exit(f"Watch+Metrics poller perturbs daemon throughput by {pct:.2f}% "
             f"— over the 2% observability budget; the scrape path must stay "
             f"off the worker hot path")
PY
