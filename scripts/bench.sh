#!/usr/bin/env bash
# Wall-clock benchmark of the controller hot path: times the fixed
# paper-lineup sweep (tcm-run --bench-json) six times — with the default
# indexed request queue, on a 2x2 multi-controller topology with the
# controller phase sharded over two host threads (default build), the
# same 2x2 sweep with the protocol checker armed and again with an
# empty fault plan installed (isolating the chaos layer's cost), with
# the pre-refactor flat queue (--features tcm-dram/flat-queue), and with
# the telemetry hooks compiled out (--features tcm-telemetry/off) — and
# merges the records into BENCH_hotpath.json with the measured queue
# speedup, the disabled-telemetry overhead, and the empty-plan chaos
# overhead. The single-controller builds are bit-identical to each
# other (the multi rows simulate a different machine); only the wall
# clock differs. The full run gates the telemetry-hook overhead and the
# empty-fault-plan overhead at <2% each (disabled hooks are one branch
# on a None option; an inert chaos layer is a None check per window);
# smoke mode only reports them, since sub-second runs are all noise.
#
# Usage:
#   scripts/bench.sh            full run (2M-cycle horizon per cell)
#   scripts/bench.sh --smoke    quick schema-validating run (CI gate)
#
# Everything works offline; JSON merging uses python3 (stdlib only).
set -euo pipefail
cd "$(dirname "$0")/.."

CYCLES=2000000
SMOKE=0
# Sub-second sweeps have several percent of run-to-run noise; the full
# run times each variant RUNS times and keeps the fastest, which is what
# the 2% telemetry-overhead gate is applied to.
RUNS=3
if [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    CYCLES=100000
    RUNS=1
elif [[ -n "${1:-}" ]]; then
    echo "usage: scripts/bench.sh [--smoke]" >&2
    exit 2
fi

TMPDIR_BENCH=$(mktemp -d)
trap 'rm -rf "$TMPDIR_BENCH"' EXIT
# Smoke mode must not clobber the committed full-run record with tiny
# numbers: it writes to a scratch path and, after validating that, also
# schema-checks the committed BENCH_hotpath.json if present.
OUT=BENCH_hotpath.json
if [[ "$SMOKE" == 1 ]]; then
    OUT="$TMPDIR_BENCH/BENCH_hotpath.json"
fi

run_variant() {
    local impl="$1"; shift
    echo "==> build + run: $impl"
    # All variants build the same binary path, so build and run in
    # sequence rather than in parallel.
    cargo build --release --offline -p tcm-sim --bin tcm-run "$@"
    for k in $(seq "$RUNS"); do
        ./target/release/tcm-run \
            --bench-json "$TMPDIR_BENCH/$impl.run$k.json" --cycles "$CYCLES"
    done
}

run_variant indexed
# Multi-controller variant: the same fixed sweep on a 2x2 topology (two
# controllers x two channels each, TCM cells coordinated by the
# meta-controller), with each cell's controller phase sharded over two
# host threads. Runs on the default build, so it goes right after the
# indexed variant while that binary is current.
echo "==> run: multi (2x2 topology, --intra-hosts 2)"
for k in $(seq "$RUNS"); do
    ./target/release/tcm-run \
        --bench-json "$TMPDIR_BENCH/multi.run$k.json" --cycles "$CYCLES" \
        --topology 2x2 --intra-hosts 2
done
# Chaos-layer cost probe, also on the default build: the same multi
# sweep with the protocol checker on (the baseline), then with an
# *empty* fault plan installed (which arms the same checker plus the
# inert chaos state). The pair isolates the chaos layer's overhead from
# the checker's; the full run gates it at <2% — when no fault is
# scheduled, the layer must be free.
echo "==> run: multi_verify / multi_chaos (2x2, checker on vs empty fault plan)"
for k in $(seq "$RUNS"); do
    ./target/release/tcm-run \
        --bench-json "$TMPDIR_BENCH/multi_verify.run$k.json" --cycles "$CYCLES" \
        --topology 2x2 --intra-hosts 2 --verify
    ./target/release/tcm-run \
        --bench-json "$TMPDIR_BENCH/multi_chaos.run$k.json" --cycles "$CYCLES" \
        --topology 2x2 --intra-hosts 2 --chaos-empty
done
run_variant flat --features tcm-dram/flat-queue
run_variant nohooks --features tcm-telemetry/off
# Leave the default build in place for whoever runs next.
cargo build --release --offline -p tcm-sim --bin tcm-run >/dev/null 2>&1 || true

python3 - "$TMPDIR_BENCH" "$OUT" "$SMOKE" <<'PY'
import glob
import json
import sys

tmp, out_path, smoke = sys.argv[1:4]

REQUIRED = {
    "schema": str, "queue_impl": str, "topology": str, "threads": int,
    "horizon": int, "policies": list, "workloads": list, "cells": int,
    "alone_runs": int, "workers": int, "sim_cycles": int,
    "wall_secs": float, "sim_cycles_per_sec": float, "cells_per_sec": float,
    "peak_queue_depth": int,
}

def load(path, expect_impl):
    with open(path) as f:
        record = json.load(f)
    for key, kind in REQUIRED.items():
        if key not in record:
            sys.exit(f"{path}: missing key {key!r}")
        if not isinstance(record[key], kind):
            sys.exit(f"{path}: key {key!r} is {type(record[key]).__name__}, "
                     f"expected {kind.__name__}")
    if record["schema"] != "tcm-bench-hotpath-v1":
        sys.exit(f"{path}: unexpected schema {record['schema']!r}")
    if record["queue_impl"] != expect_impl:
        sys.exit(f"{path}: queue_impl {record['queue_impl']!r}, "
                 f"expected {expect_impl!r}")
    if record["sim_cycles_per_sec"] <= 0:
        sys.exit(f"{path}: non-positive sim_cycles_per_sec")
    return record

def load_best(impl, expect_impl):
    """Fastest of the variant's repeated runs (least-noise estimate)."""
    paths = sorted(glob.glob(f"{tmp}/{impl}.run*.json"))
    if not paths:
        sys.exit(f"no bench records for variant {impl!r}")
    records = [load(p, expect_impl) for p in paths]
    return max(records, key=lambda r: r["sim_cycles_per_sec"])

indexed = load_best("indexed", "indexed")
multi = load_best("multi", "indexed")
multi_verify = load_best("multi_verify", "indexed")
multi_chaos = load_best("multi_chaos", "indexed")
flat = load_best("flat", "flat")
nohooks = load_best("nohooks", "indexed")
if nohooks.get("telemetry_impl", "off") != "off":
    sys.exit("nohooks variant: expected the tcm-telemetry/off build")
if indexed["topology"] != "4":
    sys.exit(f"indexed variant: expected the flat 4-channel topology, "
             f"got {indexed['topology']!r}")
if multi["topology"] != "2x2":
    sys.exit(f"multi variant: expected the 2x2 topology, "
             f"got {multi['topology']!r}")
for name, other in (("multi_verify", multi_verify),
                    ("multi_chaos", multi_chaos)):
    if other["topology"] != "2x2":
        sys.exit(f"{name} variant: expected the 2x2 topology, "
                 f"got {other['topology']!r}")
for key in ("threads", "horizon", "cells", "policies", "workloads"):
    for name, other in (("multi", multi), ("multi_verify", multi_verify),
                        ("multi_chaos", multi_chaos), ("flat", flat),
                        ("nohooks", nohooks)):
        if indexed[key] != other[key]:
            sys.exit(f"variant mismatch ({name}) on {key!r}: "
                     f"{indexed[key]!r} vs {other[key]!r}")
# The empty fault plan and the bare checker simulate the same machine;
# an armed-but-inert chaos layer must not change a single behavioral
# bit.
if multi["peak_queue_depth"] != multi_verify["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs with the protocol checker armed — "
             "verification is supposed to be observation-only")
if multi_verify["peak_queue_depth"] != multi_chaos["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs under the empty fault plan — the "
             "inert chaos layer is supposed to be bit-identical")
# Same simulation either way: the peak depth is a behavioral quantity and
# must agree bit-for-bit between the builds.
if indexed["peak_queue_depth"] != flat["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs between builds — the refactor is "
             "supposed to be bit-identical")
if indexed["peak_queue_depth"] != nohooks["peak_queue_depth"]:
    sys.exit("peak_queue_depth differs with telemetry hooks compiled out — "
             "disabled telemetry is supposed to be bit-identical")

speedup = indexed["sim_cycles_per_sec"] / flat["sim_cycles_per_sec"]
# Positive = the hooks build (telemetry disabled at runtime) is slower
# than the build with hooks compiled out entirely.
overhead_pct = 100.0 * (nohooks["sim_cycles_per_sec"]
                        / indexed["sim_cycles_per_sec"] - 1.0)
# Positive = the empty fault plan is slower than the bare checker: both
# arm the same protocol verification, so the delta is the chaos layer
# alone.
chaos_overhead_pct = 100.0 * (multi_verify["sim_cycles_per_sec"]
                              / multi_chaos["sim_cycles_per_sec"] - 1.0)
merged = {
    "schema": "tcm-bench-hotpath-v1",
    "generated_by": "scripts/bench.sh" + (" --smoke" if smoke == "1" else ""),
    "indexed": indexed,
    "multi": multi,
    "multi_verify": multi_verify,
    "multi_chaos": multi_chaos,
    "flat": flat,
    "nohooks": nohooks,
    "speedup_indexed_over_flat": speedup,
    "telemetry_disabled_overhead_pct": overhead_pct,
    "chaos_empty_plan_overhead_pct": chaos_overhead_pct,
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")

print(f"indexed: {indexed['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({indexed['wall_secs']:.2f}s)")
print(f"multi:   {multi['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({multi['wall_secs']:.2f}s, 2x2 topology, 2 intra-cell hosts)")
print(f"flat:    {flat['sim_cycles_per_sec']:.3e} sim-cycles/sec "
      f"({flat['wall_secs']:.2f}s)")
print(f"speedup (indexed over flat): {speedup:.2f}x -> {out_path}")
print(f"telemetry hooks, disabled at runtime, vs compiled out: "
      f"{overhead_pct:+.2f}% overhead")
print(f"empty fault plan vs bare protocol checker (2x2): "
      f"{chaos_overhead_pct:+.2f}% overhead")
if smoke != "1" and overhead_pct > 2.0:
    sys.exit(f"disabled-telemetry overhead {overhead_pct:.2f}% exceeds the "
             f"2% budget — the hooks must stay one branch when disabled")
if smoke != "1" and chaos_overhead_pct > 2.0:
    sys.exit(f"empty-fault-plan overhead {chaos_overhead_pct:.2f}% exceeds "
             f"the 2% budget — an inert chaos layer must be free")
if smoke == "1":
    print("smoke mode: schema validated; absolute numbers not gated")
    # Also schema-check the committed record, if one exists.
    import os
    if os.path.exists("BENCH_hotpath.json"):
        with open("BENCH_hotpath.json") as f:
            committed = json.load(f)
        for key in ("schema", "indexed", "multi", "flat",
                    "speedup_indexed_over_flat"):
            if key not in committed:
                sys.exit(f"committed BENCH_hotpath.json: missing key {key!r}")
        if committed["schema"] != "tcm-bench-hotpath-v1":
            sys.exit("committed BENCH_hotpath.json: unexpected schema")
        for impl in ("indexed", "multi", "flat"):
            for key in REQUIRED:
                if key not in committed[impl]:
                    sys.exit(f"committed BENCH_hotpath.json [{impl}]: "
                             f"missing key {key!r}")
        print("committed BENCH_hotpath.json: schema ok")
PY
