#!/usr/bin/env bash
# Offline CI gate: build, test, lint — exactly what the tier-1 check runs,
# plus clippy with warnings denied and the opt-in bench harness compile.
#
# Everything here works without network access: the workspace vendors its
# few external dependencies under vendor/ (see the workspace Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q (workspace)"
cargo test --workspace -q --offline

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> bench harness compiles (feature-gated)"
cargo build --benches -p tcm-bench --features bench-harness --offline

echo "All checks passed."
