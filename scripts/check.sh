#!/usr/bin/env bash
# Offline CI gate: build, test, lint — exactly what the tier-1 check runs,
# plus clippy with warnings denied and the opt-in bench harness compile.
#
# Everything here works without network access: the workspace vendors its
# few external dependencies under vendor/ (see the workspace Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q (workspace)"
cargo test --workspace -q --offline

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Debug builds always run the DRAM protocol checker; this release-mode
# pass force-enables it via TCM_VERIFY so the optimized build is also
# checked (the checker is observation-only, results are bit-identical).
echo "==> cargo test --release with the protocol checker forced on"
TCM_VERIFY=1 cargo test -q --release --offline -p tcm-sim -p tcm-dram

# Fault-injection smoke: every chaos fault class at a fixed seed must be
# caught by exactly its mapped detector, and the zero-fault control must
# finish clean and bit-identical to a run without the chaos layer.
echo "==> chaos smoke campaign"
cargo run --release -q -p tcm-serve --bin tcm-run --offline -- --chaos-smoke

# The same campaign on a sharded 2x2 multi-controller machine: all ten
# fault classes (including the coordination kinds, which only exist
# there), faults addressed to the last controller/channel to prove
# topology-aware routing, and a clean control pinning 1-vs-3-host
# bit-identity under the armed detectors.
echo "==> chaos smoke campaign (2x2 topology, 3 intra-cell hosts)"
cargo run --release -q -p tcm-serve --bin tcm-run --offline -- \
    --chaos-smoke --topology 2x2 --intra-hosts 3

# Multi-controller smoke: the paper lineup on a 2x2 topology (TCM cells
# coordinated by the meta-controller), with the protocol checker on and
# each cell's controller phase sharded across two host threads — the
# sharding is required to be bit-identical to sequential stepping, which
# tests/golden_fingerprints.rs and tests/determinism.rs pin exactly.
echo "==> multi-controller topology smoke (2x2, sharded, verified)"
cargo run --release -q -p tcm-serve --bin tcm-run --offline -- \
    --topology 2x2 --threads 8 --cycles 1200000 \
    --intra-hosts 2 --verify >/dev/null

# Telemetry trace smoke: run one TCM cell with tracing and metrics
# enabled and validate the emitted schemas — JSONL event lines, the
# Perfetto-loadable Chrome array, and the tcm-metrics-v1 document.
echo "==> telemetry trace smoke (jsonl + chrome + metrics schema)"
TRACE_TMP=$(mktemp -d)
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP" "$SERVE_TMP"' EXIT
cargo run --release -q -p tcm-serve --bin tcm-run --offline -- \
    --workload A --cycles 1200000 --policies tcm \
    --trace "$TRACE_TMP/trace.jsonl" \
    --metrics-json "$TRACE_TMP/metrics.json" >/dev/null
cargo run --release -q -p tcm-serve --bin tcm-run --offline -- \
    --workload A --cycles 1200000 --policies tcm \
    --trace "$TRACE_TMP/trace.chrome" --trace-format chrome >/dev/null
python3 - "$TRACE_TMP" <<'PY'
import json
import sys

tmp = sys.argv[1]

# JSONL: every line is a flat JSON object with an "event" tag; the
# quantum horizon guarantees boundary + clustering + service events.
kinds = set()
with open(f"{tmp}/trace.jsonl") as f:
    for n, line in enumerate(f, 1):
        obj = json.loads(line)
        if "event" not in obj:
            sys.exit(f"trace.jsonl:{n}: missing 'event' tag")
        if obj["event"] != "cell_begin" and "cycle" not in obj:
            sys.exit(f"trace.jsonl:{n}: missing 'cycle'")
        kinds.add(obj["event"])
for required in ("cell_begin", "quantum_boundary", "cluster_assignment",
                 "shuffle_applied", "request_serviced", "bank_activate"):
    if required not in kinds:
        sys.exit(f"trace.jsonl: no {required!r} events (got {sorted(kinds)})")

# Chrome trace: one JSON array of instant/metadata/counter events.
with open(f"{tmp}/trace.chrome") as f:
    entries = json.load(f)
phases = {e.get("ph") for e in entries}
if not {"i", "M", "C"} <= phases:
    sys.exit(f"trace.chrome: expected i/M/C phases, got {sorted(phases)}")
if not any(e.get("ph") == "M" and e.get("name") == "process_name"
           for e in entries):
    sys.exit("trace.chrome: missing process_name metadata")

# Metrics document: schema + the headline TCM observables.
with open(f"{tmp}/metrics.json") as f:
    doc = json.load(f)
if doc.get("schema") != "tcm-metrics-v1":
    sys.exit(f"metrics.json: unexpected schema {doc.get('schema')!r}")
if not doc.get("cells"):
    sys.exit("metrics.json: no cells")
cell = doc["cells"][0]
if "row_hit_rate" not in cell["gauges"]:
    sys.exit("metrics.json: missing row_hit_rate gauge")
if "queue_depth" not in cell["histograms"]:
    sys.exit("metrics.json: missing queue_depth histogram")
for cluster in ("latency", "bandwidth"):
    if f"bw_share{{cluster={cluster}}}" not in cell["series"]:
        sys.exit(f"metrics.json: missing bw_share series for {cluster}")
print(f"trace smoke ok: {len(kinds)} event kinds, "
      f"{len(entries)} chrome entries, "
      f"{len(cell['counters'])} counters / {len(cell['series'])} series")
PY

# Service smoke: the daemon's crash-recovery and drain SLOs end to end,
# with real signals. One daemon is SIGTERM-drained after finishing a
# grid (must exit 0 and remove its socket); a second running the same
# grid is SIGKILLed mid-sweep and restarted on the same state directory
# — the WAL re-admits the job and the merged result file must be
# byte-identical to the uninterrupted daemon's.
echo "==> tcm-serve smoke (SIGKILL recovery, SIGTERM drain)"
SERVE_BIN=target/release/tcm-run
SOCK="$SERVE_TMP/sock"
# Sized so the sweep takes a couple of seconds: the kill below must
# land mid-run, not after a finished job (the engine clears ~150M
# sim-cycles/sec, so a small grid would finish before the signal).
GRID=(--policies fr-fcfs,tcm --workloads random:5:4:0.75 --seeds 0,17
      --cycles 30000000)

wait_for_socket() {
    for _ in $(seq 200); do
        [[ -S "$SOCK" ]] && return 0
        sleep 0.05
    done
    echo "daemon socket $SOCK never appeared" >&2
    return 1
}

# Reference: an uninterrupted daemon runs the grid, then drains on
# SIGTERM. `set -e` gates the exit-0 contract on the `wait`.
"$SERVE_BIN" serve --socket "$SOCK" --state-dir "$SERVE_TMP/ref" --workers 1 &
SERVE_PID=$!
wait_for_socket
"$SERVE_BIN" client --socket "$SOCK" submit "${GRID[@]}" --watch >/dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
if [[ -e "$SOCK" ]]; then
    echo "drained daemon left its socket behind" >&2
    exit 1
fi

# Crash: the same grid, but the daemon takes a real `kill -9` mid-sweep.
"$SERVE_BIN" serve --socket "$SOCK" --state-dir "$SERVE_TMP/crash" --workers 1 &
SERVE_PID=$!
wait_for_socket
"$SERVE_BIN" client --socket "$SOCK" submit "${GRID[@]}" >/dev/null
sleep 0.4 # let the worker get well into the sweep
kill -KILL "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true # exits 137: that is the point
rm -f "$SOCK"

# Restart on the same state directory: the WAL re-admits job 1, the
# checkpoint restores whatever cells survived, and the result must be
# byte-identical to the uninterrupted run.
"$SERVE_BIN" serve --socket "$SOCK" --state-dir "$SERVE_TMP/crash" --workers 1 &
SERVE_PID=$!
wait_for_socket
"$SERVE_BIN" client --socket "$SOCK" watch 1 >/dev/null
cmp "$SERVE_TMP/ref/job-1.result.json" "$SERVE_TMP/crash/job-1.result.json"
"$SERVE_BIN" client --socket "$SOCK" drain >/dev/null
wait "$SERVE_PID"
echo "serve smoke ok: recovery byte-identical, both drains exited 0"

# Metrics smoke: the daemon's whole observability surface end to end —
# Prometheus exposition over the socket and via --metrics-file, the
# `top --once` dashboard snapshot, and the recovery counters after a
# real `kill -9` restart.
echo "==> tcm-serve metrics smoke (exposition, top --once, kill -9 counters)"
SOCK="$SERVE_TMP/msock"
MDIR="$SERVE_TMP/mstate"
MFLAGS=(--socket "$SOCK" --state-dir "$MDIR" --workers 1
        --metrics-file "$SERVE_TMP/scrape.prom")
"$SERVE_BIN" serve "${MFLAGS[@]}" &
SERVE_PID=$!
wait_for_socket
"$SERVE_BIN" client --socket "$SOCK" submit --policies fr-fcfs,tcm \
    --workloads random:5:4:0.75 --seeds 0 --cycles 2000000 --watch >/dev/null
"$SERVE_BIN" client --socket "$SOCK" metrics > "$SERVE_TMP/exposition.txt"
"$SERVE_BIN" top --socket "$SOCK" --once > "$SERVE_TMP/top.txt"
grep -q "tcm-serve top" "$SERVE_TMP/top.txt"
grep -q "done" "$SERVE_TMP/top.txt"
[[ -s "$SERVE_TMP/scrape.prom" ]] # startup republish happened
grep -q "tcm_serve_uptime_seconds" "$SERVE_TMP/scrape.prom"
python3 - "$SERVE_TMP/exposition.txt" <<'PY'
import sys

families = {}   # name -> type
samples = {}    # full key (name{labels}) -> float
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            if kind not in ("counter", "gauge", "histogram"):
                sys.exit(f"line {n}: unknown TYPE {kind!r}")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
        base = key.split("{")[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
        if base not in families:
            sys.exit(f"line {n}: sample {key!r} has no # TYPE header")

for required, kind in (
    ("tcm_serve_jobs_submitted_total", "counter"),
    ("tcm_serve_jobs_completed_total", "counter"),
    ("tcm_serve_cells_completed_total", "counter"),
    ("tcm_serve_wal_appended_records_total", "counter"),
    ("tcm_serve_queue_depth", "gauge"),
    ("tcm_serve_queue_capacity", "gauge"),
    ("tcm_serve_workers", "gauge"),
    ("tcm_serve_uptime_seconds", "gauge"),
    ("tcm_serve_job_duration_ms", "histogram"),
):
    if families.get(required) != kind:
        sys.exit(f"{required}: expected {kind}, got {families.get(required)!r}")

if samples['tcm_serve_jobs_completed_total{state="done"}'] != 1.0:
    sys.exit("expected exactly one done job")
if samples["tcm_serve_cells_completed_total"] != 2.0:
    sys.exit("expected 2 completed cells (2 policies x 1 seed)")
if samples['tcm_serve_job_duration_ms_count{state="done"}'] < 1.0:
    sys.exit("job latency histogram is empty")

# Histogram buckets must be cumulative and end at +Inf == _count.
buckets = [
    (k, v) for k, v in samples.items()
    if k.startswith('tcm_serve_job_duration_ms_bucket{state="done"')
]
values = [v for _, v in buckets]
if values != sorted(values):
    sys.exit("histogram buckets are not cumulative")
inf = [v for k, v in buckets if 'le="+Inf"' in k]
if inf != [samples['tcm_serve_job_duration_ms_count{state="done"}']]:
    sys.exit("+Inf bucket does not equal _count")
print(f"metrics smoke ok: {len(families)} families, {len(samples)} samples")
PY

# kill -9 mid-sweep, restart on the same state dir: the scrape must now
# carry the recovery story (replayed WAL jobs, re-admissions).
"$SERVE_BIN" client --socket "$SOCK" submit "${GRID[@]}" >/dev/null
sleep 0.4
kill -KILL "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
rm -f "$SOCK"
"$SERVE_BIN" serve "${MFLAGS[@]}" &
SERVE_PID=$!
wait_for_socket
"$SERVE_BIN" client --socket "$SOCK" watch 2 >/dev/null
"$SERVE_BIN" client --socket "$SOCK" metrics > "$SERVE_TMP/exposition2.txt"
python3 - "$SERVE_TMP/exposition2.txt" <<'PY'
import sys
samples = {}
with open(sys.argv[1]) as f:
    for line in f:
        if line.startswith("#") or not line.strip():
            continue
        key, _, value = line.rstrip("\n").rpartition(" ")
        samples[key] = float(value)
if samples.get("tcm_serve_wal_replayed_jobs_total", 0) < 1:
    sys.exit("restarted daemon replayed no WAL jobs")
if samples.get("tcm_serve_jobs_readmitted_total", 0) < 1:
    sys.exit("restarted daemon re-admitted no jobs")
print("restart counters ok: WAL replay visible in the scrape")
PY
"$SERVE_BIN" client --socket "$SOCK" drain >/dev/null
wait "$SERVE_PID"
echo "metrics smoke ok: exposition valid, top rendered, recovery counted"

echo "==> bench harness compiles (feature-gated)"
cargo build --benches -p tcm-bench --features bench-harness --offline

# Times the fixed paper-lineup sweep on both request-queue builds and
# validates the JSON schema of BENCH_hotpath.json. Absolute numbers are
# NOT gated — machines differ — only the record's shape and consistency.
echo "==> bench smoke run (schema validation)"
scripts/bench.sh --smoke

# The committed record must carry the multi-vs-flat gap so the windowed
# engine's cost is tracked release-over-release, not eyeballed. (The
# smoke run above validates its own scratch record; this checks the
# committed one that ships with the repo.)
echo "==> committed BENCH_hotpath.json records the multi-engine gap"
python3 - <<'PY'
import json
with open("BENCH_hotpath.json") as f:
    committed = json.load(f)
ratio = committed.get("multi_over_flat_ratio")
if not isinstance(ratio, float) or not ratio > 0.0:
    raise SystemExit(
        f"BENCH_hotpath.json: multi_over_flat_ratio {ratio!r} missing or "
        f"not a positive float — regenerate with scripts/bench.sh")
print(f"multi_over_flat_ratio recorded: {ratio:.3f}")
PY

echo "All checks passed."
