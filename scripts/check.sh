#!/usr/bin/env bash
# Offline CI gate: build, test, lint — exactly what the tier-1 check runs,
# plus clippy with warnings denied and the opt-in bench harness compile.
#
# Everything here works without network access: the workspace vendors its
# few external dependencies under vendor/ (see the workspace Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q (workspace)"
cargo test --workspace -q --offline

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Debug builds always run the DRAM protocol checker; this release-mode
# pass force-enables it via TCM_VERIFY so the optimized build is also
# checked (the checker is observation-only, results are bit-identical).
echo "==> cargo test --release with the protocol checker forced on"
TCM_VERIFY=1 cargo test -q --release --offline -p tcm-sim -p tcm-dram

# Fault-injection smoke: every chaos fault class at a fixed seed must be
# caught by exactly its mapped detector, and the zero-fault control must
# finish clean and bit-identical to a run without the chaos layer.
echo "==> chaos smoke campaign"
cargo run --release -q -p tcm-sim --bin tcm-run --offline -- --chaos-smoke

echo "==> bench harness compiles (feature-gated)"
cargo build --benches -p tcm-bench --features bench-harness --offline

# Times the fixed paper-lineup sweep on both request-queue builds and
# validates the JSON schema of BENCH_hotpath.json. Absolute numbers are
# NOT gated — machines differ — only the record's shape and consistency.
echo "==> bench smoke run (schema validation)"
scripts/bench.sh --smoke

echo "All checks passed."
