//! Offline stand-in for the subset of the [`rand` 0.8] API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually needs: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`] and
//! [`Rng`] traits, and uniform range / Bernoulli sampling. The generator
//! is a SplitMix64 — statistically solid for simulation workloads,
//! bit-stable across platforms and releases (an explicit goal here:
//! experiment outputs must be reproducible), and dependency-free.
//!
//! This is **not** a cryptographic generator and does not aim for
//! stream-compatibility with the real `rand` crate; seeds produce
//! different sequences than upstream `StdRng`.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generators.
pub mod rngs {
    /// A seedable, portable pseudo-random generator (SplitMix64).
    ///
    /// Mirrors the role of `rand::rngs::StdRng`: the workspace's default
    /// source of reproducible randomness.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed once so small seeds (0, 1, 2...) do not
            // start in nearly identical states.
            let mut rng = StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
            let _ = crate::Rng::next_u64(&mut rng);
            rng
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams; unequal seeds produce (with overwhelming probability)
    /// unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit output stream every other method derives from.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        gen_f64(self) < p
    }
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits of one output word.
fn gen_f64<R: Rng>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly; implemented for the integer
/// and float ranges the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = gen_f64(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&heads), "heads={heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn integer_sampling_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
