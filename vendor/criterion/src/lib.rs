//! Offline stand-in for the subset of the [`criterion`] benchmarking API
//! this workspace's benches use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a miniature timing harness with the same surface:
//! [`Criterion::bench_function`], benchmark groups,
//! [`BenchmarkId`], `b.iter(...)`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up briefly, then
//! timed over a fixed number of batches; the median per-iteration time
//! is printed. There is no statistical analysis, HTML report, or
//! command-line filtering — this harness exists so `cargo bench
//! --features bench-harness` runs offline and surfaces gross
//! regressions.
//!
//! [`criterion`]: https://docs.rs/criterion

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::time::{Duration, Instant};

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness uses a fixed batch
    /// count regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; present for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An identifier with a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

/// Per-benchmark timing driver: call [`Bencher::iter`] with the
/// operation under test.
#[derive(Debug)]
pub struct Bencher {
    batches: Vec<Duration>,
    iters_per_batch: u64,
}

impl Bencher {
    /// Times `op`, recording a handful of fixed-size batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut op: F) {
        // Warm-up, and a rough calibration so a batch is neither
        // instantaneous nor unbounded.
        let warm = Instant::now();
        std::hint::black_box(op());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        self.iters_per_batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..NUM_BATCHES {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(op());
            }
            self.batches.push(t0.elapsed());
        }
    }
}

const NUM_BATCHES: usize = 7;

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        batches: Vec::new(),
        iters_per_batch: 1,
    };
    f(&mut bencher);
    if bencher.batches.is_empty() {
        println!("{name:<48} (no measurement)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .batches
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_batch as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<48} median {:>12}/iter", format_seconds(median));
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
    }
}
