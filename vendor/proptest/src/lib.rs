//! Offline stand-in for the subset of the [`proptest`] API this
//! workspace's property tests use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a miniature property-testing harness with the same surface
//! syntax: the [`proptest!`] macro, range / tuple / `vec` / `any`
//! strategies, `prop_map`, and the `prop_assert*` family. Each test
//! runs a configurable number of deterministic cases (seeded per case
//! index, so failures are reproducible run-to-run); on failure the
//! harness panics with the generated inputs. Unlike real proptest there
//! is **no shrinking** — the failing inputs are reported as drawn.
//!
//! [`proptest`]: https://docs.rs/proptest

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares a block of property tests.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a [`proptest!`] block into a test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __outcome = $crate::test_runner::run_cases(__config, |__rng| {
                let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), __rng) ),+ , );
                let __inputs = format!("{:?}", __vals);
                let ( $($pat),+ , ) = __vals;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __result)
            });
            if let ::std::result::Result::Err(__msg) = __outcome {
                panic!("{}", __msg);
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current test case (without panicking) when the condition is
/// false; the harness reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// [`prop_assert!`] for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// [`prop_assert!`] for inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l,
                ),
            ));
        }
    }};
}

/// Discards the current case (drawing a replacement) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
