//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `len` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
