//! Deterministic case execution: configuration, RNG, and the loop behind
//! the [`proptest!`](crate::proptest) macro.

/// How many cases to run, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!`; draw a replacement.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejection (assumption violated).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// The deterministic per-case RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given case index; equal indices give equal
    /// streams, so failures reproduce run-to-run.
    pub fn for_case(case: u64) -> Self {
        let mut rng = TestRng {
            state: case
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x5851_F42D_4C95_7F2D),
        };
        let _ = rng.next_u64();
        rng
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `config.cases` cases of `case`, which returns the formatted
/// inputs alongside the case outcome. Returns a message describing the
/// first failure, if any.
pub fn run_cases<F>(config: ProptestConfig, mut case: F) -> Result<(), String>
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    // Bound rejection loops: a test whose assumption almost never holds
    // should fail loudly rather than spin.
    let max_attempts = (config.cases as u64).saturating_mul(16).max(64);
    while passed < config.cases {
        if attempt >= max_attempts {
            return Err(format!(
                "gave up after {attempt} attempts: only {passed}/{} cases \
                 survived prop_assume! rejection",
                config.cases
            ));
        }
        let mut rng = TestRng::for_case(attempt);
        attempt += 1;
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                return Err(format!(
                    "property failed at case #{attempt}: {msg}\n  inputs: {inputs}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_only_accepted_cases() {
        let mut calls = 0u32;
        let result = run_cases(ProptestConfig::with_cases(10), |rng| {
            calls += 1;
            let v = rng.next_u64();
            if v % 2 == 0 {
                (format!("{v}"), Err(TestCaseError::Reject))
            } else {
                (format!("{v}"), Ok(()))
            }
        });
        assert!(result.is_ok());
        assert!(calls >= 10);
    }

    #[test]
    fn runner_reports_failure_with_inputs() {
        let result = run_cases(ProptestConfig::with_cases(5), |_| {
            ("42".to_string(), Err(TestCaseError::fail("boom".into())))
        });
        let msg = result.unwrap_err();
        assert!(msg.contains("boom") && msg.contains("42"), "{msg}");
    }

    #[test]
    fn same_case_index_reproduces_stream() {
        let mut a = TestRng::for_case(9);
        let mut b = TestRng::for_case(9);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_f64(), b.next_f64());
    }
}
