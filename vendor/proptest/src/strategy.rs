//! Value-generation strategies: ranges, tuples, `any`, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// The miniature analogue of `proptest::strategy::Strategy`: no value
/// trees or shrinking, just direct generation from a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = rng.next_f64();
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "anything goes" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the workspace
/// tests draw.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, scale-spread values.
        let unit = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 64) as i32 - 32;
        unit * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of type `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
