//! End-to-end determinism: the simulator must be bit-reproducible, every
//! policy must see the identical workload trace, and parallel sweep
//! execution must be bit-identical to serial execution.

use tcm::core::TcmParams;
use tcm::sim::{PolicyKind, RunConfig, Session, System};
use tcm::types::{SystemConfig, Topology};
use tcm::workload::random_workload;

fn small_system(threads: usize) -> SystemConfig {
    SystemConfig::builder().num_threads(threads).build().unwrap()
}

fn session(threads: usize, horizon: u64) -> Session {
    Session::new(
        RunConfig::builder()
            .system(small_system(threads))
            .horizon(horizon)
            .build(),
    )
}

#[test]
fn identical_runs_produce_identical_results() {
    let cfg = small_system(8);
    let workload = random_workload(11, 8, 0.75);
    let run = |seed| {
        let mut sys = System::new(&cfg, &workload, PolicyKind::FrFcfs.build(8, &cfg), seed);
        sys.run(400_000)
    };
    assert_eq!(run(3), run(3));
}

#[test]
fn different_seeds_differ() {
    let cfg = small_system(8);
    let workload = random_workload(11, 8, 0.75);
    let run = |seed| {
        let mut sys = System::new(&cfg, &workload, PolicyKind::FrFcfs.build(8, &cfg), seed);
        sys.run(400_000)
    };
    assert_ne!(run(3).retired, run(4).retired);
}

#[test]
fn eval_is_reproducible_across_calls_and_sessions() {
    let workload = random_workload(5, 6, 0.5);
    let s1 = session(6, 300_000);
    let a = s1.eval(&PolicyKind::FrFcfs, &workload);
    let b = s1.eval(&PolicyKind::FrFcfs, &workload);
    assert_eq!(a.metrics.weighted_speedup, b.metrics.weighted_speedup);
    assert_eq!(a.run, b.run);
    // A fresh session (empty cache) reproduces the same result.
    let c = session(6, 300_000).eval(&PolicyKind::FrFcfs, &workload);
    assert_eq!(a, c);
}

#[test]
fn policies_see_identical_traces() {
    // Each policy's run injects the same total misses for the same
    // workload: trace generation is independent of scheduling until
    // backpressure, and at this horizon backpressure differences only
    // affect in-flight tails.
    let s = session(4, 200_000);
    let workload = random_workload(9, 4, 0.25);
    let a = s.eval(&PolicyKind::FrFcfs, &workload);
    let b = s.eval(&PolicyKind::Fcfs, &workload);
    // Light workload: neither policy should starve anything badly, and
    // the per-thread miss totals should be near-identical.
    for (ma, mb) in a.run.misses.iter().zip(&b.run.misses) {
        let hi = (*ma).max(*mb) as f64;
        let lo = (*ma).min(*mb) as f64;
        assert!(lo / hi > 0.9, "trace divergence: {ma} vs {mb}");
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    // 3 policies x 4 workloads; the same grid run serially and sharded
    // across 4 workers must agree on every metric of every cell.
    let policies = || {
        vec![
            PolicyKind::Fcfs,
            PolicyKind::FrFcfs,
            PolicyKind::FairQueueing,
        ]
    };
    let workloads = || (0..4).map(|s| random_workload(s, 6, 0.75));

    let serial = session(6, 250_000)
        .sweep()
        .policies(policies())
        .workloads(workloads())
        .run();
    let parallel = session(6, 250_000)
        .sweep()
        .policies(policies())
        .workloads(workloads())
        .run_parallel(4);

    assert_eq!(serial.stats().cells, 12);
    assert_eq!(parallel.stats().workers, 4);
    for p in 0..3 {
        for w in 0..4 {
            let a = serial.get(p, w, 0);
            let b = parallel.get(p, w, 0);
            assert_eq!(a.metrics, b.metrics, "metrics differ at ({p},{w})");
            assert_eq!(a, b, "full cell differs at ({p},{w})");
        }
        assert_eq!(serial.policy_average(p), parallel.policy_average(p));
    }
    assert_eq!(serial.cells(), parallel.cells());
}

/// Intra-cell sharding: on a multi-controller topology, splitting one
/// cell's controllers across host threads must be bit-identical to
/// stepping them sequentially — for both an uncoordinated policy and
/// TCM under its meta-controller, across quantum boundaries.
#[test]
fn intra_cell_sharding_is_bit_identical_to_sequential() {
    let session_for = |spec: &str, hosts: usize| {
        Session::new(
            RunConfig::builder()
                .system(
                    SystemConfig::builder()
                        .num_threads(8)
                        .topology(Topology::parse(spec).unwrap())
                        .build()
                        .unwrap(),
                )
                .horizon(150_000)
                .intra_hosts(hosts)
                .build(),
        )
    };
    // Quanta short enough that the horizon crosses several exchanges.
    let mut params = TcmParams::paper_default(8);
    params.quantum = 25_000;
    let workload = random_workload(21, 8, 0.75);
    for spec in ["2x2", "3+1"] {
        for policy in [PolicyKind::FrFcfs, PolicyKind::Tcm(params)] {
            let sequential = session_for(spec, 1).eval(&policy, &workload);
            for hosts in [2, 4] {
                let sharded = session_for(spec, hosts).eval(&policy, &workload);
                assert_eq!(
                    sequential, sharded,
                    "{spec} with {hosts} hosts diverged from sequential"
                );
            }
        }
    }
}
