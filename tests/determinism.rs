//! End-to-end determinism: the simulator must be bit-reproducible, and
//! every policy must see the identical workload trace.

use tcm::sim::{evaluate, AloneCache, PolicyKind, RunConfig, System};
use tcm::types::SystemConfig;
use tcm::workload::random_workload;

fn small_system(threads: usize) -> SystemConfig {
    SystemConfig::builder().num_threads(threads).build().unwrap()
}

#[test]
fn identical_runs_produce_identical_results() {
    let cfg = small_system(8);
    let workload = random_workload(11, 8, 0.75);
    let run = |seed| {
        let mut sys = System::new(&cfg, &workload, PolicyKind::FrFcfs.build(8, &cfg), seed);
        sys.run(400_000)
    };
    assert_eq!(run(3), run(3));
}

#[test]
fn different_seeds_differ() {
    let cfg = small_system(8);
    let workload = random_workload(11, 8, 0.75);
    let run = |seed| {
        let mut sys = System::new(&cfg, &workload, PolicyKind::FrFcfs.build(8, &cfg), seed);
        sys.run(400_000)
    };
    assert_ne!(run(3).retired, run(4).retired);
}

#[test]
fn evaluate_is_reproducible_across_calls() {
    let rc = RunConfig {
        system: small_system(6),
        horizon: 300_000,
    };
    let workload = random_workload(5, 6, 0.5);
    let mut alone = AloneCache::new();
    let a = evaluate(&PolicyKind::FrFcfs, &workload, &rc, &mut alone);
    let b = evaluate(&PolicyKind::FrFcfs, &workload, &rc, &mut alone);
    assert_eq!(a.metrics.weighted_speedup, b.metrics.weighted_speedup);
    assert_eq!(a.run, b.run);
}

#[test]
fn policies_see_identical_traces() {
    // Each policy's run injects the same total misses for the same
    // workload: trace generation is independent of scheduling until
    // backpressure, and at this horizon backpressure differences only
    // affect in-flight tails.
    let rc = RunConfig {
        system: small_system(4),
        horizon: 200_000,
    };
    let workload = random_workload(9, 4, 0.25);
    let mut alone = AloneCache::new();
    let a = evaluate(&PolicyKind::FrFcfs, &workload, &rc, &mut alone);
    let b = evaluate(&PolicyKind::Fcfs, &workload, &rc, &mut alone);
    // Light workload: neither policy should starve anything badly, and
    // the per-thread miss totals should be near-identical.
    for (ma, mb) in a.run.misses.iter().zip(&b.run.misses) {
        let hi = (*ma).max(*mb) as f64;
        let lo = (*ma).min(*mb) as f64;
        assert!(lo / hi > 0.9, "trace divergence: {ma} vs {mb}");
    }
}
