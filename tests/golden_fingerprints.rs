//! Golden `RunResult` fingerprints for the paper-lineup sweep.
//!
//! These constants were captured from the flat-`Vec` request queue that
//! predates the indexed (per-bank lane) hot path; the refactor is
//! required to be *bit-identical*, so every field of every `RunResult`
//! in this fixed grid must still hash to the same value. If a change is
//! *meant* to alter simulation results, re-capture with:
//!
//! ```text
//! cargo test --test golden_fingerprints -- --ignored --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use tcm::chaos::{FaultKind, FaultPlan, FaultSpec};
use tcm::sim::{PolicyKind, RunConfig, RunResult, Session};
use tcm::telemetry::TelemetryConfig;
use tcm::types::{SystemConfig, Topology};
use tcm::workload::{random_workload, table5_workloads, WorkloadSpec};

/// FNV-1a over a structured encoding of every behavioral field of a
/// [`RunResult`]. Floats are hashed by bit pattern, so any numeric
/// drift — however small — changes the fingerprint.
fn fingerprint(run: &RunResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(run.cycles);
    eat(run.retired.len() as u64);
    for &r in &run.retired {
        eat(r);
    }
    for &i in &run.ipc {
        eat(i.to_bits());
    }
    for &m in &run.misses {
        eat(m);
    }
    for &s in &run.service {
        eat(s);
    }
    eat(run.total_serviced);
    eat(run.row_hit_rate.to_bits());
    eat(run.spilled);
    h
}

/// The fixed grid: the paper's five-policy lineup on the paper-baseline
/// machine (24 threads, 4 channels x 4 banks), over one of the paper's
/// Table 5 workload categories and one random mixed workload. The
/// horizon exceeds TCM's 1M-cycle quantum so clustering and shuffling
/// engage (ATLAS's 10M-cycle quantum never elapses here, so its cells
/// legitimately coincide with FR-FCFS).
fn grid(telemetry: Option<TelemetryConfig>) -> (Session, Vec<WorkloadSpec>) {
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::paper_baseline())
            .horizon(1_200_000)
            .telemetry(telemetry)
            .build(),
    );
    let mut workloads = vec![table5_workloads().remove(0)];
    workloads.push(random_workload(1, 24, 0.75));
    (session, workloads)
}

fn compute_fingerprints(telemetry: Option<TelemetryConfig>) -> Vec<(String, String, u64)> {
    let (session, workloads) = grid(telemetry);
    let result = session
        .sweep()
        .policies(PolicyKind::paper_lineup(24))
        .workloads(workloads)
        .run();
    assert!(result.is_complete(), "golden grid must not have failures");
    result
        .cells()
        .iter()
        .map(|cell| {
            (
                result.policy_labels()[cell.policy].clone(),
                result.workload_names()[cell.workload].clone(),
                fingerprint(&cell.result.run),
            )
        })
        .collect()
}

/// Captured on the pre-refactor flat request queue; see module docs.
const GOLDEN: [(&str, &str, u64); 10] = [
    ("FR-FCFS", "A", 0x0b09adb91565ca44),
    ("FR-FCFS", "rand-75%-01", 0xd7d753b8d72caf62),
    ("STFM", "A", 0xf383ca8860938f1d),
    ("STFM", "rand-75%-01", 0xaed779db9dcf9809),
    ("PAR-BS", "A", 0x36fdcf9b31895792),
    ("PAR-BS", "rand-75%-01", 0xdfe3c021f3f81e89),
    ("ATLAS", "A", 0x0b09adb91565ca44),
    ("ATLAS", "rand-75%-01", 0xd7d753b8d72caf62),
    ("TCM", "A", 0x51b615860c7aaa86),
    ("TCM", "rand-75%-01", 0xd52d5b902bc8a075),
];

fn assert_matches_golden(got: &[(String, String, u64)], context: &str) {
    assert_eq!(got.len(), GOLDEN.len(), "grid shape changed ({context})");
    for ((policy, workload, fp), (gp, gw, gfp)) in got.iter().zip(GOLDEN) {
        assert_eq!(policy, gp, "policy axis changed ({context})");
        assert_eq!(workload, gw, "workload axis changed ({context})");
        assert_eq!(
            *fp, gfp,
            "RunResult drifted for {policy} x {workload} ({context}): \
             {fp:#018x} != golden {gfp:#018x}"
        );
    }
}

#[test]
fn paper_lineup_matches_golden_fingerprints() {
    assert_matches_golden(&compute_fingerprints(None), "telemetry disabled");
}

/// Telemetry is observation-only: with tracing, metric collection and
/// series sampling all enabled, every cell's `RunResult` must still be
/// bit-identical to the golden capture.
#[test]
fn telemetry_enabled_run_matches_golden_fingerprints() {
    assert_matches_golden(
        &compute_fingerprints(Some(TelemetryConfig::default())),
        "telemetry enabled",
    );
}

#[test]
#[ignore = "re-capture helper: prints the GOLDEN table"]
fn print_fingerprints() {
    for (policy, workload, fp) in compute_fingerprints(None) {
        println!("    (\"{policy}\", \"{workload}\", {fp:#018x}),");
    }
}

/// The multi-controller grid: FR-FCFS (uncoordinated) and TCM (under
/// the §5.3 meta-controller) on a uniform 2x2 and an asymmetric 3+1
/// topology, past TCM's 1M-cycle quantum so the cross-controller
/// exchange engages. Captured with `intra_hosts = 1`; the sharded test
/// below reruns the same grid over multiple host threads and must land
/// on the same fingerprints.
fn compute_multi_fingerprints(spec: &str, intra_hosts: usize) -> Vec<(String, String, u64)> {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.topology = Topology::parse(spec).expect("valid spec");
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(1_200_000)
            .intra_hosts(intra_hosts)
            .build(),
    );
    let result = session
        .sweep()
        .policies([
            PolicyKind::FrFcfs,
            PolicyKind::Tcm(tcm::core::TcmParams::paper_default(24)),
        ])
        .workloads([random_workload(1, 24, 0.75)])
        .run();
    assert!(result.is_complete(), "multi golden grid must not fail");
    result
        .cells()
        .iter()
        .map(|cell| {
            (
                result.policy_labels()[cell.policy].clone(),
                result.workload_names()[cell.workload].clone(),
                fingerprint(&cell.result.run),
            )
        })
        .collect()
}

/// Captured at the introduction of the multi-controller engine; these
/// pin the windowed two-phase execution order, the meta-controller
/// exchange, and the per-controller FR-FCFS behavior.
const GOLDEN_MULTI: [(&str, &str, &str, u64); 4] = [
    ("2x2", "FR-FCFS", "rand-75%-01", 0x437f563057e4e484),
    ("2x2", "TCM", "rand-75%-01", 0xbbaa255371346515),
    ("3+1", "FR-FCFS", "rand-75%-01", 0x9c68390431a821ed),
    ("3+1", "TCM", "rand-75%-01", 0x9738dfdf7bd812c8),
];

fn assert_matches_multi_golden(hosts: usize) {
    let mut expected = GOLDEN_MULTI.iter();
    for spec in ["2x2", "3+1"] {
        for (policy, workload, fp) in compute_multi_fingerprints(spec, hosts) {
            let &(gs, gp, gw, gfp) = expected.next().expect("grid grew");
            assert_eq!((spec, policy.as_str(), workload.as_str()), (gs, gp, gw));
            assert_eq!(
                fp, gfp,
                "multi RunResult drifted for {spec} {policy} x {workload} \
                 ({hosts} hosts): {fp:#018x} != golden {gfp:#018x}"
            );
        }
    }
}

#[test]
fn multi_controller_grid_matches_golden_fingerprints() {
    assert_matches_multi_golden(1);
}

/// The acceptance bar for intra-cell sharding: the identical grid,
/// stepped with the controller phase split over three host threads,
/// must reproduce the sequential fingerprints bit-for-bit.
#[test]
fn sharded_multi_controller_grid_matches_golden_fingerprints() {
    assert_matches_multi_golden(3);
}

#[test]
#[ignore = "re-capture helper: prints the GOLDEN_MULTI table"]
fn print_multi_fingerprints() {
    for spec in ["2x2", "3+1"] {
        for (policy, workload, fp) in compute_multi_fingerprints(spec, 1) {
            println!("    (\"{spec}\", \"{policy}\", \"{workload}\", {fp:#018x}),");
        }
    }
}

/// The chaos-under-multi grid: a 2x2 machine struck by both
/// coordination fault classes — a blackout on mc1 and a skew on mc2 —
/// with a TCM quantum short enough that each quarantine *and* its
/// re-admission land inside the horizon. Pins that barrier-synchronous
/// fault application, quarantine fallback, and re-admission are
/// bit-identical however the controller phase is sharded. The FR-FCFS
/// row pins that the same plan is inert (coordination faults have no
/// target without a meta-controller) while its armed detectors stay
/// observation-only.
fn compute_chaos_multi_fingerprints(intra_hosts: usize) -> Vec<(String, String, u64)> {
    let mut cfg = SystemConfig::paper_baseline();
    cfg.topology = Topology::parse("2x2").expect("valid spec");
    // Both faults land after their target's first clean exchange at
    // 200k, so staleness is attributable (see `tcm-core`'s guard).
    let plan = FaultPlan::none()
        .with_fault(FaultSpec::new(FaultKind::ControllerBlackout, 250_000).on_controller(1))
        .with_fault(
            FaultSpec::new(FaultKind::MonitorSkew, 450_000)
                .on_controller(0)
                .on_thread(5),
        );
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(1_200_000)
            .intra_hosts(intra_hosts)
            .chaos(Some(plan))
            .build(),
    );
    let result = session
        .sweep()
        .policies([
            PolicyKind::FrFcfs,
            PolicyKind::Tcm(tcm::core::TcmParams {
                quantum: 200_000,
                ..tcm::core::TcmParams::paper_default(24)
            }),
        ])
        .workloads([random_workload(1, 24, 0.75)])
        .run();
    assert!(result.is_complete(), "quarantine is graceful: no cell fails");
    result
        .cells()
        .iter()
        .map(|cell| {
            (
                result.policy_labels()[cell.policy].clone(),
                result.workload_names()[cell.workload].clone(),
                fingerprint(&cell.result.run),
            )
        })
        .collect()
}

/// Captured at the introduction of multi-controller fault injection.
/// The FR-FCFS fingerprint coincides with its `GOLDEN_MULTI` 2x2 entry:
/// the plan really is a no-op there, armed detectors and all.
const GOLDEN_CHAOS_MULTI: [(&str, &str, u64); 2] = [
    ("FR-FCFS", "rand-75%-01", 0x437f563057e4e484),
    ("TCM", "rand-75%-01", 0xc2dba57447602141),
];

fn assert_matches_chaos_multi_golden(hosts: usize) {
    let got = compute_chaos_multi_fingerprints(hosts);
    assert_eq!(got.len(), GOLDEN_CHAOS_MULTI.len(), "grid shape changed");
    for ((policy, workload, fp), (gp, gw, gfp)) in got.iter().zip(GOLDEN_CHAOS_MULTI) {
        assert_eq!((policy.as_str(), workload.as_str()), (gp, gw));
        assert_eq!(
            *fp, gfp,
            "chaos-multi RunResult drifted for {policy} x {workload} \
             ({hosts} hosts): {fp:#018x} != golden {gfp:#018x}"
        );
    }
}

/// The acceptance bar for fault-tolerant sharding: the same faults, the
/// same quarantines, the same bits — at one, two, and three hosts.
#[test]
fn chaos_multi_grid_matches_golden_fingerprints() {
    assert_matches_chaos_multi_golden(1);
}

#[test]
fn sharded_chaos_multi_grid_matches_golden_fingerprints() {
    assert_matches_chaos_multi_golden(2);
    assert_matches_chaos_multi_golden(3);
}

#[test]
#[ignore = "re-capture helper: prints the GOLDEN_CHAOS_MULTI table"]
fn print_chaos_multi_fingerprints() {
    for (policy, workload, fp) in compute_chaos_multi_fingerprints(1) {
        println!("    (\"{policy}\", \"{workload}\", {fp:#018x}),");
    }
}
