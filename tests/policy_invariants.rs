//! Invariants every scheduling policy must uphold when driving the full
//! system: conservation of requests, forward progress, and bounded
//! statistics.

use tcm::core::TcmParams;
use tcm::sched::{AtlasParams, ParBsParams, StfmParams};
use tcm::sim::{PolicyKind, System};
use tcm::types::SystemConfig;
use tcm::workload::random_workload;

fn all_policies(n: usize) -> Vec<PolicyKind> {
    let mut tcm = TcmParams::reproduction_default(n);
    tcm.quantum = 100_000;
    vec![
        PolicyKind::Fcfs,
        PolicyKind::FrFcfs,
        PolicyKind::Stfm(StfmParams::paper_default()),
        PolicyKind::ParBs(ParBsParams::paper_default()),
        PolicyKind::Atlas(AtlasParams::with_quantum(100_000)),
        PolicyKind::Tcm(tcm),
    ]
}

#[test]
fn every_policy_conserves_requests_and_makes_progress() {
    let n = 8;
    let cfg = SystemConfig::builder().num_threads(n).build().unwrap();
    let workload = random_workload(7, n, 0.75);
    for kind in all_policies(n) {
        let mut sys = System::new(&cfg, &workload, kind.build(n, &cfg), 1);
        let r = sys.run(600_000);
        let injected: u64 = r.misses.iter().sum();
        // Serviced <= injected; the difference is bounded by what can
        // still be in flight (MSHRs per core).
        assert!(
            r.total_serviced <= injected,
            "{}: serviced more than injected",
            kind.label()
        );
        let in_flight_bound = (n * cfg.mshrs_per_core) as u64 + cfg.request_buffer as u64;
        assert!(
            injected - r.total_serviced <= in_flight_bound,
            "{}: {} requests vanished",
            kind.label(),
            injected - r.total_serviced
        );
        // Every thread makes progress (no policy fully starves anyone at
        // this horizon: PAR-BS batching and ATLAS thresholds guarantee it,
        // TCM shuffles, FR-FCFS/FCFS age out).
        for (t, &retired) in r.retired.iter().enumerate() {
            assert!(retired > 0, "{}: thread {t} starved", kind.label());
        }
        assert!((0.0..=1.0).contains(&r.row_hit_rate));
    }
}

#[test]
fn policies_produce_different_schedules() {
    // The policies must actually differ: identical results across all of
    // them would mean hooks/rankings are dead code.
    let n = 8;
    let cfg = SystemConfig::builder().num_threads(n).build().unwrap();
    let workload = random_workload(2, n, 1.0);
    let mut outcomes = std::collections::HashSet::new();
    for kind in all_policies(n) {
        let mut sys = System::new(&cfg, &workload, kind.build(n, &cfg), 1);
        let r = sys.run(600_000);
        outcomes.insert(r.retired.clone());
    }
    assert!(
        outcomes.len() >= 4,
        "expected >=4 distinct schedules, got {}",
        outcomes.len()
    );
}

#[test]
fn weights_are_honored_by_weight_aware_policies() {
    let n = 6;
    let cfg = SystemConfig::builder().num_threads(n).build().unwrap();
    let workload = random_workload(4, n, 1.0);
    for kind in [
        PolicyKind::Atlas(AtlasParams::with_quantum(100_000)),
        PolicyKind::Tcm({
            let mut p = TcmParams::reproduction_default(n);
            p.quantum = 100_000;
            p
        }),
    ] {
        let run = |weights: Option<&[f64]>| {
            let mut sys = System::new(&cfg, &workload, kind.build(n, &cfg), 1);
            if let Some(w) = weights {
                sys.set_thread_weights(w);
            }
            sys.run(800_000)
        };
        let unweighted = run(None);
        let mut weights = vec![1.0; n];
        weights[0] = 32.0;
        let weighted = run(Some(&weights));
        assert!(
            weighted.retired[0] > unweighted.retired[0],
            "{}: weight-32 thread should retire more ({} vs {})",
            kind.label(),
            weighted.retired[0],
            unweighted.retired[0]
        );
    }
}
