//! Sanity of the slowdown/metric pipeline: alone runs, contention, and
//! metric identities.

use tcm::sim::{PolicyKind, RunConfig, Session};
use tcm::types::SystemConfig;
use tcm::workload::{random_workload, BenchmarkProfile, WorkloadSpec};

#[test]
fn solo_thread_has_unit_slowdown() {
    // A "workload" of one thread is its own alone run: slowdown == 1.
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::builder().num_threads(1).build().unwrap())
            .horizon(400_000)
            .build(),
    );
    let profile = tcm::workload::spec_by_name("libquantum").unwrap();
    let workload = WorkloadSpec::new("solo", vec![profile]);
    let r = session.eval(&PolicyKind::FrFcfs, &workload);
    // Not exactly 1.0: the alone cache uses its own seed; the tolerance
    // bounds the statistical wobble of the generator.
    assert!(
        (r.slowdowns[0] - 1.0).abs() < 0.15,
        "solo slowdown {} should be ~1",
        r.slowdowns[0]
    );
}

#[test]
fn compute_only_threads_never_slow_down() {
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::builder().num_threads(4).build().unwrap())
            .horizon(300_000)
            .build(),
    );
    let mut threads = vec![BenchmarkProfile::new("idle", 0.0, 0.5, 1.0)];
    for _ in 0..3 {
        threads.push(BenchmarkProfile::random_access());
    }
    let workload = WorkloadSpec::new("idle-mix", threads);
    let r = session.eval(&PolicyKind::FrFcfs, &workload);
    assert!((r.slowdowns[0] - 1.0).abs() < 1e-9, "compute-only thread is unaffected");
}

#[test]
fn contention_produces_slowdowns_and_valid_metrics() {
    let threads = 12;
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::builder().num_threads(threads).build().unwrap())
            .horizon(500_000)
            .build(),
    );
    let workload = random_workload(2, threads, 1.0);
    let r = session.eval(&PolicyKind::FrFcfs, &workload);
    assert!(r.metrics.max_slowdown > 1.5, "full intensity must contend");
    assert!(r.metrics.weighted_speedup > 0.0);
    assert!(r.metrics.weighted_speedup <= threads as f64 + 1e-9);
    assert!(r.metrics.harmonic_speedup > 0.0);
    assert!(r.metrics.harmonic_speedup <= 1.2);
    // Max slowdown is the max of the per-thread slowdowns.
    let max = r.slowdowns.iter().cloned().fold(f64::MIN, f64::max);
    assert!((max - r.metrics.max_slowdown).abs() < 1e-9);
}

#[test]
fn alone_cache_is_reused_across_policies() {
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::builder().num_threads(4).build().unwrap())
            .horizon(200_000)
            .build(),
    );
    let workload = random_workload(3, 4, 0.5);
    session.eval(&PolicyKind::FrFcfs, &workload);
    let after_first = session.alone_cache().len();
    let misses_after_first = session.alone_cache().misses();
    session.eval(&PolicyKind::Fcfs, &workload);
    assert_eq!(
        session.alone_cache().len(),
        after_first,
        "second policy reuses alone runs"
    );
    assert_eq!(
        session.alone_cache().misses(),
        misses_after_first,
        "second policy triggers no new alone simulations"
    );
}
