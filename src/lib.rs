//! Facade crate for the TCM (Thread Cluster Memory Scheduling, MICRO 2010)
//! reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples,
//! integration tests and downstream users can write `use tcm::...`.
//!
//! # Quickstart
//!
//! ```
//! use tcm::types::SystemConfig;
//!
//! let cfg = SystemConfig::paper_baseline();
//! assert_eq!(cfg.num_threads, 24);
//! ```

pub use tcm_chaos as chaos;
pub use tcm_core as core;
pub use tcm_cpu as cpu;
pub use tcm_dram as dram;
pub use tcm_proto as proto;
pub use tcm_sched as sched;
pub use tcm_serve as serve;
pub use tcm_sim as sim;
pub use tcm_telemetry as telemetry;
pub use tcm_types as types;
pub use tcm_workload as workload;
