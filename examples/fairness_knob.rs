//! TCM's fairness/performance knob (paper Section 7.1): sweeping
//! `ClusterThresh` trades system throughput against fairness smoothly —
//! something single-policy schedulers cannot do.
//!
//! Run with: `cargo run --release --example fairness_knob`

use tcm::core::TcmParams;
use tcm::sim::{evaluate, AloneCache, PolicyKind, RunConfig};
use tcm::types::SystemConfig;
use tcm::workload::random_workload;

fn main() {
    let n = 24;
    let rc = RunConfig {
        system: SystemConfig::paper_baseline(),
        horizon: 10_000_000,
    };
    let workload = random_workload(7, n, 0.5);
    let mut alone = AloneCache::new();

    println!("workload: {workload}");
    println!();
    println!("{:>13} | {:>8} {:>8}", "ClusterThresh", "WS", "maxSD");
    for k in 2..=6 {
        let thresh = k as f64 / n as f64;
        let params = TcmParams::reproduction_default(n).with_cluster_thresh(thresh);
        let r = evaluate(&PolicyKind::Tcm(params), &workload, &rc, &mut alone);
        println!(
            "{:>11}/{} | {:8.2} {:8.2}",
            k, n, r.metrics.weighted_speedup, r.metrics.max_slowdown
        );
    }
    println!();
    println!("Expected shape (paper Fig. 6): larger thresholds admit more");
    println!("threads into the latency-sensitive cluster, raising weighted");
    println!("speedup while the shrinking bandwidth share raises the maximum");
    println!("slowdown — a smooth throughput/fairness continuum.");
}
