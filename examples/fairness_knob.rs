//! TCM's fairness/performance knob (paper Section 7.1): sweeping
//! `ClusterThresh` trades system throughput against fairness smoothly —
//! something single-policy schedulers cannot do.
//!
//! Run with: `cargo run --release --example fairness_knob`

use tcm::core::TcmParams;
use tcm::sim::{PolicyKind, RunConfig, Session};
use tcm::types::SystemConfig;
use tcm::workload::random_workload;

fn main() {
    let n = 24;
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::paper_baseline())
            .horizon(10_000_000)
            .build(),
    );
    let workload = random_workload(7, n, 0.5);

    println!("workload: {workload}");

    // All five knob settings run as one sharded sweep.
    let grid = session
        .sweep()
        .policies((2..=6).map(|k| {
            let thresh = k as f64 / n as f64;
            PolicyKind::Tcm(TcmParams::reproduction_default(n).with_cluster_thresh(thresh))
        }))
        .workloads([workload])
        .run_auto();

    println!();
    println!("{:>13} | {:>8} {:>8}", "ClusterThresh", "WS", "maxSD");
    for (i, k) in (2..=6).enumerate() {
        let m = grid.get(i, 0, 0).metrics;
        println!(
            "{:>11}/{} | {:8.2} {:8.2}",
            k, n, m.weighted_speedup, m.max_slowdown
        );
    }
    println!();
    println!("Expected shape (paper Fig. 6): larger thresholds admit more");
    println!("threads into the latency-sensitive cluster, raising weighted");
    println!("speedup while the shrinking bandwidth share raises the maximum");
    println!("slowdown — a smooth throughput/fairness continuum.");
}
