//! The paper's motivating experiment (Table 1 / Figure 2): two
//! bandwidth-sensitive threads with identical memory intensity but
//! opposite bank-level parallelism and row-buffer locality, run under
//! both strict prioritization orders.
//!
//! The paper's observation — reproduced here — is that the
//! *random-access* thread (high BLP, low RBL) is far more vulnerable to
//! deprioritization than the *streaming* thread (low BLP, high RBL):
//! a bank conflict destroys the random-access thread's bank-level
//! parallelism and serializes its requests, while the streaming thread
//! keeps streaming whenever it gets its bank. This asymmetry is what
//! TCM's *niceness* metric captures.
//!
//! This example also demonstrates implementing a custom scheduling policy
//! against the public [`tcm::sched::Scheduler`] trait.
//!
//! Run with: `cargo run --release --example random_vs_streaming`

use tcm::sched::select::{age_key, pick_max_by_key, row_hit};
use tcm::sched::{PickContext, Scheduler};
use tcm::sim::{RunConfig, Session, System};
use tcm::types::{Request, SystemConfig, ThreadId};
use tcm::workload::{BenchmarkProfile, WorkloadSpec};

/// Strict static priority: `top` always wins, then row-hit, then oldest.
#[derive(Debug)]
struct StrictPriority {
    top: ThreadId,
}

impl Scheduler for StrictPriority {
    fn name(&self) -> &'static str {
        "strict-priority"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        pick_max_by_key(pending, |r| {
            (r.thread == self.top, row_hit(r, ctx.open_row), age_key(r))
        })
    }
}

fn main() {
    let horizon = 10_000_000;
    let mut system_cfg = SystemConfig::paper_baseline();
    system_cfg.num_threads = 2;


    let random = BenchmarkProfile::random_access();
    let streaming = BenchmarkProfile::streaming();
    println!("Table 1 microbenchmarks:");
    println!("  {random}");
    println!("  {streaming}");

    // Alone IPCs for the slowdown denominators, via a Session on the
    // same two-thread machine.
    let session = Session::new(
        RunConfig::builder()
            .system(system_cfg.clone())
            .horizon(horizon)
            .build(),
    );
    let alone_random = session.alone_ipc(&random);
    let alone_streaming = session.alone_ipc(&streaming);

    let workload = WorkloadSpec::new("fig2", vec![random, streaming]);
    println!();
    for (label, top) in [("random-access", 0usize), ("streaming", 1usize)] {
        let policy = StrictPriority {
            top: ThreadId::new(top),
        };
        let mut sys = System::new(&system_cfg, &workload, Box::new(policy), 5);
        let run = sys.run(horizon);
        println!("strictly prioritizing the {label} thread:");
        println!(
            "  random-access slowdown: {:5.2}x",
            alone_random / run.ipc[0]
        );
        println!(
            "  streaming slowdown:     {:5.2}x",
            alone_streaming / run.ipc[1]
        );
    }
    println!();
    println!("Expected shape (paper Fig. 2): the random-access thread suffers");
    println!("far more when deprioritized than the streaming thread does.");
}
