//! OS-assigned thread weights (paper Section 7.4 / Figure 8): weights are
//! assigned in the worst possible way for throughput — higher weights to
//! more memory-intensive threads. ATLAS adheres to the weights blindly;
//! TCM honors them *within* clusters, protecting latency-sensitive
//! threads.
//!
//! Run with: `cargo run --release --example thread_weights`

use tcm::core::TcmParams;
use tcm::sched::AtlasParams;
use tcm::sim::{PolicyKind, RunConfig, Session};
use tcm::types::SystemConfig;
use tcm::workload::{spec_by_name, WorkloadSpec};

fn main() {
    // The paper's Figure 8 mix: gcc(1), wrf(2), GemsFDTD(4), lbm(8),
    // libquantum(16), mcf(32) — weight rises with memory intensity.
    let apps = [
        ("gcc", 1.0),
        ("wrf", 2.0),
        ("GemsFDTD", 4.0),
        ("lbm", 8.0),
        ("libquantum", 16.0),
        ("mcf", 32.0),
    ];
    let copies = 4; // 6 apps x 4 copies = 24 threads
    let mut threads = Vec::new();
    let mut weights = Vec::new();
    for (name, weight) in apps {
        let profile = spec_by_name(name).expect("Table 4 benchmark");
        for _ in 0..copies {
            threads.push(profile.clone());
            weights.push(weight);
        }
    }
    let workload = WorkloadSpec::new("weights", threads);

    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::paper_baseline())
            .horizon(10_000_000)
            .build(),
    );

    let grid = session
        .sweep()
        .policies([
            PolicyKind::Atlas(AtlasParams::paper_default()),
            PolicyKind::Tcm(TcmParams::reproduction_default(24)),
        ])
        .workloads([workload])
        .weights(&weights)
        .run_auto();
    for cell in grid.cells() {
        let r = &cell.result;
        println!("{} (weights favor intensive threads):", r.policy);
        for (a, (name, weight)) in apps.iter().enumerate() {
            let avg: f64 = (0..copies)
                .map(|c| r.speedups[a * copies + c])
                .sum::<f64>()
                / copies as f64;
            println!("  {name:>10} (weight {weight:>4}): speedup {avg:5.2}");
        }
        println!(
            "  => WS {:.2}, maxSD {:.2}\n",
            r.metrics.weighted_speedup, r.metrics.max_slowdown
        );
    }
    println!("Expected shape (paper Fig. 8): TCM keeps the light (gcc/wrf)");
    println!("threads fast despite their low weights, yielding much better");
    println!("system throughput and fairness than ATLAS's blind adherence.");
}
