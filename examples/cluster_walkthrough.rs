//! A walkthrough of TCM's internal machinery on synthetic monitor data:
//! clustering (Algorithm 1), niceness, and the insertion shuffle
//! (Algorithm 2) — without running the full simulator.
//!
//! Run with: `cargo run --example cluster_walkthrough`

use tcm::core::{cluster_threads, niceness_scores, InsertionShuffler, RoundRobinShuffler};
use tcm::types::ThreadId;

fn main() {
    // Eight threads with measured per-quantum behavior (as TCM's
    // monitors would report): MPKI, bandwidth usage (bank-busy cycles),
    // BLP, RBL.
    let names = ["povray", "gcc", "h264ref", "hmmer", "omnetpp", "lbm", "soplex", "mcf"];
    let mpki = [0.01, 0.34, 2.30, 5.66, 21.63, 43.52, 46.70, 97.38];
    let bw: [u64; 8] = [40, 1_300, 8_000, 18_000, 95_000, 140_000, 150_000, 210_000];
    let blp = [1.4, 2.0, 1.2, 1.3, 4.4, 2.8, 1.8, 6.2];
    let rbl = [0.87, 0.71, 0.90, 0.34, 0.46, 0.95, 0.89, 0.42];

    // --- Step 1: clustering (Algorithm 1) --------------------------------
    let thresh = 4.0 / 8.0; // ClusterThresh 4/N
    let clusters = cluster_threads(&mpki, &bw, thresh);
    println!("ClusterThresh {thresh}: latency cluster gets that fraction of");
    println!("last quantum's total bandwidth usage.\n");
    println!("latency-sensitive cluster (strictly prioritized, lowest MPKI first):");
    for t in &clusters.latency {
        println!("  {} (MPKI {})", names[t.index()], mpki[t.index()]);
    }
    println!("bandwidth-sensitive cluster (shares leftover bandwidth fairly):");
    for t in &clusters.bandwidth {
        println!("  {} (MPKI {})", names[t.index()], mpki[t.index()]);
    }

    // --- Step 2: niceness -------------------------------------------------
    let bw_threads = clusters.bandwidth.clone();
    let bw_blp: Vec<f64> = bw_threads.iter().map(|t| blp[t.index()]).collect();
    let bw_rbl: Vec<f64> = bw_threads.iter().map(|t| rbl[t.index()]).collect();
    let niceness = niceness_scores(&bw_blp, &bw_rbl);
    println!("\nniceness (high BLP => fragile => nice; high RBL => hostile):");
    for (t, n) in bw_threads.iter().zip(&niceness) {
        println!(
            "  {:>8}: BLP {:4.1} RBL {:4.2} -> niceness {:+}",
            names[t.index()],
            blp[t.index()],
            rbl[t.index()],
            n
        );
    }

    // --- Step 3: insertion shuffle (Algorithm 2) --------------------------
    let entries: Vec<(ThreadId, i64)> =
        bw_threads.iter().copied().zip(niceness.iter().copied()).collect();
    let mut insertion = InsertionShuffler::new(entries);
    let mut round_robin = RoundRobinShuffler::new(bw_threads.clone());
    let n = bw_threads.len();
    println!("\npriority order over one shuffle period (top = highest priority):");
    println!("{:>10}  {:<20} {:<20}", "interval", "insertion", "round-robin");
    for interval in 0..2 * n {
        let ins: Vec<&str> = insertion
            .ranking_vec()
            .iter()
            .rev()
            .map(|t| names[t.index()])
            .collect();
        let rr: Vec<&str> = round_robin
            .ranking()
            .iter()
            .rev()
            .map(|t| names[t.index()])
            .collect();
        println!("{:>10}  {:<20} {:<20}", interval, ins.join(">"), rr.join(">"));
        insertion.advance();
        round_robin.advance();
    }
    println!("\nNote how under insertion shuffle the least nice (streaming-like)");
    println!("thread sits at the lowest priority almost always, while nicer");
    println!("threads share the top; round-robin instead preserves relative");
    println!("positions, so a thread stuck behind a hostile one stays stuck.");
}
