//! Quickstart: compare TCM against FR-FCFS on one multiprogrammed
//! workload and print the paper's three metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcm::sim::{PolicyKind, RunConfig, Session};
use tcm::types::SystemConfig;
use tcm::workload::random_workload;
use tcm_core::TcmParams;

fn main() {
    // The paper's baseline machine: 24 cores, 4 memory controllers,
    // DDR2-800 timing (Table 3). A Session fixes the machine and caches
    // the alone-run IPCs (the slowdown denominators) across policies.
    let session = Session::new(
        RunConfig::builder()
            .system(SystemConfig::paper_baseline())
            .horizon(5_000_000)
            .build(),
    );

    // A random 24-thread workload, half memory-intensive — the paper's
    // default workload category.
    let workload = random_workload(42, 24, 0.5);
    println!("workload: {workload}");
    for (i, profile) in workload.threads.iter().enumerate() {
        println!("  T{i:<2} {profile}");
    }

    // Both policies run as one sweep, sharded across worker threads;
    // parallel execution is bit-identical to serial.
    let grid = session
        .sweep()
        .policies([
            PolicyKind::FrFcfs,
            PolicyKind::Tcm(TcmParams::reproduction_default(24)),
        ])
        .workloads([workload])
        .run_auto();

    println!();
    println!(
        "{:>8} | {:>8} {:>8} {:>8}",
        "policy", "WS", "maxSD", "HS"
    );
    for cell in grid.cells() {
        let result = &cell.result;
        println!(
            "{:>8} | {:8.2} {:8.2} {:8.3}",
            result.policy,
            result.metrics.weighted_speedup,
            result.metrics.max_slowdown,
            result.metrics.harmonic_speedup,
        );
    }
    println!();
    println!("{}", grid.stats().throughput_line());
    println!("WS = weighted speedup (throughput, higher is better)");
    println!("maxSD = maximum slowdown (unfairness, lower is better)");
    println!("HS = harmonic speedup (balance, higher is better)");
}
