//! Quickstart: compare TCM against FR-FCFS on one multiprogrammed
//! workload and print the paper's three metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tcm::sim::{evaluate, AloneCache, PolicyKind, RunConfig};
use tcm::types::SystemConfig;
use tcm::workload::random_workload;
use tcm_core::TcmParams;

fn main() {
    // The paper's baseline machine: 24 cores, 4 memory controllers,
    // DDR2-800 timing (Table 3).
    let rc = RunConfig {
        system: SystemConfig::paper_baseline(),
        horizon: 5_000_000,
    };

    // A random 24-thread workload, half memory-intensive — the paper's
    // default workload category.
    let workload = random_workload(42, 24, 0.5);
    println!("workload: {workload}");
    for (i, profile) in workload.threads.iter().enumerate() {
        println!("  T{i:<2} {profile}");
    }

    // Alone-run IPCs (the slowdown denominators) are computed once and
    // cached across policies.
    let mut alone = AloneCache::new();

    println!();
    println!(
        "{:>8} | {:>8} {:>8} {:>8}",
        "policy", "WS", "maxSD", "HS"
    );
    for policy in [
        PolicyKind::FrFcfs,
        PolicyKind::Tcm(TcmParams::reproduction_default(24)),
    ] {
        let result = evaluate(&policy, &workload, &rc, &mut alone);
        println!(
            "{:>8} | {:8.2} {:8.2} {:8.3}",
            result.policy,
            result.metrics.weighted_speedup,
            result.metrics.max_slowdown,
            result.metrics.harmonic_speedup,
        );
    }
    println!();
    println!("WS = weighted speedup (throughput, higher is better)");
    println!("maxSD = maximum slowdown (unfairness, lower is better)");
    println!("HS = harmonic speedup (balance, higher is better)");
}
