//! Deterministic fault injection for the TCM reproduction.
//!
//! The hardening pass gave the simulator a defensive layer — the DRAM
//! protocol checker, the forward-progress watchdog and
//! panic-isolated sweeps — but nothing in the repo demonstrated those
//! defenses *fire*: every test exercised legal streams, so a checker
//! regression that silently stopped detecting tRCD violations would have
//! passed CI. This crate closes that gap with a seeded, deterministic
//! fault-injection subsystem ("chaos layer") threaded through
//! `tcm-dram`, `tcm-sched`, `tcm-core` and `tcm-sim`.
//!
//! The vocabulary:
//!
//! * [`FaultKind`] — the ten injectable fault classes, each mapped
//!   1:1 to the detector expected to catch it ([`FaultKind::detector`]);
//! * [`FaultSpec`] — one scheduled fault: a kind plus *when* (cycle) and
//!   *where* (channel / thread / controller) to strike;
//! * [`FaultPlan`] — an immutable schedule of faults, built explicitly
//!   or drawn from a seeded RNG ([`FaultPlan::campaign`] for flat
//!   machines, [`FaultPlan::campaign_for`] for arbitrary topologies).
//!   All randomness happens at *construction*; executing a plan draws
//!   nothing, so a plan replays bit-identically. Under multi-controller
//!   topologies, [`FaultPlan::validate`] turns mistargeted addresses
//!   into typed config errors instead of silent aliasing;
//! * [`ChannelChaos`] — the per-channel execution state a DRAM channel
//!   carries while a plan is live (armed faults, fired flags, observed
//!   bus history).
//!
//! The zero-fault plan ([`FaultPlan::none`]) is a strict no-op: a run
//! with it installed is bit-identical to a run without the chaos layer
//! at all (tests assert this).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcm_types::{ConfigError, Cycle, Invariant, Topology};

/// What is expected to catch a given [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detector {
    /// The DRAM protocol checker reports this invariant class.
    Invariant(Invariant),
    /// The forward-progress watchdog reports `SimError::Stalled`.
    Stall,
    /// TCM's plausibility guard engages graceful degradation (the run
    /// itself completes; no error is surfaced).
    Degradation,
    /// The meta-controller's staleness/plausibility guard quarantines
    /// the afflicted controller — healthy controllers keep TCM
    /// clustering, the quarantined one falls back to local FR-FCFS
    /// until re-admitted (the run itself completes; typed quarantine
    /// events are surfaced). Multi-controller topologies only; these
    /// faults are inert on the flat single-controller engine.
    Quarantine,
}

/// The injectable fault classes.
///
/// Each class corrupts one specific mechanism and maps 1:1 to the
/// detector expected to catch it, so coverage tests can assert every
/// detector fires on its matching fault and stays silent otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Service a column access faster than tRCD allows: the reported
    /// `service_cycles` is shortened below the access phase implied by
    /// the row-buffer state. Detector: `Invariant::BankTiming`.
    TimingViolation,
    /// Corrupt the reported row-buffer state of one access (hit
    /// reported where the shadow row-buffer proves otherwise).
    /// Detector: `Invariant::RowState`.
    RowCorruption,
    /// Start a data-bus transfer while the previous transfer still owns
    /// the bus. Detector: `Invariant::BusOverlap`.
    BusOverlap,
    /// Admit one request into a controller buffer twice.
    /// Detector: `Invariant::Conservation` (admitted twice).
    DuplicateRequest,
    /// Silently drop one admitted request from a controller buffer; its
    /// data never returns. Detector: `Invariant::Conservation` at the
    /// end-of-run accounting (admitted ≠ serviced + still queued).
    DropRequest,
    /// Flood one controller's spill queue past the MSHR-implied bound
    /// on outstanding misses. Detector: `Invariant::ResourceBound`.
    SpillFlood,
    /// Corrupt one thread's MPKI/RBL/BLP monitor state at the next TCM
    /// quantum boundary (deterministic sign/exponent bit flips).
    /// Detector: TCM's plausibility guard → graceful degradation.
    MonitorCorruption,
    /// Make the scheduler spin: from the fault cycle on, `next_tick`
    /// returns the current cycle forever, freezing simulated time.
    /// Detector: the same-cycle livelock guard → `SimError::Stalled`.
    SchedulerSpin,
    /// One controller's monitor samples go absent at the first quantum
    /// boundary at or after the arm cycle: the meta-controller sees a
    /// controller that used to participate suddenly report nothing.
    /// Detector: the meta-controller's staleness guard → quarantine.
    ControllerBlackout,
    /// One controller reports physically impossible aggregates at a
    /// quantum boundary (more row hits than accesses). Detector: the
    /// meta-controller's plausibility guard → quarantine.
    MonitorSkew,
}

impl FaultKind {
    /// Every fault class, in a fixed order (campaigns iterate this).
    /// The two coordination faults come last so seeded draws for the
    /// original eight classes are unchanged.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::TimingViolation,
        FaultKind::RowCorruption,
        FaultKind::BusOverlap,
        FaultKind::DuplicateRequest,
        FaultKind::DropRequest,
        FaultKind::SpillFlood,
        FaultKind::MonitorCorruption,
        FaultKind::SchedulerSpin,
        FaultKind::ControllerBlackout,
        FaultKind::MonitorSkew,
    ];

    /// Short human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            FaultKind::TimingViolation => "timing-violation",
            FaultKind::RowCorruption => "row-corruption",
            FaultKind::BusOverlap => "bus-overlap",
            FaultKind::DuplicateRequest => "duplicate-request",
            FaultKind::DropRequest => "drop-request",
            FaultKind::SpillFlood => "spill-flood",
            FaultKind::MonitorCorruption => "monitor-corruption",
            FaultKind::SchedulerSpin => "scheduler-spin",
            FaultKind::ControllerBlackout => "controller-blackout",
            FaultKind::MonitorSkew => "monitor-skew",
        }
    }

    /// The detector expected to catch this fault — and the only one
    /// that should.
    pub const fn detector(self) -> Detector {
        match self {
            FaultKind::TimingViolation => Detector::Invariant(Invariant::BankTiming),
            FaultKind::RowCorruption => Detector::Invariant(Invariant::RowState),
            FaultKind::BusOverlap => Detector::Invariant(Invariant::BusOverlap),
            FaultKind::DuplicateRequest => Detector::Invariant(Invariant::Conservation),
            FaultKind::DropRequest => Detector::Invariant(Invariant::Conservation),
            FaultKind::SpillFlood => Detector::Invariant(Invariant::ResourceBound),
            FaultKind::MonitorCorruption => Detector::Degradation,
            FaultKind::SchedulerSpin => Detector::Stall,
            FaultKind::ControllerBlackout | FaultKind::MonitorSkew => Detector::Quarantine,
        }
    }

    /// Whether this fault executes inside a DRAM channel (as opposed to
    /// the scheduler or the simulator's admission path).
    pub const fn is_channel_fault(self) -> bool {
        matches!(
            self,
            FaultKind::TimingViolation
                | FaultKind::RowCorruption
                | FaultKind::BusOverlap
                | FaultKind::DuplicateRequest
                | FaultKind::DropRequest
        )
    }

    /// Whether this fault's site is a channel, so its `channel` target
    /// is meaningful (channel faults plus the spill flood, which
    /// strikes the controller buffer feeding a channel).
    pub const fn targets_channel(self) -> bool {
        self.is_channel_fault() || matches!(self, FaultKind::SpillFlood)
    }

    /// Whether this fault strikes quantum-boundary coordination between
    /// a controller and the TCM meta-controller (the two kinds mapped
    /// to [`Detector::Quarantine`]).
    pub const fn is_coordination_fault(self) -> bool {
        matches!(self, FaultKind::ControllerBlackout | FaultKind::MonitorSkew)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: what, when, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault class to inject.
    pub kind: FaultKind,
    /// Earliest cycle at which the fault arms. Channel faults fire on
    /// the first eligible channel operation at or after this cycle;
    /// monitor faults apply at the first TCM quantum boundary at or
    /// after it.
    pub at: Cycle,
    /// Target channel index — *global* across the whole topology
    /// (channel faults and floods; ignored otherwise). Engines must
    /// resolve it to an owning controller via `Topology::partition`,
    /// never by assuming flat indexing; [`FaultPlan::validate`] rejects
    /// out-of-range indices up front.
    pub channel: usize,
    /// Target thread index (monitor corruption and skew; ignored
    /// otherwise).
    pub thread: usize,
    /// Target controller index (scheduler spins and coordination
    /// faults under multi-controller topologies; ignored by
    /// channel-sited faults, whose controller is derived from
    /// `channel`).
    pub controller: usize,
}

impl FaultSpec {
    /// A spec for `kind` arming at cycle `at` on channel 0 / thread 0 /
    /// controller 0.
    pub const fn new(kind: FaultKind, at: Cycle) -> Self {
        Self {
            kind,
            at,
            channel: 0,
            thread: 0,
            controller: 0,
        }
    }

    /// Returns the spec retargeted to `channel` (a global index; see
    /// the field docs).
    pub const fn on_channel(mut self, channel: usize) -> Self {
        self.channel = channel;
        self
    }

    /// Returns the spec retargeted to `thread`.
    pub const fn on_thread(mut self, thread: usize) -> Self {
        self.thread = thread;
        self
    }

    /// Returns the spec retargeted to `controller`.
    pub const fn on_controller(mut self, controller: usize) -> Self {
        self.controller = controller;
        self
    }

    /// Resolves this fault's global channel target to its owning
    /// controller and local channel index under `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the channel index is out of range
    /// for the topology (the typed replacement for silent aliasing).
    pub fn partition_for(
        &self,
        topology: &Topology,
    ) -> Result<(tcm_types::ControllerId, usize), ConfigError> {
        topology.partition(self.channel).map_err(|_| {
            ConfigError::invalid(
                "chaos",
                format!(
                    "fault `{}` targets channel {} but the topology has {} channels",
                    self.kind,
                    self.channel,
                    topology.num_channels()
                ),
            )
        })
    }
}

/// An immutable, deterministic schedule of faults.
///
/// Install on a simulator via `System::install_chaos` (in `tcm-sim`) or
/// per-cell via `RunConfig`. All randomness happens when the plan is
/// built; replaying the same plan on the same inputs is bit-identical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan. Installing it is a strict no-op: results are
    /// bit-identical to a run without the chaos layer at all.
    pub const fn none() -> Self {
        Self { faults: Vec::new() }
    }

    /// A plan with exactly one fault of `kind` arming at cycle `at`
    /// (channel 0, thread 0 — retarget via [`FaultPlan::with_fault`]).
    pub fn single(kind: FaultKind, at: Cycle) -> Self {
        Self {
            faults: vec![FaultSpec::new(kind, at)],
        }
    }

    /// Returns the plan with `fault` appended.
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// A seeded campaign: one fault of every class, with arm cycles
    /// drawn uniformly from `[horizon/8, horizon/2)` and channel/thread
    /// targets drawn from the machine shape. Equal seeds produce equal
    /// plans; the RNG is consumed here and never during execution.
    /// Controllers are not drawn (every fault targets controller 0) —
    /// use [`FaultPlan::campaign_for`] for topology-aware campaigns.
    pub fn campaign(seed: u64, horizon: Cycle, num_channels: usize, num_threads: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lo = (horizon / 8).max(1);
        let hi = (horizon / 2).max(lo + 1);
        let faults = FaultKind::ALL
            .iter()
            .map(|&kind| FaultSpec {
                kind,
                at: rng.gen_range(lo..hi),
                channel: rng.gen_range(0..num_channels.max(1)),
                thread: rng.gen_range(0..num_threads.max(1)),
                controller: 0,
            })
            .collect();
        Self { faults }
    }

    /// A topology-aware seeded campaign: like [`FaultPlan::campaign`]
    /// but channel targets are drawn across the whole topology and
    /// controller targets across its controllers. Channel-sited faults
    /// get their controller *derived* from the drawn channel via
    /// `Topology::partition`, so the two addresses always agree; other
    /// faults draw a controller independently. The result always
    /// passes [`FaultPlan::validate`] for the same topology.
    pub fn campaign_for(topology: &Topology, seed: u64, horizon: Cycle, num_threads: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lo = (horizon / 8).max(1);
        let hi = (horizon / 2).max(lo + 1);
        let faults = FaultKind::ALL
            .iter()
            .map(|&kind| {
                let at = rng.gen_range(lo..hi);
                let channel = rng.gen_range(0..topology.num_channels().max(1));
                let thread = rng.gen_range(0..num_threads.max(1));
                let drawn = rng.gen_range(0..topology.num_controllers().max(1));
                let controller = if kind.targets_channel() {
                    topology
                        .partition(channel)
                        .map(|(c, _)| c.index())
                        .unwrap_or(0)
                } else {
                    drawn
                };
                FaultSpec {
                    kind,
                    at,
                    channel,
                    thread,
                    controller,
                }
            })
            .collect();
        Self { faults }
    }

    /// Checks every fault's channel/controller address against
    /// `topology`, so a mistargeted plan is a typed config error at
    /// plan-install time instead of silently aliasing onto the wrong
    /// shard. Channel-sited faults are routed through
    /// `Topology::partition`; all other faults must name an existing
    /// controller.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the out-of-range fault.
    pub fn validate(&self, topology: &Topology) -> Result<(), ConfigError> {
        for f in &self.faults {
            if f.kind.targets_channel() {
                f.partition_for(topology)?;
            } else if f.controller >= topology.num_controllers() {
                return Err(ConfigError::invalid(
                    "chaos",
                    format!(
                        "fault `{}` targets controller {} but the topology has {} controllers",
                        f.kind,
                        f.controller,
                        topology.num_controllers()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Every scheduled fault, in insertion order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Execution state for the channel-level faults targeting `channel`
    /// (empty — but still installable — when none do).
    pub fn channel_chaos(&self, channel: usize) -> ChannelChaos {
        ChannelChaos::new(
            self.faults
                .iter()
                .filter(|f| f.kind.is_channel_fault() && f.channel == channel)
                .copied(),
        )
    }

    /// The monitor-corruption faults, in insertion order.
    pub fn monitor_faults(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultKind::MonitorCorruption)
            .copied()
    }

    /// Earliest scheduler-spin arm cycle, if the plan schedules one
    /// (all spins regardless of controller target — the flat engine
    /// has exactly one scheduler).
    pub fn spin_at(&self) -> Option<Cycle> {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultKind::SchedulerSpin)
            .map(|f| f.at)
            .min()
    }

    /// Earliest scheduler-spin arm cycle targeting `controller`, if
    /// the plan schedules one (the multi-controller engine wedges only
    /// the named shard's scheduler).
    pub fn spin_for(&self, controller: usize) -> Option<Cycle> {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultKind::SchedulerSpin && f.controller == controller)
            .map(|f| f.at)
            .min()
    }

    /// The coordination faults (controller blackout / monitor skew),
    /// in insertion order. Only the multi-controller engine executes
    /// these; they are inert on the flat engine.
    pub fn coordination_faults(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.faults
            .iter()
            .filter(|f| f.kind.is_coordination_fault())
            .copied()
    }

    /// The first spill-flood fault, if the plan schedules one.
    pub fn flood(&self) -> Option<FaultSpec> {
        self.faults
            .iter()
            .find(|f| f.kind == FaultKind::SpillFlood)
            .copied()
    }
}

/// Per-channel chaos execution state: which channel faults are armed,
/// which have fired, and the channel's observed bus history (needed to
/// construct an overlapping transfer deterministically).
///
/// Owned by a `tcm-dram` channel while a [`FaultPlan`] is installed;
/// every fault fires at most once, on the first eligible operation at
/// or after its arm cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelChaos {
    armed: Vec<FaultSpec>,
    fired: Vec<bool>,
    last_bus_end: Cycle,
}

impl ChannelChaos {
    /// State for the given channel faults.
    pub fn new(faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        let armed: Vec<FaultSpec> = faults.into_iter().collect();
        let fired = vec![false; armed.len()];
        Self {
            armed,
            fired,
            last_bus_end: 0,
        }
    }

    /// Whether no faults are scheduled on this channel.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Whether a fault of `kind` is armed (due and not yet fired) at
    /// cycle `now`. Does not consume the fault; pair with
    /// [`ChannelChaos::fire`] once the mutation actually happens.
    pub fn due(&self, kind: FaultKind, now: Cycle) -> bool {
        self.armed
            .iter()
            .zip(&self.fired)
            .any(|(f, &fired)| !fired && f.kind == kind && f.at <= now)
    }

    /// Consumes (marks fired) one armed fault of `kind` due at `now`.
    /// Returns `true` exactly once per scheduled fault.
    pub fn fire(&mut self, kind: FaultKind, now: Cycle) -> bool {
        for (f, fired) in self.armed.iter().zip(self.fired.iter_mut()) {
            if !*fired && f.kind == kind && f.at <= now {
                *fired = true;
                return true;
            }
        }
        false
    }

    /// Records the end cycle of a data-bus transfer the channel
    /// performed (mirrors the protocol checker's bus bookkeeping).
    pub fn observe_bus(&mut self, bus_end: Cycle) {
        self.last_bus_end = self.last_bus_end.max(bus_end);
    }

    /// End cycle of the latest observed data-bus transfer.
    pub fn last_bus_end(&self) -> Cycle {
        self.last_bus_end
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_distinct_name_and_a_detector() {
        for (i, a) in FaultKind::ALL.iter().enumerate() {
            for b in &FaultKind::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
            let _ = a.detector(); // total: no panic for any kind
        }
    }

    #[test]
    fn detector_mapping_is_one_to_one_with_invariant_classes() {
        use std::collections::HashSet;
        let invariants: HashSet<Invariant> = FaultKind::ALL
            .iter()
            .filter_map(|k| match k.detector() {
                Detector::Invariant(inv) => Some(inv),
                _ => None,
            })
            .collect();
        // All five invariant classes are covered by some fault.
        assert_eq!(invariants.len(), 5);
        // Stall, degradation and quarantine are covered too.
        assert!(FaultKind::ALL.iter().any(|k| k.detector() == Detector::Stall));
        assert!(FaultKind::ALL
            .iter()
            .any(|k| k.detector() == Detector::Degradation));
        assert!(FaultKind::ALL
            .iter()
            .any(|k| k.detector() == Detector::Quarantine));
        // Exactly the coordination faults map to quarantine.
        for k in FaultKind::ALL {
            assert_eq!(k.detector() == Detector::Quarantine, k.is_coordination_fault());
        }
    }

    #[test]
    fn campaign_is_deterministic_per_seed_and_covers_all_kinds() {
        let a = FaultPlan::campaign(7, 1_000_000, 4, 24);
        let b = FaultPlan::campaign(7, 1_000_000, 4, 24);
        assert_eq!(a, b);
        let c = FaultPlan::campaign(8, 1_000_000, 4, 24);
        assert_ne!(a, c, "different seeds draw different schedules");
        assert_eq!(a.faults().len(), FaultKind::ALL.len());
        for kind in FaultKind::ALL {
            assert!(a.faults().iter().any(|f| f.kind == kind), "{kind} missing");
        }
        for f in a.faults() {
            assert!(f.at >= 1_000_000 / 8 && f.at < 1_000_000 / 2);
            assert!(f.channel < 4);
            assert!(f.thread < 24);
        }
    }

    #[test]
    fn channel_chaos_fires_each_fault_exactly_once() {
        let plan = FaultPlan::single(FaultKind::TimingViolation, 100)
            .with_fault(FaultSpec::new(FaultKind::RowCorruption, 200).on_channel(1));
        let mut c0 = plan.channel_chaos(0);
        let mut c1 = plan.channel_chaos(1);
        assert!(!c0.due(FaultKind::TimingViolation, 99), "not yet armed");
        assert!(!c0.fire(FaultKind::TimingViolation, 99));
        assert!(c0.due(FaultKind::TimingViolation, 100));
        assert!(c0.fire(FaultKind::TimingViolation, 100));
        assert!(!c0.fire(FaultKind::TimingViolation, 500), "fires once");
        assert!(!c0.due(FaultKind::RowCorruption, 500), "wrong channel");
        assert!(c1.fire(FaultKind::RowCorruption, 300));
    }

    #[test]
    fn plan_accessors_route_faults_to_their_layer() {
        let plan = FaultPlan::none()
            .with_fault(FaultSpec::new(FaultKind::SpillFlood, 10).on_channel(2))
            .with_fault(FaultSpec::new(FaultKind::MonitorCorruption, 20).on_thread(3))
            .with_fault(FaultSpec::new(FaultKind::SchedulerSpin, 30));
        assert_eq!(plan.flood().map(|f| f.channel), Some(2));
        assert_eq!(
            plan.monitor_faults().map(|f| f.thread).collect::<Vec<_>>(),
            vec![3]
        );
        assert_eq!(plan.spin_at(), Some(30));
        assert!(plan.channel_chaos(2).is_empty(), "flood is not a channel fault");
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none(), FaultPlan::default());
    }

    #[test]
    fn topology_campaign_is_deterministic_and_always_validates() {
        let t = Topology::asymmetric([3, 1]);
        let a = FaultPlan::campaign_for(&t, 7, 1_000_000, 24);
        let b = FaultPlan::campaign_for(&t, 7, 1_000_000, 24);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::campaign_for(&t, 8, 1_000_000, 24));
        assert_eq!(a.faults().len(), FaultKind::ALL.len());
        a.validate(&t).unwrap();
        for f in a.faults() {
            assert!(f.channel < t.num_channels());
            assert!(f.controller < t.num_controllers());
            if f.kind.targets_channel() {
                // The controller address agrees with the channel address.
                let (owner, _) = f.partition_for(&t).unwrap();
                assert_eq!(owner.index(), f.controller, "{}", f.kind);
            }
        }
    }

    #[test]
    fn validate_rejects_out_of_range_addresses() {
        let t = Topology::asymmetric([2, 2]);
        FaultPlan::none().validate(&t).unwrap();
        // A channel index past the topology is a typed error, not an alias.
        let bad_channel =
            FaultPlan::none().with_fault(FaultSpec::new(FaultKind::TimingViolation, 10).on_channel(4));
        let err = bad_channel.validate(&t).unwrap_err();
        assert_eq!(err.field(), "chaos");
        assert!(err.reason().contains("channel 4"), "{err}");
        // Same for a controller index.
        let bad_controller =
            FaultPlan::none().with_fault(FaultSpec::new(FaultKind::ControllerBlackout, 10).on_controller(2));
        let err = bad_controller.validate(&t).unwrap_err();
        assert!(err.reason().contains("controller 2"), "{err}");
        // In-range addresses pass.
        FaultPlan::none()
            .with_fault(FaultSpec::new(FaultKind::SpillFlood, 10).on_channel(3))
            .with_fault(FaultSpec::new(FaultKind::MonitorSkew, 10).on_controller(1))
            .validate(&t)
            .unwrap();
    }

    #[test]
    fn controller_accessors_route_coordination_faults() {
        let plan = FaultPlan::none()
            .with_fault(FaultSpec::new(FaultKind::ControllerBlackout, 10).on_controller(1))
            .with_fault(FaultSpec::new(FaultKind::MonitorSkew, 20))
            .with_fault(FaultSpec::new(FaultKind::SchedulerSpin, 30).on_controller(2))
            .with_fault(FaultSpec::new(FaultKind::SchedulerSpin, 40));
        let coord: Vec<_> = plan.coordination_faults().collect();
        assert_eq!(coord.len(), 2);
        assert_eq!(coord[0].kind, FaultKind::ControllerBlackout);
        assert_eq!(coord[0].controller, 1);
        assert_eq!(coord[1].kind, FaultKind::MonitorSkew);
        assert_eq!(plan.spin_for(2), Some(30));
        assert_eq!(plan.spin_for(0), Some(40));
        assert_eq!(plan.spin_for(9), None);
        assert_eq!(plan.spin_at(), Some(30), "flat accessor sees every spin");
        // Coordination faults never land in channel state.
        assert!(plan.channel_chaos(0).is_empty());
    }

    #[test]
    fn bus_observation_tracks_the_maximum() {
        let mut c = ChannelChaos::default();
        c.observe_bus(50);
        c.observe_bus(30);
        assert_eq!(c.last_bus_end(), 50);
    }
}
