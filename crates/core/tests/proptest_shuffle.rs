//! Property tests for the shuffling algorithms and clustering: the
//! invariants every quantum of TCM relies on.

use proptest::prelude::*;
use tcm_core::{
    cluster_threads, niceness_scores, rank_ascending, InsertionShuffler, InsertionVariant,
    RandomShuffler, RoundRobinShuffler,
};
use tcm_types::ThreadId;

fn is_permutation(ranking: &[ThreadId], n: usize) -> bool {
    let mut seen = vec![false; n];
    for t in ranking {
        if t.index() >= n || seen[t.index()] {
            return false;
        }
        seen[t.index()] = true;
    }
    ranking.len() == n
}

proptest! {
    /// Every shuffler state is a permutation of the cluster, always.
    #[test]
    fn shufflers_always_produce_permutations(
        niceness in proptest::collection::vec(-50i64..50, 1..20),
        steps in 1usize..100,
        variant_printed in any::<bool>(),
    ) {
        let n = niceness.len();
        let entries: Vec<(ThreadId, i64)> = niceness
            .iter()
            .enumerate()
            .map(|(i, &v)| (ThreadId::new(i), v))
            .collect();
        let variant = if variant_printed {
            InsertionVariant::Printed
        } else {
            InsertionVariant::SuffixRestore
        };
        let mut insertion = InsertionShuffler::with_variant(entries, variant);
        let mut random = RandomShuffler::new((0..n).map(ThreadId::new).collect(), 9);
        let mut rr = RoundRobinShuffler::new((0..n).map(ThreadId::new).collect());
        for _ in 0..steps {
            insertion.advance();
            random.advance();
            rr.advance();
            prop_assert!(is_permutation(&insertion.ranking_vec(), n));
            prop_assert!(is_permutation(random.ranking(), n));
            prop_assert!(is_permutation(rr.ranking(), n));
        }
    }

    /// The insertion shuffle is periodic with period 2N (for N > 1) and
    /// returns to ascending-niceness order.
    #[test]
    fn insertion_shuffle_period_is_2n(
        n in 2usize..16,
        variant_printed in any::<bool>(),
    ) {
        let entries: Vec<(ThreadId, i64)> =
            (0..n).map(|i| (ThreadId::new(i), i as i64)).collect();
        let variant = if variant_printed {
            InsertionVariant::Printed
        } else {
            InsertionVariant::SuffixRestore
        };
        let mut s = InsertionShuffler::with_variant(entries, variant);
        let initial = s.ranking_vec();
        for _ in 0..2 * n {
            s.advance();
        }
        prop_assert_eq!(s.ranking_vec(), initial);
    }

    /// Every thread reaches the top priority at least once per period
    /// under insertion shuffle (starvation avoidance). Niceness values
    /// are made distinct: with exact ties the stable sorts legitimately
    /// keep tied threads in place (TCM's dynamic check falls back to
    /// random shuffling for such homogeneous clusters).
    #[test]
    fn insertion_shuffle_tops_every_thread(
        niceness in proptest::collection::vec(-10i64..10, 2..12),
    ) {
        let n = niceness.len();
        let entries: Vec<(ThreadId, i64)> = niceness
            .iter()
            .enumerate()
            .map(|(i, &v)| (ThreadId::new(i), v * 100 + i as i64))
            .collect();
        let mut s = InsertionShuffler::with_variant(entries, InsertionVariant::SuffixRestore);
        let mut topped = vec![false; n];
        for _ in 0..2 * n {
            topped[s.ranking_vec().last().unwrap().index()] = true;
            s.advance();
        }
        prop_assert!(topped.iter().all(|&t| t), "some thread never topped: {topped:?}");
    }

    /// rank_ascending returns each position exactly once and orders by
    /// value.
    #[test]
    fn rank_ascending_is_a_valid_ranking(values in proptest::collection::vec(-1e6..1e6f64, 1..30)) {
        let ranks = rank_ascending(&values);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (1..=values.len()).collect::<Vec<_>>());
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    /// Niceness is antisymmetric in its inputs: swapping the BLP and RBL
    /// vectors negates every score.
    #[test]
    fn niceness_antisymmetry(
        pairs in proptest::collection::vec((0.0..20.0f64, 0.0..1.0f64), 1..16),
    ) {
        let blp: Vec<f64> = pairs.iter().map(|&(b, _)| b).collect();
        let rbl: Vec<f64> = pairs.iter().map(|&(_, r)| r).collect();
        let forward = niceness_scores(&blp, &rbl);
        let backward = niceness_scores(&rbl, &blp);
        // Antisymmetry requires identical tie-breaking on both sides, so
        // only check when all values are distinct.
        let distinct = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s.windows(2).all(|w| w[0] != w[1])
        };
        if distinct(&blp) && distinct(&rbl) {
            for (f, b) in forward.iter().zip(&backward) {
                prop_assert_eq!(*f, -*b);
            }
        }
    }

    /// Clustering always partitions the threads, keeps the latency
    /// cluster within budget, and orders it by ascending MPKI.
    #[test]
    fn clustering_partitions_and_respects_budget(
        threads in proptest::collection::vec((0.0..200.0f64, 0u64..1_000_000), 1..32),
        thresh in 0.01..1.0f64,
    ) {
        let mpki: Vec<f64> = threads.iter().map(|&(m, _)| m).collect();
        let bw: Vec<u64> = threads.iter().map(|&(_, b)| b).collect();
        let c = cluster_threads(&mpki, &bw, thresh);
        // Partition: every thread in exactly one cluster.
        let mut seen = vec![0u8; threads.len()];
        for t in c.latency.iter().chain(&c.bandwidth) {
            seen[t.index()] += 1;
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
        // Budget: the latency cluster's usage fits within thresh * total.
        let total: u64 = bw.iter().sum();
        let latency_bw: u64 = c.latency.iter().map(|t| bw[t.index()]).sum();
        prop_assert!(latency_bw as f64 <= thresh * total as f64 + 1e-9);
        // Ascending MPKI within the latency cluster.
        for pair in c.latency.windows(2) {
            prop_assert!(mpki[pair[0].index()] <= mpki[pair[1].index()]);
        }
        // No bandwidth thread is lighter than a latency thread... only
        // guaranteed in MPKI order: the max latency MPKI <= min bandwidth
        // MPKI (ties broken by id can interleave equal values).
        if let (Some(max_lat), Some(min_bw)) = (
            c.latency.iter().map(|t| mpki[t.index()]).fold(None, |a: Option<f64>, v| {
                Some(a.map_or(v, |x| x.max(v)))
            }),
            c.bandwidth.iter().map(|t| mpki[t.index()]).fold(None, |a: Option<f64>, v| {
                Some(a.map_or(v, |x| x.min(v)))
            }),
        ) {
            prop_assert!(max_lat <= min_bw);
        }
    }
}
