//! Thread niceness: the paper's interference-propensity metric.

/// Ranks `values` ascending: the result's `i`-th entry is the 1-based
/// position of `values[i]` in ascending order (1 = smallest, N =
/// largest). Ties break by index, keeping the ranking deterministic.
///
/// # Example
///
/// ```
/// use tcm_core::rank_ascending;
///
/// assert_eq!(rank_ascending(&[0.5, 2.0, 1.0]), vec![1, 3, 2]);
/// ```
pub fn rank_ascending(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0usize; values.len()];
    for (pos, &i) in order.iter().enumerate() {
        ranks[i] = pos + 1;
    }
    ranks
}

/// Computes each thread's *niceness* from its bank-level parallelism and
/// row-buffer locality (paper Section 3.3).
///
/// The paper defines `Niceness_i ≡ b_i − r_i` with `b`/`r` the thread's
/// BLP/RBL rank positions, with the stated semantics that **high BLP ⇒
/// fragile ⇒ nicer** and **high RBL ⇒ hostile ⇒ less nice**, and that
/// sorting ascending by niceness puts the nicest thread at the highest
/// rank. We therefore count rank positions *ascending* (`b_i = N` for the
/// highest BLP, `r_i = N` for the highest RBL), which realizes exactly
/// those semantics; counting positions descending — a literal reading of
/// "b-th highest" — would invert them (see DESIGN.md §4).
///
/// Inputs are parallel slices over the bandwidth-sensitive cluster's
/// threads; the output is parallel to them.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
///
/// # Example
///
/// ```
/// use tcm_core::niceness_scores;
///
/// // Thread 0: high BLP, low RBL  -> nicest.
/// // Thread 1: low BLP, high RBL  -> least nice.
/// let n = niceness_scores(&[8.0, 1.0], &[0.1, 0.99]);
/// assert!(n[0] > n[1]);
/// ```
pub fn niceness_scores(blp: &[f64], rbl: &[f64]) -> Vec<i64> {
    assert_eq!(blp.len(), rbl.len(), "blp and rbl slices must align");
    let b = rank_ascending(blp);
    let r = rank_ascending(rbl);
    b.iter()
        .zip(&r)
        .map(|(&bi, &ri)| bi as i64 - ri as i64)
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn rank_ascending_basic() {
        assert_eq!(rank_ascending(&[3.0, 1.0, 2.0]), vec![3, 1, 2]);
        assert_eq!(rank_ascending(&[]), Vec::<usize>::new());
        assert_eq!(rank_ascending(&[5.0]), vec![1]);
    }

    #[test]
    fn rank_ties_break_by_index() {
        assert_eq!(rank_ascending(&[1.0, 1.0, 1.0]), vec![1, 2, 3]);
    }

    #[test]
    fn fragile_thread_is_nicest_hostile_least_nice() {
        // Mirrors the paper's Table 1 microbenchmarks: random-access has
        // high BLP + low RBL (fragile), streaming the opposite (hostile).
        let blp = [11.6, 1.0];
        let rbl = [0.001, 0.99];
        let n = niceness_scores(&blp, &rbl);
        assert!(n[0] > n[1]);
        assert_eq!(n[0], 2 - 1);
        assert_eq!(n[1], 1 - 2);
    }

    #[test]
    fn niceness_is_zero_sum_like_for_aligned_ranks() {
        // When BLP and RBL induce the same ordering, niceness is all zero:
        // no thread is distinctly nicer.
        let blp = [1.0, 2.0, 3.0];
        let rbl = [0.1, 0.2, 0.3];
        assert_eq!(niceness_scores(&blp, &rbl), vec![0, 0, 0]);
    }

    #[test]
    fn niceness_spans_expected_range() {
        // Extremes: +/- (N-1).
        let blp = [4.0, 3.0, 2.0, 1.0];
        let rbl = [0.1, 0.2, 0.3, 0.4];
        let n = niceness_scores(&blp, &rbl);
        assert_eq!(n, vec![3, 1, -1, -3]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        niceness_scores(&[1.0], &[0.5, 0.6]);
    }
}
