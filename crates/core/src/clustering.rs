//! Thread clustering: the paper's Algorithm 1.

use tcm_types::ThreadId;

/// Which cluster a thread landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cluster {
    /// Memory-non-intensive: always strictly prioritized.
    LatencySensitive,
    /// Memory-intensive: shares the remaining bandwidth fairly via
    /// shuffling.
    BandwidthSensitive,
}

/// Result of one clustering pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Latency-sensitive threads, ascending MPKI (the order Algorithm 1
    /// inserted them, which is also their intra-cluster priority order:
    /// first = lowest MPKI = highest priority).
    pub latency: Vec<ThreadId>,
    /// Bandwidth-sensitive threads (ascending MPKI).
    pub bandwidth: Vec<ThreadId>,
}

impl Clustering {
    /// Cluster membership of `thread`.
    pub fn cluster_of(&self, thread: ThreadId) -> Cluster {
        if self.latency.contains(&thread) {
            Cluster::LatencySensitive
        } else {
            Cluster::BandwidthSensitive
        }
    }

    /// Total thread count.
    pub fn len(&self) -> usize {
        self.latency.len() + self.bandwidth.len()
    }

    /// Whether no threads were clustered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The paper's Algorithm 1: groups threads into the latency-sensitive and
/// bandwidth-sensitive clusters.
///
/// Threads are visited in ascending `mpki` order (ties by thread id, which
/// keeps the algorithm deterministic); each visited thread joins the
/// latency-sensitive cluster as long as the cluster's accumulated
/// bandwidth usage (`bw_usage`, the per-thread bank-busy cycles of the
/// *previous* quantum) stays within `cluster_thresh ×
/// total bandwidth usage`. The first thread that would exceed the budget
/// stops the process; it and all remaining threads form the
/// bandwidth-sensitive cluster.
///
/// Note the boundary semantics follow the pseudocode exactly: the check
/// is `SumBW ≤ ClusterThresh · TotalBW` *after* adding the candidate's
/// usage, so a candidate exactly on the budget is admitted.
///
/// # Panics
///
/// Panics if `mpki` and `bw_usage` lengths differ.
///
/// # Example
///
/// ```
/// use tcm_core::cluster_threads;
///
/// // Threads 0,1 are light; threads 2,3 are heavy.
/// let mpki = [0.1, 0.5, 50.0, 90.0];
/// let bw = [10, 20, 5000, 9000];
/// let clusters = cluster_threads(&mpki, &bw, 4.0 / 24.0);
/// assert_eq!(clusters.latency.len(), 2);
/// assert_eq!(clusters.bandwidth.len(), 2);
/// ```
pub fn cluster_threads(mpki: &[f64], bw_usage: &[u64], cluster_thresh: f64) -> Clustering {
    assert_eq!(
        mpki.len(),
        bw_usage.len(),
        "mpki and bandwidth-usage vectors must align"
    );
    let total_bw: u64 = bw_usage.iter().sum();
    let budget = cluster_thresh * total_bw as f64;

    // Ascending MPKI, ties by thread id (deterministic).
    let mut order: Vec<usize> = (0..mpki.len()).collect();
    order.sort_by(|&a, &b| {
        mpki[a]
            .partial_cmp(&mpki[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut latency = Vec::new();
    let mut sum_bw = 0u64;
    let mut split = order.len();
    for (pos, &t) in order.iter().enumerate() {
        sum_bw += bw_usage[t];
        if sum_bw as f64 <= budget {
            latency.push(ThreadId::new(t));
        } else {
            split = pos;
            break;
        }
    }
    let bandwidth = order[split..].iter().map(|&t| ThreadId::new(t)).collect();
    Clustering { latency, bandwidth }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn light_threads_fill_the_latency_cluster_up_to_budget() {
        // Total BW 1000; thresh 0.2 -> budget 200.
        let mpki = [0.1, 0.2, 10.0, 20.0, 30.0];
        let bw = [50u64, 100, 250, 300, 300];
        let c = cluster_threads(&mpki, &bw, 0.2);
        // 50 + 100 = 150 <= 200; adding 250 exceeds.
        assert_eq!(c.latency, vec![ThreadId::new(0), ThreadId::new(1)]);
        assert_eq!(c.bandwidth.len(), 3);
        assert_eq!(c.cluster_of(ThreadId::new(0)), Cluster::LatencySensitive);
        assert_eq!(c.cluster_of(ThreadId::new(4)), Cluster::BandwidthSensitive);
    }

    #[test]
    fn boundary_candidate_exactly_on_budget_is_admitted() {
        let mpki = [1.0, 2.0];
        let bw = [20u64, 80];
        // Budget = 0.2 * 100 = 20: thread 0 lands exactly on it.
        let c = cluster_threads(&mpki, &bw, 0.2);
        assert_eq!(c.latency, vec![ThreadId::new(0)]);
    }

    #[test]
    fn visits_threads_in_ascending_mpki_not_id_order() {
        let mpki = [90.0, 0.1, 50.0];
        let bw = [900u64, 10, 500];
        let c = cluster_threads(&mpki, &bw, 0.05);
        // Budget 70.5: only the lightest thread (id 1) fits.
        assert_eq!(c.latency, vec![ThreadId::new(1)]);
        // Bandwidth cluster keeps ascending-MPKI order: 50.0 before 90.0.
        assert_eq!(c.bandwidth, vec![ThreadId::new(2), ThreadId::new(0)]);
    }

    #[test]
    fn zero_total_bandwidth_puts_everyone_in_latency_cluster() {
        // First quantum: nobody used any bandwidth yet. `0 <= 0` admits
        // all threads (pseudocode semantics), which degenerates to a pure
        // MPKI ranking — reasonable cold-start behavior.
        let mpki = [5.0, 1.0];
        let bw = [0u64, 0];
        let c = cluster_threads(&mpki, &bw, 0.2);
        assert_eq!(c.latency.len(), 2);
        assert_eq!(c.latency[0], ThreadId::new(1), "lowest MPKI first");
        assert!(c.bandwidth.is_empty());
    }

    #[test]
    fn thresh_one_admits_everyone() {
        let mpki = [1.0, 2.0, 3.0];
        let bw = [100u64, 200, 300];
        let c = cluster_threads(&mpki, &bw, 1.0);
        assert_eq!(c.latency.len(), 3);
    }

    #[test]
    fn mpki_ties_break_by_thread_id() {
        let mpki = [1.0, 1.0, 1.0];
        let bw = [10u64, 10, 10];
        let c = cluster_threads(&mpki, &bw, 0.34);
        assert_eq!(c.latency, vec![ThreadId::new(0)]);
        assert_eq!(c.bandwidth, vec![ThreadId::new(1), ThreadId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_inputs_panic() {
        cluster_threads(&[1.0], &[1, 2], 0.5);
    }

    #[test]
    fn len_and_is_empty() {
        let c = cluster_threads(&[], &[], 0.5);
        assert!(c.is_empty());
        let c = cluster_threads(&[1.0], &[10], 1.0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
