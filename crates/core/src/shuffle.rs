//! Shuffling algorithms for the bandwidth-sensitive cluster.
//!
//! All shufflers expose the same shape: a `ranking()` of the cluster's
//! threads (index 0 = lowest priority, last = highest priority) and an
//! `advance()` called every `ShuffleInterval` cycles. Because one TCM
//! instance arbitrates every memory controller, the ranking is
//! automatically synchronized across all banks and channels — the
//! property the paper requires for preserving bank-level parallelism.
//!
//! Three algorithms are provided:
//!
//! * [`RoundRobinShuffler`] — the strawman: rotate the order by one. It
//!   preserves relative positions, so a thread stuck behind a
//!   service-leaking neighbor stays stuck (paper Section 3.3).
//! * [`RandomShuffler`] — a fresh uniform permutation each interval;
//!   niceness-oblivious but breaks persistent adjacency. TCM falls back
//!   to it for homogeneous clusters.
//! * [`InsertionShuffler`] — the paper's niceness-aware algorithm
//!   (Algorithm 2). See the type-level docs for the exact permutation
//!   cycle and for how we resolved the paper's garbled pseudocode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcm_types::ThreadId;

/// Round-robin shuffling: each advance moves every thread up one priority
/// position and wraps the former top thread to the bottom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinShuffler {
    /// index 0 = lowest priority, last = highest.
    ranking: Vec<ThreadId>,
}

impl RoundRobinShuffler {
    /// Creates the shuffler with an initial order (first element lowest
    /// priority).
    pub fn new(threads: Vec<ThreadId>) -> Self {
        Self { ranking: threads }
    }

    /// Current priority order (last = highest priority).
    pub fn ranking(&self) -> &[ThreadId] {
        &self.ranking
    }

    /// Rotates the priority order by one position.
    pub fn advance(&mut self) {
        if self.ranking.len() > 1 {
            self.ranking.rotate_right(1);
        }
    }
}

/// Random shuffling: an independent uniform permutation every interval.
#[derive(Debug, Clone)]
pub struct RandomShuffler {
    ranking: Vec<ThreadId>,
    rng: StdRng,
}

impl RandomShuffler {
    /// Creates the shuffler; `seed` makes the permutation stream
    /// deterministic (the hardware would use an LFSR).
    pub fn new(threads: Vec<ThreadId>, seed: u64) -> Self {
        Self {
            ranking: threads,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current priority order (last = highest priority).
    pub fn ranking(&self) -> &[ThreadId] {
        &self.ranking
    }

    /// Draws a fresh uniform permutation (Fisher–Yates).
    pub fn advance(&mut self) {
        let n = self.ranking.len();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            self.ranking.swap(i, j);
        }
    }
}

/// Which reading of the paper's Algorithm 2 the insertion shuffler uses.
///
/// Phase 1 is unambiguous (suffix sorts in descending niceness,
/// `decSort(i, N)` for `i = N..1`: successively less nice threads are
/// briefly "inserted" at the top). The printed pseudocode's phase 2 is
/// `incSort(1, i)` prefix sorts — but traced under the paper's own rank
/// convention that keeps the *least nice* thread at the top for half of
/// every period, contradicting the paper's prose and Figure 3(b) ("the
/// least nice thread spends most of its time at the lowest priority
/// position"). The two variants resolve the conflict in opposite ways;
/// both are first-class here and unit-tested (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertionVariant {
    /// The literal printed pseudocode: phase 2 = `incSort(1, i)` prefix
    /// sorts. Every state is an insertion-sort intermediate state; the
    /// least nice thread alternates between the extremes (N intervals at
    /// the top, N at the bottom per period).
    #[default]
    Printed,
    /// Phase 2 = `incSort(i, N)` suffix sorts (a one-subscript
    /// emendation). Matches the paper's *behavioral* description exactly:
    /// the least nice thread sits at the bottom 2N−1 of 2N intervals and
    /// tops exactly once; the nicest thread tops N+1 intervals.
    SuffixRestore,
}

/// Insertion shuffling: the paper's niceness-aware algorithm
/// (Algorithm 2).
///
/// The priority order starts sorted ascending by niceness (nicest thread
/// at the highest rank) and cycles through `2N` states per full period:
/// a *descent* phase in which successively less nice threads take the top
/// for one interval each, and a *restore* phase whose exact permutations
/// depend on the [`InsertionVariant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertionShuffler {
    /// `(thread, niceness)`, index 0 = lowest priority.
    entries: Vec<(ThreadId, i64)>,
    /// Advances performed so far, modulo `2N`.
    step: usize,
    variant: InsertionVariant,
}

impl InsertionShuffler {
    /// Creates the shuffler from the cluster's threads and their
    /// niceness values using the default (printed-pseudocode) variant;
    /// initializes to ascending-niceness order (nicest thread highest
    /// ranked), breaking ties by the given order.
    pub fn new(threads: Vec<(ThreadId, i64)>) -> Self {
        Self::with_variant(threads, InsertionVariant::default())
    }

    /// Creates the shuffler with an explicit [`InsertionVariant`].
    pub fn with_variant(threads: Vec<(ThreadId, i64)>, variant: InsertionVariant) -> Self {
        let mut entries = threads;
        entries.sort_by_key(|&(_, n)| n);
        Self {
            entries,
            step: 0,
            variant,
        }
    }

    /// Current priority order (last = highest priority).
    pub fn ranking_vec(&self) -> Vec<ThreadId> {
        self.entries.iter().map(|&(t, _)| t).collect()
    }

    /// Applies the next permutation of the cycle.
    pub fn advance(&mut self) {
        let n = self.entries.len();
        if n <= 1 {
            return;
        }
        if self.step < n {
            // Descent: decSort(i, N) with i = N - step (1-based).
            let start = n - 1 - self.step; // 0-based suffix start
            self.entries[start..].sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        } else {
            match self.variant {
                InsertionVariant::Printed => {
                    // incSort(1, i) with i = step - N + 1 (1-based).
                    let end = self.step - n + 1;
                    self.entries[..end].sort_by_key(|&(_, v)| v);
                }
                InsertionVariant::SuffixRestore => {
                    // incSort(i, N) with i = step - N + 1 (1-based).
                    let start = self.step - n; // 0-based suffix start
                    self.entries[start..].sort_by_key(|&(_, v)| v);
                }
            }
        }
        self.step = (self.step + 1) % (2 * n);
    }
}

/// A shuffling strategy for the bandwidth-sensitive cluster, selected per
/// quantum by TCM (or pinned by the Table 6 comparison modes).
#[derive(Debug, Clone)]
pub enum Shuffler {
    /// Niceness-aware insertion shuffle.
    Insertion(InsertionShuffler),
    /// Uniform random permutations.
    Random(RandomShuffler),
    /// Simple rotation.
    RoundRobin(RoundRobinShuffler),
}

impl Shuffler {
    /// Current priority order (last = highest priority).
    pub fn ranking_vec(&self) -> Vec<ThreadId> {
        match self {
            Shuffler::Insertion(s) => s.ranking_vec(),
            Shuffler::Random(s) => s.ranking().to_vec(),
            Shuffler::RoundRobin(s) => s.ranking().to_vec(),
        }
    }

    /// Advances to the next permutation.
    pub fn advance(&mut self) {
        match self {
            Shuffler::Insertion(s) => s.advance(),
            Shuffler::Random(s) => s.advance(),
            Shuffler::RoundRobin(s) => s.advance(),
        }
    }
}

/// Draws a permutation where the probability of landing *at the top* is
/// proportional to a thread's weight (successively for each lower
/// position) — TCM's *weighted shuffling* for OS-assigned thread weights:
/// the expected fraction of intervals a thread spends at the highest
/// priority is proportional to its weight.
///
/// Returns the order with index 0 = lowest priority, last = highest.
///
/// # Panics
///
/// Panics if lengths differ or any weight is non-positive.
pub fn weighted_random_permutation(
    threads: &[ThreadId],
    weights: &[f64],
    rng: &mut StdRng,
) -> Vec<ThreadId> {
    assert_eq!(threads.len(), weights.len(), "weights must align");
    assert!(
        weights.iter().all(|&w| w > 0.0),
        "weights must be positive"
    );
    let mut pool: Vec<(ThreadId, f64)> = threads.iter().copied().zip(weights.iter().copied()).collect();
    let mut order_top_down = Vec::with_capacity(pool.len());
    while !pool.is_empty() {
        let total: f64 = pool.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = pool.len() - 1;
        for (i, &(_, w)) in pool.iter().enumerate() {
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        order_top_down.push(pool.swap_remove(chosen).0);
    }
    order_top_down.reverse();
    order_top_down
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }

    fn is_permutation(ranking: &[ThreadId], n: usize) -> bool {
        let set: HashSet<_> = ranking.iter().collect();
        set.len() == n && ranking.len() == n
    }

    #[test]
    fn round_robin_rotates_and_cycles() {
        let mut s = RoundRobinShuffler::new(vec![tid(0), tid(1), tid(2), tid(3)]);
        assert_eq!(*s.ranking().last().unwrap(), tid(3));
        s.advance();
        assert_eq!(*s.ranking().last().unwrap(), tid(2));
        assert_eq!(s.ranking()[0], tid(3), "former top wraps to bottom");
        for _ in 0..3 {
            s.advance();
        }
        assert_eq!(s.ranking(), &[tid(0), tid(1), tid(2), tid(3)]);
    }

    #[test]
    fn round_robin_preserves_relative_order() {
        // The paper's complaint: thread adjacency never changes.
        let mut s = RoundRobinShuffler::new(vec![tid(0), tid(1), tid(2)]);
        for _ in 0..7 {
            s.advance();
            let r = s.ranking();
            let pos = |t| r.iter().position(|&x| x == t).unwrap();
            let dist = (pos(tid(1)) + 3 - pos(tid(0))) % 3;
            assert_eq!(dist, 1, "thread 1 always directly above thread 0");
        }
    }

    #[test]
    fn random_shuffle_produces_permutations_and_varies() {
        let mut s = RandomShuffler::new((0..8).map(tid).collect(), 42);
        let mut seen = HashSet::new();
        for _ in 0..50 {
            s.advance();
            assert!(is_permutation(s.ranking(), 8));
            seen.insert(s.ranking().to_vec());
        }
        assert!(seen.len() > 10, "permutations vary ({} distinct)", seen.len());
    }

    #[test]
    fn random_shuffle_is_deterministic_per_seed() {
        let mut a = RandomShuffler::new((0..6).map(tid).collect(), 7);
        let mut b = RandomShuffler::new((0..6).map(tid).collect(), 7);
        for _ in 0..10 {
            a.advance();
            b.advance();
            assert_eq!(a.ranking(), b.ranking());
        }
    }

    /// Builds the insertion shuffler with thread i having niceness i
    /// (thread n-1 nicest).
    fn insertion(n: usize) -> InsertionShuffler {
        InsertionShuffler::new((0..n).map(|i| (tid(i), i as i64)).collect())
    }

    fn insertion_suffix(n: usize) -> InsertionShuffler {
        InsertionShuffler::with_variant(
            (0..n).map(|i| (tid(i), i as i64)).collect(),
            InsertionVariant::SuffixRestore,
        )
    }

    #[test]
    fn insertion_initializes_nicest_on_top() {
        let s = insertion(4);
        let r = s.ranking_vec();
        assert_eq!(r, vec![tid(0), tid(1), tid(2), tid(3)]);
    }

    #[test]
    fn insertion_descent_visits_tops_in_decreasing_niceness() {
        let mut s = insertion(4);
        let mut tops = vec![*s.ranking_vec().last().unwrap()];
        for _ in 0..3 {
            s.advance();
            tops.push(*s.ranking_vec().last().unwrap());
        }
        // Initial + first advance are both the nicest (decSort(N,N) is a
        // no-op), then successively less nice threads.
        assert_eq!(tops, vec![tid(3), tid(3), tid(2), tid(1)]);
        s.advance();
        assert_eq!(*s.ranking_vec().last().unwrap(), tid(0), "least nice tops once");
    }

    #[test]
    fn suffix_restore_cycle_statistics_match_paper_prose() {
        let n = 6;
        let mut s = insertion_suffix(n);
        let period = 2 * n;
        let mut top_counts = vec![0usize; n];
        let mut bottom_counts = vec![0usize; n];
        for _ in 0..period {
            let r = s.ranking_vec();
            assert!(is_permutation(&r, n));
            top_counts[r.last().unwrap().index()] += 1;
            bottom_counts[r[0].index()] += 1;
            s.advance();
        }
        // Least nice thread (0): at the bottom in every interval except
        // the single full-descending one; at the top exactly once.
        assert_eq!(bottom_counts[0], period - 1);
        assert_eq!(top_counts[0], 1);
        // Nicest thread (n-1): top N+1 intervals.
        assert_eq!(top_counts[n - 1], n + 1);
        // Everyone reaches the top at least once (no starvation).
        assert!(top_counts.iter().all(|&c| c >= 1));
        // Cycle returned to the initial state.
        assert_eq!(s.ranking_vec()[0], tid(0));
        assert_eq!(*s.ranking_vec().last().unwrap(), tid(n - 1));
    }

    #[test]
    fn printed_variant_alternates_least_nice_between_extremes() {
        // The literal pseudocode: every state is an insertion-sort
        // intermediate state; the least nice thread (0) splits its time
        // evenly between the top and the bottom, and each state is a
        // permutation.
        let n = 6;
        let mut s = insertion(n);
        let period = 2 * n;
        let mut top0 = 0;
        let mut bottom0 = 0;
        for _ in 0..period {
            let r = s.ranking_vec();
            assert!(is_permutation(&r, n));
            if r.last().unwrap().index() == 0 {
                top0 += 1;
            }
            if r[0].index() == 0 {
                bottom0 += 1;
            }
            s.advance();
        }
        assert_eq!(top0 + bottom0, period, "least nice lives at the extremes");
        assert_eq!(top0, n);
        // Cycle closes: back to ascending order.
        assert_eq!(s.ranking_vec()[0], tid(0));
        assert_eq!(*s.ranking_vec().last().unwrap(), tid(n - 1));
    }

    #[test]
    fn insertion_handles_trivial_sizes() {
        let mut s = insertion(1);
        s.advance();
        assert_eq!(s.ranking_vec(), vec![tid(0)]);
        let mut s = insertion(0);
        s.advance();
        assert!(s.ranking_vec().is_empty());
    }

    #[test]
    fn insertion_niceness_ties_keep_given_order() {
        let s = InsertionShuffler::new(vec![(tid(5), 0), (tid(2), 0), (tid(9), 0)]);
        assert_eq!(s.ranking_vec(), vec![tid(5), tid(2), tid(9)]);
    }

    #[test]
    fn shuffler_enum_delegates() {
        let mut s = Shuffler::RoundRobin(RoundRobinShuffler::new(vec![tid(0), tid(1)]));
        let before = s.ranking_vec();
        s.advance();
        assert_ne!(s.ranking_vec(), before);
    }

    #[test]
    fn weighted_permutation_tops_proportionally_to_weight() {
        let threads: Vec<_> = (0..3).map(tid).collect();
        let weights = [1.0, 1.0, 8.0];
        let mut rng = StdRng::seed_from_u64(3);
        let mut top_counts = [0usize; 3];
        let trials = 4000;
        for _ in 0..trials {
            let p = weighted_random_permutation(&threads, &weights, &mut rng);
            assert!(is_permutation(&p, 3));
            top_counts[p.last().unwrap().index()] += 1;
        }
        let heavy_frac = top_counts[2] as f64 / trials as f64;
        assert!(
            (heavy_frac - 0.8).abs() < 0.04,
            "weight-8 thread topped {heavy_frac:.3} of draws"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_permutation_rejects_zero_weight() {
        let mut rng = StdRng::seed_from_u64(0);
        weighted_random_permutation(&[tid(0)], &[0.0], &mut rng);
    }
}
