//! The TCM scheduling policy: Algorithm 3 plus the quantum/shuffle
//! machinery, implementing [`tcm_sched::Scheduler`].

use crate::clustering::{cluster_threads, Clustering};
use crate::monitor::{QuantumSnapshot, TcmMonitor};
use crate::niceness::niceness_scores;
use crate::params::{ShuffleMode, TcmParams};
use crate::shuffle::{
    weighted_random_permutation, InsertionShuffler, RandomShuffler, RoundRobinShuffler, Shuffler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcm_chaos::{FaultKind, FaultSpec};
use tcm_dram::ServiceOutcome;
use tcm_sched::select::{age_key, pick_max_by_key, row_hit};
use tcm_sched::{PickContext, Scheduler, SystemView};
use tcm_telemetry::{
    labeled, ClusterKind, DegradationAnomaly, MonitorCounter, ShuffleAlgo, Telemetry, TraceEvent,
};
use tcm_types::{Cycle, Request, SystemConfig, ThreadId};

/// Which shuffling algorithm the current quantum ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActiveShuffle {
    Insertion,
    Random,
    RoundRobin,
    WeightedRandom,
    /// Ablation: fixed ascending-niceness ranking, never advanced.
    Static,
}

impl ActiveShuffle {
    /// The telemetry-taxonomy name of this shuffle algorithm.
    fn algo(self) -> ShuffleAlgo {
        match self {
            ActiveShuffle::Insertion => ShuffleAlgo::Insertion,
            ActiveShuffle::Random => ShuffleAlgo::Random,
            ActiveShuffle::RoundRobin => ShuffleAlgo::RoundRobin,
            ActiveShuffle::WeightedRandom => ShuffleAlgo::WeightedRandom,
            ActiveShuffle::Static => ShuffleAlgo::Static,
        }
    }
}

/// Thread Cluster Memory scheduling.
///
/// Every quantum (1 M cycles): harvest the monitors, split threads into
/// the latency-sensitive and bandwidth-sensitive clusters
/// ([`cluster_threads`]), compute niceness for the bandwidth cluster and
/// pick a shuffling algorithm (insertion when the cluster is diverse
/// enough in BLP and RBL, random otherwise). Every `ShuffleInterval`
/// (800 cycles): advance the bandwidth cluster's shuffler. Request
/// prioritization is the paper's Algorithm 3: thread rank first (latency
/// cluster above bandwidth cluster; within latency, ascending
/// weight-scaled MPKI; within bandwidth, the shuffled order), then
/// row-hit, then age.
///
/// One `Tcm` instance arbitrates all channels, playing the role of the
/// paper's per-controller logic *plus* the central meta-controller, so
/// clustering and shuffling are inherently synchronized across
/// controllers.
#[derive(Debug)]
pub struct Tcm {
    params: TcmParams,
    num_threads: usize,
    monitor: TcmMonitor,
    weights: Vec<f64>,
    /// Per-thread priority value; higher = scheduled first.
    priority: Vec<usize>,
    clustering: Clustering,
    shuffler: Option<Shuffler>,
    active_shuffle: ActiveShuffle,
    rng: StdRng,
    next_quantum: Cycle,
    next_shuffle: Cycle,
    quanta_elapsed: u64,
    insertion_quanta: u64,
    random_quanta: u64,
    /// Armed monitor-state bit-flip faults (from `tcm-chaos`), applied
    /// to the quantum snapshot once their scheduled cycle passes.
    pending_monitor_faults: Vec<FaultSpec>,
    /// Whether the last quantum's monitor data was implausible and TCM
    /// fell back to FR-FCFS ordering for the quantum.
    degraded: bool,
    /// Log of every monitor anomaly observed, in order (typed; see
    /// [`DegradationAnomaly`]).
    anomalies: Vec<DegradationAnomaly>,
    /// Structured-event sink; disabled (free) unless the host attaches
    /// one via [`Scheduler::attach_telemetry`].
    telemetry: Telemetry,
}

impl Tcm {
    /// Creates TCM with the paper's defaults for an `num_threads`-thread
    /// system on the paper's baseline memory topology (4 channels × 4
    /// banks).
    pub fn new(num_threads: usize) -> Self {
        Self::with_params(
            TcmParams::paper_default(num_threads),
            num_threads,
            &SystemConfig::paper_baseline(),
        )
    }

    /// Creates TCM with explicit parameters for a given machine shape.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation (see [`TcmParams::validate`]).
    pub fn with_params(params: TcmParams, num_threads: usize, config: &SystemConfig) -> Self {
        params.validate().expect("invalid TCM parameters");
        let monitor = TcmMonitor::new(num_threads, config.num_channels(), config.banks_per_channel);
        Self {
            next_quantum: params.quantum,
            next_shuffle: params.shuffle_interval,
            params,
            num_threads,
            monitor,
            weights: vec![1.0; num_threads],
            // Until the first quantum completes, all threads tie at rank
            // 0 and Algorithm 3 degenerates to FR-FCFS.
            priority: vec![0; num_threads],
            clustering: Clustering {
                latency: Vec::new(),
                bandwidth: (0..num_threads).map(ThreadId::new).collect(),
            },
            shuffler: None,
            active_shuffle: ActiveShuffle::Random,
            rng: StdRng::seed_from_u64(0x7C4D_15EA_5E1E_C7ED),
            quanta_elapsed: 0,
            insertion_quanta: 0,
            random_quanta: 0,
            pending_monitor_faults: Vec::new(),
            degraded: false,
            anomalies: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &TcmParams {
        &self.params
    }

    /// The most recent clustering decision.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Current per-thread priority values (higher = scheduled first).
    pub fn priorities(&self) -> &[usize] {
        &self.priority
    }

    /// `(insertion, random)` quantum counts — how often the dynamic
    /// algorithm selection chose each shuffle (diagnostics for the
    /// Table 6/7 experiments).
    pub fn shuffle_algo_counts(&self) -> (u64, u64) {
        (self.insertion_quanta, self.random_quanta)
    }

    /// Whether TCM is currently degraded to FR-FCFS ordering because the
    /// last quantum's monitor data was implausible. Clears at the next
    /// quantum boundary whose data passes the plausibility check.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Every monitor anomaly observed so far, in order, as typed events.
    pub fn anomaly_events(&self) -> &[DegradationAnomaly] {
        &self.anomalies
    }

    /// Records an anomaly into this policy's typed log and telemetry
    /// stream. The meta-controller uses this to surface its
    /// per-controller quarantine events through the same channel as the
    /// whole-system plausibility guard.
    pub(crate) fn record_anomaly(&mut self, anomaly: DegradationAnomaly) {
        self.telemetry
            .emit(|| TraceEvent::DegradationFallback(anomaly.clone()));
        self.anomalies.push(anomaly);
    }

    /// Applies any armed monitor faults whose cycle has passed: flips the
    /// sign/exponent bits of the target thread's MPKI, RBL and BLP
    /// counters, modeling bit flips in the monitoring hardware. Exposed
    /// crate-wide so the meta-controller can corrupt its *aggregated*
    /// snapshot through the same machinery.
    pub(crate) fn apply_monitor_faults(&mut self, snap: &mut QuantumSnapshot, now: Cycle) {
        fn flip(v: f64) -> f64 {
            f64::from_bits(v.to_bits() ^ 0xFFF0_0000_0000_0000)
        }
        let mut i = 0;
        while i < self.pending_monitor_faults.len() {
            if self.pending_monitor_faults[i].at > now {
                i += 1;
                continue;
            }
            let fault = self.pending_monitor_faults.swap_remove(i);
            let t = fault.thread;
            if let Some(v) = snap.mpki.get_mut(t) {
                *v = flip(*v);
            }
            if let Some(v) = snap.rbl.get_mut(t) {
                *v = flip(*v);
            }
            if let Some(v) = snap.blp.get_mut(t) {
                *v = flip(*v);
            }
            self.telemetry.emit(|| TraceEvent::ChaosInjected {
                cycle: now,
                kind: FaultKind::MonitorCorruption,
            });
        }
    }

    /// Checks the snapshot against what the monitoring hardware can
    /// physically produce; returns a typed description of the first
    /// implausible counter, or `None` when all data is credible.
    ///
    /// The bounds are deliberately loose — MPKI of `+inf` is *legal* (a
    /// thread that missed without retiring an instruction) — so a healthy
    /// run can never trip this check.
    fn implausible_monitor(&self, snap: &QuantumSnapshot, now: Cycle) -> Option<DegradationAnomaly> {
        let banks = self.monitor.total_banks() as f64;
        let anomaly = |thread, counter, value, upper| DegradationAnomaly::ImplausibleCounter {
            cycle: now,
            thread,
            counter,
            value,
            upper,
        };
        for t in 0..self.num_threads {
            let mpki = snap.mpki.get(t).copied().unwrap_or(0.0);
            if mpki.is_nan() || mpki < 0.0 {
                return Some(anomaly(t, MonitorCounter::Mpki, mpki, f64::INFINITY));
            }
            let rbl = snap.rbl.get(t).copied().unwrap_or(0.0);
            if !(0.0..=1.0).contains(&rbl) {
                return Some(anomaly(t, MonitorCounter::Rbl, rbl, 1.0));
            }
            let blp = snap.blp.get(t).copied().unwrap_or(0.0);
            if blp.is_nan() || blp < 0.0 || blp > banks {
                return Some(anomaly(t, MonitorCounter::Blp, blp, banks));
            }
        }
        None
    }

    /// Whether any OS thread weight differs from the default.
    fn has_weights(&self) -> bool {
        self.weights.iter().any(|&w| (w - 1.0).abs() > 1e-12)
    }

    /// Rebuilds `priority` from the clustering and the shuffler state.
    ///
    /// Bandwidth-cluster threads get priorities `1..=B` following the
    /// shuffled order; latency-cluster threads get `N+1..=N+L` (always
    /// strictly above), ordered by ascending weight-scaled MPKI.
    fn rebuild_priorities(&mut self) {
        self.priority = vec![0; self.num_threads];
        if let Some(shuffler) = &self.shuffler {
            for (pos, t) in shuffler.ranking_vec().into_iter().enumerate() {
                if t.index() < self.num_threads {
                    self.priority[t.index()] = pos + 1;
                }
            }
        }
        let n = self.num_threads;
        // `clustering.latency` is ascending MPKI: first = highest rank.
        let latency_len = self.clustering.latency.len();
        for (pos, t) in self.clustering.latency.iter().enumerate() {
            if t.index() < n {
                self.priority[t.index()] = n + (latency_len - pos);
            }
        }
    }

    /// Quantum boundary: re-cluster and re-seed the shuffler from an
    /// already-harvested snapshot. Shared between the single-instance
    /// path ([`Tcm::tick`], which harvests its own monitor) and the
    /// meta-controller (which assembles the snapshot by aggregating
    /// per-controller samples, paper §5.3).
    pub(crate) fn quantum_boundary_with(&mut self, snap: QuantumSnapshot, now: Cycle) {
        if let Some(anomaly) = self.implausible_monitor(&snap, now) {
            // Graceful degradation: implausible monitor data means the
            // clustering inputs cannot be trusted. Log the anomaly and
            // fall back to FR-FCFS ordering (all ranks tied at 0 — the
            // same degenerate state as before the first quantum) for the
            // remainder of this quantum, recovering at the next boundary.
            self.telemetry.emit(|| TraceEvent::QuantumBoundary {
                cycle: now,
                index: self.quanta_elapsed,
                degraded: true,
            });
            self.telemetry
                .emit(|| TraceEvent::DegradationFallback(anomaly.clone()));
            self.anomalies.push(anomaly);
            self.degraded = true;
            self.priority = vec![0; self.num_threads];
            self.shuffler = None;
            self.quanta_elapsed += 1;
            return;
        }
        self.degraded = false;
        self.telemetry.emit(|| TraceEvent::QuantumBoundary {
            cycle: now,
            index: self.quanta_elapsed,
            degraded: false,
        });
        // Thread weights scale MPKI down (paper Section 3.6), affecting
        // both clustering admission order and latency-cluster ranking.
        let scaled_mpki: Vec<f64> = snap
            .mpki
            .iter()
            .zip(&self.weights)
            .map(|(&m, &w)| m / w)
            .collect();
        self.clustering = cluster_threads(&scaled_mpki, &snap.bw_usage, self.params.cluster_thresh);

        let bw_threads = self.clustering.bandwidth.clone();
        let bw_blp: Vec<f64> = bw_threads.iter().map(|t| snap.blp[t.index()]).collect();
        let bw_rbl: Vec<f64> = bw_threads.iter().map(|t| snap.rbl[t.index()]).collect();

        self.active_shuffle = self.choose_shuffle(&bw_blp, &bw_rbl);
        self.shuffler = match self.active_shuffle {
            ActiveShuffle::Insertion => {
                self.insertion_quanta += 1;
                let niceness = niceness_scores(&bw_blp, &bw_rbl);
                Some(Shuffler::Insertion(InsertionShuffler::new(
                    bw_threads.iter().copied().zip(niceness).collect(),
                )))
            }
            ActiveShuffle::Random => {
                self.random_quanta += 1;
                let seed = 0x5EED_0000 + self.quanta_elapsed;
                let mut s = RandomShuffler::new(bw_threads, seed);
                s.advance();
                Some(Shuffler::Random(s))
            }
            ActiveShuffle::RoundRobin => Some(Shuffler::RoundRobin(RoundRobinShuffler::new(
                bw_threads,
            ))),
            ActiveShuffle::WeightedRandom => {
                let perm = self.weighted_ranking(&bw_threads);
                Some(Shuffler::RoundRobin(RoundRobinShuffler::new(perm)))
            }
            ActiveShuffle::Static => {
                // Ascending niceness, never advanced (see shuffle_boundary).
                let niceness = niceness_scores(&bw_blp, &bw_rbl);
                Some(Shuffler::Insertion(InsertionShuffler::new(
                    bw_threads.iter().copied().zip(niceness).collect(),
                )))
            }
        };
        self.quanta_elapsed += 1;
        self.rebuild_priorities();
        if self.telemetry.is_enabled() {
            self.trace_quantum(now, &snap, &scaled_mpki);
        }
    }

    /// Emits the per-thread cluster-assignment events and the per-cluster
    /// bandwidth-share series for a clean quantum boundary. Only called
    /// when telemetry is enabled; observation-only.
    fn trace_quantum(&self, now: Cycle, snap: &QuantumSnapshot, scaled_mpki: &[f64]) {
        for (cluster, threads) in [
            (ClusterKind::Latency, &self.clustering.latency),
            (ClusterKind::Bandwidth, &self.clustering.bandwidth),
        ] {
            for t in threads {
                let i = t.index();
                if i >= self.num_threads {
                    continue;
                }
                self.telemetry.emit(|| TraceEvent::ClusterAssignment {
                    cycle: now,
                    thread: i,
                    cluster,
                    rank: self.priority.get(i).copied().unwrap_or(0),
                    mpki: scaled_mpki.get(i).copied().unwrap_or(0.0),
                    rbl: snap.rbl.get(i).copied().unwrap_or(0.0),
                    blp: snap.blp.get(i).copied().unwrap_or(0.0),
                });
            }
        }
        // Per-cluster share of attained bandwidth this quantum — the
        // paper's Figure 9-style breakdown. Skipped when the quantum saw
        // no traffic at all (0/0 has no meaningful share).
        let total: u64 = snap.bw_usage.iter().sum();
        if total > 0 {
            let share = |threads: &[ThreadId]| {
                let used: u64 = threads
                    .iter()
                    .map(|t| snap.bw_usage.get(t.index()).copied().unwrap_or(0))
                    .sum();
                used as f64 / total as f64
            };
            let latency = share(&self.clustering.latency);
            let bandwidth = share(&self.clustering.bandwidth);
            self.telemetry.with_metrics(|m| {
                m.push_series(&labeled("bw_share", &[("cluster", "latency")]), now, latency);
                m.push_series(
                    &labeled("bw_share", &[("cluster", "bandwidth")]),
                    now,
                    bandwidth,
                );
            });
        }
    }

    /// Selects the shuffle algorithm for this quantum.
    fn choose_shuffle(&self, bw_blp: &[f64], bw_rbl: &[f64]) -> ActiveShuffle {
        if self.has_weights() {
            // Weighted shuffling (paper Section 3.6): time at the top is
            // proportional to thread weight.
            return ActiveShuffle::WeightedRandom;
        }
        match self.params.shuffle_mode {
            ShuffleMode::RoundRobin => ActiveShuffle::RoundRobin,
            ShuffleMode::RandomOnly => ActiveShuffle::Random,
            ShuffleMode::InsertionOnly => ActiveShuffle::Insertion,
            ShuffleMode::Static => ActiveShuffle::Static,
            ShuffleMode::Dynamic => {
                // Insertion shuffle only when the cluster is diverse
                // enough for niceness to be meaningful.
                let spread = |v: &[f64]| {
                    let max = v.iter().cloned().fold(f64::MIN, f64::max);
                    let min = v.iter().cloned().fold(f64::MAX, f64::min);
                    max - min
                };
                let diverse = bw_blp.len() >= 2
                    && spread(bw_blp)
                        > self.params.shuffle_algo_thresh * self.monitor.total_banks() as f64
                    && spread(bw_rbl) > self.params.shuffle_algo_thresh;
                if diverse {
                    ActiveShuffle::Insertion
                } else {
                    ActiveShuffle::Random
                }
            }
        }
    }

    /// Draws a weighted ranking for the bandwidth cluster.
    fn weighted_ranking(&mut self, threads: &[ThreadId]) -> Vec<ThreadId> {
        let weights: Vec<f64> = threads
            .iter()
            .map(|t| self.weights.get(t.index()).copied().unwrap_or(1.0))
            .collect();
        weighted_random_permutation(threads, &weights, &mut self.rng)
    }

    /// The next boundary (quantum or shuffle) strictly after `now` —
    /// the shared timer both [`Tcm::next_tick`] and the meta-controller
    /// expose.
    pub(crate) fn next_boundary(&self, now: Cycle) -> Cycle {
        self.next_quantum.min(self.next_shuffle).max(now + 1)
    }

    /// Whether the boundary due at `now` is a quantum boundary (needs a
    /// fresh monitor snapshot) rather than a shuffle boundary.
    pub(crate) fn is_quantum_due(&self, now: Cycle) -> bool {
        now >= self.next_quantum
    }

    /// Runs whichever boundary is due at `now` and advances the timers:
    /// a quantum boundary consumes `snap` and restarts the shuffle
    /// cadence; a shuffle boundary advances the permutation.
    ///
    /// # Panics
    ///
    /// Panics if a quantum boundary is due but `snap` is `None` — the
    /// caller must harvest when [`Tcm::is_quantum_due`] says so.
    pub(crate) fn run_boundary(&mut self, snap: Option<QuantumSnapshot>, now: Cycle) {
        if now >= self.next_quantum {
            let snap = snap.expect("quantum boundary needs a monitor snapshot");
            self.quantum_boundary_with(snap, now);
            while self.next_quantum <= now {
                self.next_quantum += self.params.quantum;
            }
            // A fresh quantum restarts the shuffle cadence.
            self.next_shuffle = now + self.params.shuffle_interval;
        } else if now >= self.next_shuffle {
            self.shuffle_boundary(now);
            while self.next_shuffle <= now {
                self.next_shuffle += self.params.shuffle_interval;
            }
        }
    }

    /// Shuffle boundary: advance the bandwidth cluster's permutation.
    fn shuffle_boundary(&mut self, now: Cycle) {
        if self.degraded {
            // FR-FCFS fallback: ranks stay tied until the next quantum's
            // monitor data proves plausible again.
            return;
        }
        if self.has_weights() {
            // Weighted shuffling redraws a weighted permutation every
            // interval instead of following a fixed pattern.
            if let Some(Shuffler::RoundRobin(inner)) = &self.shuffler {
                let threads = inner.ranking().to_vec();
                let perm = self.weighted_ranking(&threads);
                self.shuffler = Some(Shuffler::RoundRobin(RoundRobinShuffler::new(perm)));
            }
        } else if self.active_shuffle == ActiveShuffle::Static {
            // Ablation mode: the ranking never changes within a quantum.
        } else if let Some(s) = &mut self.shuffler {
            s.advance();
        }
        self.rebuild_priorities();
        self.telemetry.emit(|| TraceEvent::ShuffleApplied {
            cycle: now,
            algo: self.active_shuffle.algo(),
        });
    }
}

impl Scheduler for Tcm {
    fn name(&self) -> &'static str {
        match self.params.shuffle_mode {
            ShuffleMode::Dynamic => "TCM",
            ShuffleMode::InsertionOnly => "TCM-insertion",
            ShuffleMode::RandomOnly => "TCM-random",
            ShuffleMode::RoundRobin => "TCM-roundrobin",
            ShuffleMode::Static => "TCM-static",
        }
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        // Algorithm 3: highest-rank first, then row-hit, then oldest.
        pick_max_by_key(pending, |r| {
            (
                self.priority.get(r.thread.index()).copied().unwrap_or(0),
                row_hit(r, ctx.open_row),
                age_key(r),
            )
        })
    }

    fn on_enqueue(&mut self, req: &Request, now: Cycle) {
        self.monitor
            .on_enqueue(req.thread, req.addr.global_bank(), req.addr.row, now);
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        now: Cycle,
    ) {
        self.monitor.on_service(
            outcome.request.thread,
            outcome.request.addr.global_bank(),
            now,
        );
    }

    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(self.next_boundary(now))
    }

    fn tick(&mut self, now: Cycle, view: &SystemView<'_>) {
        let snap = if self.is_quantum_due(now) {
            let mut snap = self
                .monitor
                .quantum_snapshot(now, view.retired, view.misses, view.service);
            if !self.pending_monitor_faults.is_empty() {
                self.apply_monitor_faults(&mut snap, now);
            }
            Some(snap)
        } else {
            None
        };
        self.run_boundary(snap, now);
    }

    fn set_thread_weights(&mut self, weights: &[f64]) {
        for (w, &v) in self.weights.iter_mut().zip(weights) {
            *w = v.max(f64::MIN_POSITIVE);
        }
    }

    fn inject_monitor_fault(&mut self, fault: &FaultSpec) {
        if fault.kind == FaultKind::MonitorCorruption {
            self.pending_monitor_faults.push(*fault);
        }
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }

    fn degradation_events(&self) -> &[DegradationAnomaly] {
        &self.anomalies
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{BankId, ChannelId, MemAddress, RequestId, Row};

    fn req(id: u64, thread: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(row)),
            at,
        )
    }

    fn ctx(now: Cycle, open_row: Option<usize>) -> PickContext {
        PickContext {
            now,
            channel: ChannelId::new(0),
            bank: BankId::new(0),
            open_row: open_row.map(Row::new),
        }
    }

    fn small_config() -> SystemConfig {
        SystemConfig::builder()
            .num_threads(4)
            .num_channels(2)
            .banks_per_channel(2)
            .build()
            .unwrap()
    }

    /// Drives one quantum with thread 0 light and thread 1..=3 heavy.
    fn tcm_after_one_quantum() -> Tcm {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // Simulated counters: thread 0 retired a lot with few misses;
        // the rest are memory-bound with heavy service.
        let retired = [3_000_000u64, 200_000, 200_000, 200_000];
        let misses = [30u64, 20_000, 20_000, 20_000];
        let service = [2_000u64, 300_000, 300_000, 300_000];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        tcm
    }

    #[test]
    fn before_first_quantum_tcm_is_frfcfs() {
        let mut tcm = Tcm::with_params(
            TcmParams::paper_default(4).with_cluster_thresh(0.25),
            4,
            &small_config(),
        );
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 9, 100)];
        assert_eq!(tcm.pick(&pending, &ctx(200, Some(9))), 1, "row hit");
        assert_eq!(tcm.pick(&pending, &ctx(200, None)), 0, "age");
    }

    #[test]
    fn light_thread_lands_in_latency_cluster_and_outranks_everyone() {
        let mut tcm = tcm_after_one_quantum();
        let c = tcm.clustering().clone();
        assert!(c.latency.contains(&ThreadId::new(0)));
        assert_eq!(c.bandwidth.len(), 3);
        // Even a row-hit from a heavy thread loses to the light thread.
        let pending = vec![req(0, 1, 9, 0), req(1, 0, 1, 500)];
        assert_eq!(tcm.pick(&pending, &ctx(600, Some(9))), 1);
    }

    #[test]
    fn bandwidth_cluster_priorities_change_across_shuffles() {
        let mut tcm = tcm_after_one_quantum();
        let view_arrays = ([0u64; 4], [0u64; 4], [0u64; 4]);
        let view = SystemView {
            retired: &view_arrays.0,
            misses: &view_arrays.1,
            service: &view_arrays.2,
        };
        let mut orders = std::collections::HashSet::new();
        let mut t = 1_000_000;
        for _ in 0..12 {
            t += tcm.params().shuffle_interval;
            tcm.tick(t, &view);
            let bw_prios: Vec<usize> = (1..4)
                .map(|i| tcm.priorities()[i])
                .collect();
            orders.insert(bw_prios);
        }
        assert!(orders.len() >= 2, "shuffling must change the order");
    }

    #[test]
    fn latency_cluster_always_above_bandwidth_cluster() {
        let tcm = tcm_after_one_quantum();
        let prio = tcm.priorities();
        let min_latency = tcm
            .clustering()
            .latency
            .iter()
            .map(|t| prio[t.index()])
            .min()
            .unwrap();
        let max_bandwidth = tcm
            .clustering()
            .bandwidth
            .iter()
            .map(|t| prio[t.index()])
            .max()
            .unwrap();
        assert!(min_latency > max_bandwidth);
    }

    #[test]
    fn homogeneous_cluster_falls_back_to_random_shuffle() {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // No enqueues at all: BLP and RBL are flat across threads.
        let retired = [100_000u64; 4];
        let misses = [10_000u64; 4];
        let service = [100_000u64; 4];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert_eq!(tcm.shuffle_algo_counts(), (0, 1), "random shuffle chosen");
    }

    #[test]
    fn diverse_cluster_uses_insertion_shuffle() {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // Feed the monitor diverse access behavior: thread 1 streams one
        // bank with one row; thread 2 sprays all four banks with new rows.
        use tcm_types::GlobalBank;
        let gb = |c: usize, b: usize| GlobalBank::new(ChannelId::new(c), BankId::new(b));
        for i in 0..100u64 {
            tcm.monitor
                .on_enqueue(ThreadId::new(1), gb(0, 0), Row::new(5), i * 100);
            tcm.monitor
                .on_service(ThreadId::new(1), gb(0, 0), i * 100 + 50);
            for (j, bank) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
                tcm.monitor.on_enqueue(
                    ThreadId::new(2),
                    gb(bank.0, bank.1),
                    Row::new((i as usize) * 4 + j),
                    i * 100,
                );
            }
            for bank in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                tcm.monitor
                    .on_service(ThreadId::new(2), gb(bank.0, bank.1), i * 100 + 90);
            }
        }
        let retired = [100_000u64; 4];
        let misses = [10_000u64; 4];
        let service = [100_000u64; 4];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert_eq!(tcm.shuffle_algo_counts(), (1, 0), "insertion shuffle chosen");
    }

    #[test]
    fn weights_switch_to_weighted_shuffling() {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        tcm.set_thread_weights(&[1.0, 1.0, 1.0, 16.0]);
        let retired = [100_000u64; 4];
        // Thread 3 is so intensive that even its weight-scaled MPKI keeps
        // it in the bandwidth cluster.
        let misses = [10_000u64, 10_000, 10_000, 1_000_000];
        let service = [100_000u64; 4];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        // Heavy-weight thread should occupy the top of the bandwidth
        // cluster most intervals.
        let mut top3 = 0;
        let mut t = 1_000_000;
        for _ in 0..200 {
            t += 800;
            tcm.tick(t, &view);
            let bw: Vec<_> = tcm.clustering().bandwidth.clone();
            if let Some(best) = bw.iter().max_by_key(|th| tcm.priorities()[th.index()]) {
                if best.index() == 3 {
                    top3 += 1;
                }
            }
        }
        assert!(top3 > 120, "weight-16 thread topped {top3}/200 intervals");
    }

    #[test]
    fn tick_scheduling_interleaves_quanta_and_shuffles() {
        let tcm = Tcm::with_params(TcmParams::paper_default(4), 4, &small_config());
        assert_eq!(tcm.next_tick(0), Some(800));
        let t2 = tcm_after_one_quantum();
        // Right after a quantum at 1M, the next event is a shuffle.
        assert_eq!(t2.next_tick(1_000_000), Some(1_000_800));
    }

    #[test]
    fn monitor_corruption_degrades_to_frfcfs_and_recovers() {
        let cfg = small_config();
        let mut tcm =
            Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        tcm.inject_monitor_fault(&FaultSpec::new(FaultKind::MonitorCorruption, 500_000).on_thread(1));
        let retired = [3_000_000u64, 200_000, 200_000, 200_000];
        let misses = [30u64, 20_000, 20_000, 20_000];
        let service = [2_000u64, 300_000, 300_000, 300_000];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert!(tcm.degraded(), "corrupted counters must trip the guard");
        assert!(
            tcm.priorities().iter().all(|&p| p == 0),
            "degraded ranks must all tie at 0 (FR-FCFS)"
        );
        assert_eq!(tcm.anomaly_events().len(), 1);
        assert!(
            tcm.anomaly_events()[0]
                .to_string()
                .contains("implausible monitor data"),
            "anomaly: {}",
            tcm.anomaly_events()[0]
        );
        // While degraded, pick degenerates to FR-FCFS: row hit wins even
        // for a heavy thread, and shuffle boundaries change nothing.
        let pending = vec![req(0, 1, 9, 0), req(1, 0, 1, 500)];
        assert_eq!(tcm.pick(&pending, &ctx(1_000_600, Some(9))), 0);
        tcm.tick(1_000_800, &view);
        assert!(tcm.priorities().iter().all(|&p| p == 0));
        // The fault fired once; the next quantum's data is plausible
        // again and full TCM behavior resumes.
        tcm.tick(2_000_000, &view);
        assert!(!tcm.degraded(), "must recover at the next clean quantum");
        assert!(tcm.priorities().iter().any(|&p| p > 0));
        assert_eq!(tcm.anomaly_events().len(), 1, "no new anomaly after recovery");
    }

    #[test]
    fn monitor_fault_is_inert_until_its_cycle() {
        let cfg = small_config();
        let mut tcm =
            Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // Armed far in the future: the first quantum must be unaffected.
        tcm.inject_monitor_fault(&FaultSpec::new(FaultKind::MonitorCorruption, 5_000_000));
        let retired = [3_000_000u64, 200_000, 200_000, 200_000];
        let misses = [30u64, 20_000, 20_000, 20_000];
        let service = [2_000u64, 300_000, 300_000, 300_000];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert!(!tcm.degraded());
        assert!(tcm.anomaly_events().is_empty());
        let clean = tcm_after_one_quantum();
        assert_eq!(tcm.priorities(), clean.priorities(), "armed-but-idle fault is a no-op");
    }

    #[test]
    fn non_monitor_faults_are_ignored_by_tcm() {
        let cfg = small_config();
        let mut tcm =
            Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        tcm.inject_monitor_fault(&FaultSpec::new(FaultKind::TimingViolation, 0));
        assert!(tcm.pending_monitor_faults.is_empty());
    }

    #[test]
    fn infinite_mpki_is_plausible() {
        // A thread that missed without retiring reports MPKI = +inf;
        // the guard must not flag healthy-but-extreme data.
        let cfg = small_config();
        let mut tcm =
            Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        let retired = [0u64, 200_000, 200_000, 200_000];
        let misses = [500u64, 20_000, 20_000, 20_000];
        let service = [2_000u64, 300_000, 300_000, 300_000];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert!(!tcm.degraded());
        assert!(tcm.anomaly_events().is_empty());
    }

    #[test]
    fn name_reflects_shuffle_mode() {
        let cfg = small_config();
        let mk = |mode| {
            Tcm::with_params(
                TcmParams::paper_default(4).with_shuffle_mode(mode),
                4,
                &cfg,
            )
        };
        assert_eq!(mk(ShuffleMode::Dynamic).name(), "TCM");
        assert_eq!(mk(ShuffleMode::RoundRobin).name(), "TCM-roundrobin");
        assert_eq!(mk(ShuffleMode::RandomOnly).name(), "TCM-random");
        assert_eq!(mk(ShuffleMode::InsertionOnly).name(), "TCM-insertion");
    }
}
