//! The TCM scheduling policy: Algorithm 3 plus the quantum/shuffle
//! machinery, implementing [`tcm_sched::Scheduler`].

use crate::clustering::{cluster_threads, Clustering};
use crate::monitor::TcmMonitor;
use crate::niceness::niceness_scores;
use crate::params::{ShuffleMode, TcmParams};
use crate::shuffle::{
    weighted_random_permutation, InsertionShuffler, RandomShuffler, RoundRobinShuffler, Shuffler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcm_dram::ServiceOutcome;
use tcm_sched::select::{age_key, pick_max_by_key, row_hit};
use tcm_sched::{PickContext, Scheduler, SystemView};
use tcm_types::{Cycle, Request, SystemConfig, ThreadId};

/// Which shuffling algorithm the current quantum ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActiveShuffle {
    Insertion,
    Random,
    RoundRobin,
    WeightedRandom,
    /// Ablation: fixed ascending-niceness ranking, never advanced.
    Static,
}

/// Thread Cluster Memory scheduling.
///
/// Every quantum (1 M cycles): harvest the monitors, split threads into
/// the latency-sensitive and bandwidth-sensitive clusters
/// ([`cluster_threads`]), compute niceness for the bandwidth cluster and
/// pick a shuffling algorithm (insertion when the cluster is diverse
/// enough in BLP and RBL, random otherwise). Every `ShuffleInterval`
/// (800 cycles): advance the bandwidth cluster's shuffler. Request
/// prioritization is the paper's Algorithm 3: thread rank first (latency
/// cluster above bandwidth cluster; within latency, ascending
/// weight-scaled MPKI; within bandwidth, the shuffled order), then
/// row-hit, then age.
///
/// One `Tcm` instance arbitrates all channels, playing the role of the
/// paper's per-controller logic *plus* the central meta-controller, so
/// clustering and shuffling are inherently synchronized across
/// controllers.
#[derive(Debug)]
pub struct Tcm {
    params: TcmParams,
    num_threads: usize,
    monitor: TcmMonitor,
    weights: Vec<f64>,
    /// Per-thread priority value; higher = scheduled first.
    priority: Vec<usize>,
    clustering: Clustering,
    shuffler: Option<Shuffler>,
    active_shuffle: ActiveShuffle,
    rng: StdRng,
    next_quantum: Cycle,
    next_shuffle: Cycle,
    quanta_elapsed: u64,
    insertion_quanta: u64,
    random_quanta: u64,
}

impl Tcm {
    /// Creates TCM with the paper's defaults for an `num_threads`-thread
    /// system on the paper's baseline memory topology (4 channels × 4
    /// banks).
    pub fn new(num_threads: usize) -> Self {
        Self::with_params(
            TcmParams::paper_default(num_threads),
            num_threads,
            &SystemConfig::paper_baseline(),
        )
    }

    /// Creates TCM with explicit parameters for a given machine shape.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation (see [`TcmParams::validate`]).
    pub fn with_params(params: TcmParams, num_threads: usize, config: &SystemConfig) -> Self {
        params.validate().expect("invalid TCM parameters");
        let monitor = TcmMonitor::new(num_threads, config.num_channels, config.banks_per_channel);
        Self {
            next_quantum: params.quantum,
            next_shuffle: params.shuffle_interval,
            params,
            num_threads,
            monitor,
            weights: vec![1.0; num_threads],
            // Until the first quantum completes, all threads tie at rank
            // 0 and Algorithm 3 degenerates to FR-FCFS.
            priority: vec![0; num_threads],
            clustering: Clustering {
                latency: Vec::new(),
                bandwidth: (0..num_threads).map(ThreadId::new).collect(),
            },
            shuffler: None,
            active_shuffle: ActiveShuffle::Random,
            rng: StdRng::seed_from_u64(0x7C4D_15EA_5E1E_C7ED),
            quanta_elapsed: 0,
            insertion_quanta: 0,
            random_quanta: 0,
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &TcmParams {
        &self.params
    }

    /// The most recent clustering decision.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Current per-thread priority values (higher = scheduled first).
    pub fn priorities(&self) -> &[usize] {
        &self.priority
    }

    /// `(insertion, random)` quantum counts — how often the dynamic
    /// algorithm selection chose each shuffle (diagnostics for the
    /// Table 6/7 experiments).
    pub fn shuffle_algo_counts(&self) -> (u64, u64) {
        (self.insertion_quanta, self.random_quanta)
    }

    /// Whether any OS thread weight differs from the default.
    fn has_weights(&self) -> bool {
        self.weights.iter().any(|&w| (w - 1.0).abs() > 1e-12)
    }

    /// Rebuilds `priority` from the clustering and the shuffler state.
    ///
    /// Bandwidth-cluster threads get priorities `1..=B` following the
    /// shuffled order; latency-cluster threads get `N+1..=N+L` (always
    /// strictly above), ordered by ascending weight-scaled MPKI.
    fn rebuild_priorities(&mut self) {
        self.priority = vec![0; self.num_threads];
        if let Some(shuffler) = &self.shuffler {
            for (pos, t) in shuffler.ranking_vec().into_iter().enumerate() {
                if t.index() < self.num_threads {
                    self.priority[t.index()] = pos + 1;
                }
            }
        }
        let n = self.num_threads;
        // `clustering.latency` is ascending MPKI: first = highest rank.
        let latency_len = self.clustering.latency.len();
        for (pos, t) in self.clustering.latency.iter().enumerate() {
            if t.index() < n {
                self.priority[t.index()] = n + (latency_len - pos);
            }
        }
    }

    /// Quantum boundary: harvest monitors, re-cluster, re-seed the
    /// shuffler.
    fn quantum_boundary(&mut self, now: Cycle, view: &SystemView<'_>) {
        let snap = self
            .monitor
            .quantum_snapshot(now, view.retired, view.misses, view.service);
        // Thread weights scale MPKI down (paper Section 3.6), affecting
        // both clustering admission order and latency-cluster ranking.
        let scaled_mpki: Vec<f64> = snap
            .mpki
            .iter()
            .zip(&self.weights)
            .map(|(&m, &w)| m / w)
            .collect();
        self.clustering = cluster_threads(&scaled_mpki, &snap.bw_usage, self.params.cluster_thresh);

        let bw_threads = self.clustering.bandwidth.clone();
        let bw_blp: Vec<f64> = bw_threads.iter().map(|t| snap.blp[t.index()]).collect();
        let bw_rbl: Vec<f64> = bw_threads.iter().map(|t| snap.rbl[t.index()]).collect();

        self.active_shuffle = self.choose_shuffle(&bw_blp, &bw_rbl);
        self.shuffler = match self.active_shuffle {
            ActiveShuffle::Insertion => {
                self.insertion_quanta += 1;
                let niceness = niceness_scores(&bw_blp, &bw_rbl);
                Some(Shuffler::Insertion(InsertionShuffler::new(
                    bw_threads.iter().copied().zip(niceness).collect(),
                )))
            }
            ActiveShuffle::Random => {
                self.random_quanta += 1;
                let seed = 0x5EED_0000 + self.quanta_elapsed;
                let mut s = RandomShuffler::new(bw_threads, seed);
                s.advance();
                Some(Shuffler::Random(s))
            }
            ActiveShuffle::RoundRobin => Some(Shuffler::RoundRobin(RoundRobinShuffler::new(
                bw_threads,
            ))),
            ActiveShuffle::WeightedRandom => {
                let perm = self.weighted_ranking(&bw_threads);
                Some(Shuffler::RoundRobin(RoundRobinShuffler::new(perm)))
            }
            ActiveShuffle::Static => {
                // Ascending niceness, never advanced (see shuffle_boundary).
                let niceness = niceness_scores(&bw_blp, &bw_rbl);
                Some(Shuffler::Insertion(InsertionShuffler::new(
                    bw_threads.iter().copied().zip(niceness).collect(),
                )))
            }
        };
        self.quanta_elapsed += 1;
        self.rebuild_priorities();
    }

    /// Selects the shuffle algorithm for this quantum.
    fn choose_shuffle(&self, bw_blp: &[f64], bw_rbl: &[f64]) -> ActiveShuffle {
        if self.has_weights() {
            // Weighted shuffling (paper Section 3.6): time at the top is
            // proportional to thread weight.
            return ActiveShuffle::WeightedRandom;
        }
        match self.params.shuffle_mode {
            ShuffleMode::RoundRobin => ActiveShuffle::RoundRobin,
            ShuffleMode::RandomOnly => ActiveShuffle::Random,
            ShuffleMode::InsertionOnly => ActiveShuffle::Insertion,
            ShuffleMode::Static => ActiveShuffle::Static,
            ShuffleMode::Dynamic => {
                // Insertion shuffle only when the cluster is diverse
                // enough for niceness to be meaningful.
                let spread = |v: &[f64]| {
                    let max = v.iter().cloned().fold(f64::MIN, f64::max);
                    let min = v.iter().cloned().fold(f64::MAX, f64::min);
                    max - min
                };
                let diverse = bw_blp.len() >= 2
                    && spread(bw_blp)
                        > self.params.shuffle_algo_thresh * self.monitor.total_banks() as f64
                    && spread(bw_rbl) > self.params.shuffle_algo_thresh;
                if diverse {
                    ActiveShuffle::Insertion
                } else {
                    ActiveShuffle::Random
                }
            }
        }
    }

    /// Draws a weighted ranking for the bandwidth cluster.
    fn weighted_ranking(&mut self, threads: &[ThreadId]) -> Vec<ThreadId> {
        let weights: Vec<f64> = threads
            .iter()
            .map(|t| self.weights.get(t.index()).copied().unwrap_or(1.0))
            .collect();
        weighted_random_permutation(threads, &weights, &mut self.rng)
    }

    /// Shuffle boundary: advance the bandwidth cluster's permutation.
    fn shuffle_boundary(&mut self) {
        if self.has_weights() {
            // Weighted shuffling redraws a weighted permutation every
            // interval instead of following a fixed pattern.
            if let Some(Shuffler::RoundRobin(inner)) = &self.shuffler {
                let threads = inner.ranking().to_vec();
                let perm = self.weighted_ranking(&threads);
                self.shuffler = Some(Shuffler::RoundRobin(RoundRobinShuffler::new(perm)));
            }
        } else if self.active_shuffle == ActiveShuffle::Static {
            // Ablation mode: the ranking never changes within a quantum.
        } else if let Some(s) = &mut self.shuffler {
            s.advance();
        }
        self.rebuild_priorities();
    }
}

impl Scheduler for Tcm {
    fn name(&self) -> &'static str {
        match self.params.shuffle_mode {
            ShuffleMode::Dynamic => "TCM",
            ShuffleMode::InsertionOnly => "TCM-insertion",
            ShuffleMode::RandomOnly => "TCM-random",
            ShuffleMode::RoundRobin => "TCM-roundrobin",
            ShuffleMode::Static => "TCM-static",
        }
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        // Algorithm 3: highest-rank first, then row-hit, then oldest.
        pick_max_by_key(pending, |r| {
            (
                self.priority.get(r.thread.index()).copied().unwrap_or(0),
                row_hit(r, ctx.open_row),
                age_key(r),
            )
        })
    }

    fn on_enqueue(&mut self, req: &Request, now: Cycle) {
        self.monitor
            .on_enqueue(req.thread, req.addr.global_bank(), req.addr.row, now);
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        now: Cycle,
    ) {
        self.monitor.on_service(
            outcome.request.thread,
            outcome.request.addr.global_bank(),
            now,
        );
    }

    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(self.next_quantum.min(self.next_shuffle).max(now + 1))
    }

    fn tick(&mut self, now: Cycle, view: &SystemView<'_>) {
        if now >= self.next_quantum {
            self.quantum_boundary(now, view);
            while self.next_quantum <= now {
                self.next_quantum += self.params.quantum;
            }
            // A fresh quantum restarts the shuffle cadence.
            self.next_shuffle = now + self.params.shuffle_interval;
        } else if now >= self.next_shuffle {
            self.shuffle_boundary();
            while self.next_shuffle <= now {
                self.next_shuffle += self.params.shuffle_interval;
            }
        }
    }

    fn set_thread_weights(&mut self, weights: &[f64]) {
        for (w, &v) in self.weights.iter_mut().zip(weights) {
            *w = v.max(f64::MIN_POSITIVE);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{BankId, ChannelId, MemAddress, RequestId, Row};

    fn req(id: u64, thread: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(0), BankId::new(0), Row::new(row)),
            at,
        )
    }

    fn ctx(now: Cycle, open_row: Option<usize>) -> PickContext {
        PickContext {
            now,
            channel: ChannelId::new(0),
            bank: BankId::new(0),
            open_row: open_row.map(Row::new),
        }
    }

    fn small_config() -> SystemConfig {
        SystemConfig::builder()
            .num_threads(4)
            .num_channels(2)
            .banks_per_channel(2)
            .build()
            .unwrap()
    }

    /// Drives one quantum with thread 0 light and thread 1..=3 heavy.
    fn tcm_after_one_quantum() -> Tcm {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // Simulated counters: thread 0 retired a lot with few misses;
        // the rest are memory-bound with heavy service.
        let retired = [3_000_000u64, 200_000, 200_000, 200_000];
        let misses = [30u64, 20_000, 20_000, 20_000];
        let service = [2_000u64, 300_000, 300_000, 300_000];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        tcm
    }

    #[test]
    fn before_first_quantum_tcm_is_frfcfs() {
        let mut tcm = Tcm::with_params(
            TcmParams::paper_default(4).with_cluster_thresh(0.25),
            4,
            &small_config(),
        );
        let pending = vec![req(0, 0, 1, 0), req(1, 1, 9, 100)];
        assert_eq!(tcm.pick(&pending, &ctx(200, Some(9))), 1, "row hit");
        assert_eq!(tcm.pick(&pending, &ctx(200, None)), 0, "age");
    }

    #[test]
    fn light_thread_lands_in_latency_cluster_and_outranks_everyone() {
        let mut tcm = tcm_after_one_quantum();
        let c = tcm.clustering().clone();
        assert!(c.latency.contains(&ThreadId::new(0)));
        assert_eq!(c.bandwidth.len(), 3);
        // Even a row-hit from a heavy thread loses to the light thread.
        let pending = vec![req(0, 1, 9, 0), req(1, 0, 1, 500)];
        assert_eq!(tcm.pick(&pending, &ctx(600, Some(9))), 1);
    }

    #[test]
    fn bandwidth_cluster_priorities_change_across_shuffles() {
        let mut tcm = tcm_after_one_quantum();
        let view_arrays = ([0u64; 4], [0u64; 4], [0u64; 4]);
        let view = SystemView {
            retired: &view_arrays.0,
            misses: &view_arrays.1,
            service: &view_arrays.2,
        };
        let mut orders = std::collections::HashSet::new();
        let mut t = 1_000_000;
        for _ in 0..12 {
            t += tcm.params().shuffle_interval;
            tcm.tick(t, &view);
            let bw_prios: Vec<usize> = (1..4)
                .map(|i| tcm.priorities()[i])
                .collect();
            orders.insert(bw_prios);
        }
        assert!(orders.len() >= 2, "shuffling must change the order");
    }

    #[test]
    fn latency_cluster_always_above_bandwidth_cluster() {
        let tcm = tcm_after_one_quantum();
        let prio = tcm.priorities();
        let min_latency = tcm
            .clustering()
            .latency
            .iter()
            .map(|t| prio[t.index()])
            .min()
            .unwrap();
        let max_bandwidth = tcm
            .clustering()
            .bandwidth
            .iter()
            .map(|t| prio[t.index()])
            .max()
            .unwrap();
        assert!(min_latency > max_bandwidth);
    }

    #[test]
    fn homogeneous_cluster_falls_back_to_random_shuffle() {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // No enqueues at all: BLP and RBL are flat across threads.
        let retired = [100_000u64; 4];
        let misses = [10_000u64; 4];
        let service = [100_000u64; 4];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert_eq!(tcm.shuffle_algo_counts(), (0, 1), "random shuffle chosen");
    }

    #[test]
    fn diverse_cluster_uses_insertion_shuffle() {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        // Feed the monitor diverse access behavior: thread 1 streams one
        // bank with one row; thread 2 sprays all four banks with new rows.
        use tcm_types::GlobalBank;
        let gb = |c: usize, b: usize| GlobalBank::new(ChannelId::new(c), BankId::new(b));
        for i in 0..100u64 {
            tcm.monitor
                .on_enqueue(ThreadId::new(1), gb(0, 0), Row::new(5), i * 100);
            tcm.monitor
                .on_service(ThreadId::new(1), gb(0, 0), i * 100 + 50);
            for (j, bank) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
                tcm.monitor.on_enqueue(
                    ThreadId::new(2),
                    gb(bank.0, bank.1),
                    Row::new((i as usize) * 4 + j),
                    i * 100,
                );
            }
            for bank in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                tcm.monitor
                    .on_service(ThreadId::new(2), gb(bank.0, bank.1), i * 100 + 90);
            }
        }
        let retired = [100_000u64; 4];
        let misses = [10_000u64; 4];
        let service = [100_000u64; 4];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        assert_eq!(tcm.shuffle_algo_counts(), (1, 0), "insertion shuffle chosen");
    }

    #[test]
    fn weights_switch_to_weighted_shuffling() {
        let cfg = small_config();
        let mut tcm = Tcm::with_params(TcmParams::paper_default(4).with_cluster_thresh(0.25), 4, &cfg);
        tcm.set_thread_weights(&[1.0, 1.0, 1.0, 16.0]);
        let retired = [100_000u64; 4];
        // Thread 3 is so intensive that even its weight-scaled MPKI keeps
        // it in the bandwidth cluster.
        let misses = [10_000u64, 10_000, 10_000, 1_000_000];
        let service = [100_000u64; 4];
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        tcm.tick(1_000_000, &view);
        // Heavy-weight thread should occupy the top of the bandwidth
        // cluster most intervals.
        let mut top3 = 0;
        let mut t = 1_000_000;
        for _ in 0..200 {
            t += 800;
            tcm.tick(t, &view);
            let bw: Vec<_> = tcm.clustering().bandwidth.clone();
            if let Some(best) = bw.iter().max_by_key(|th| tcm.priorities()[th.index()]) {
                if best.index() == 3 {
                    top3 += 1;
                }
            }
        }
        assert!(top3 > 120, "weight-16 thread topped {top3}/200 intervals");
    }

    #[test]
    fn tick_scheduling_interleaves_quanta_and_shuffles() {
        let tcm = Tcm::with_params(TcmParams::paper_default(4), 4, &small_config());
        assert_eq!(tcm.next_tick(0), Some(800));
        let t2 = tcm_after_one_quantum();
        // Right after a quantum at 1M, the next event is a shuffle.
        assert_eq!(t2.next_tick(1_000_000), Some(1_000_800));
    }

    #[test]
    fn name_reflects_shuffle_mode() {
        let cfg = small_config();
        let mk = |mode| {
            Tcm::with_params(
                TcmParams::paper_default(4).with_shuffle_mode(mode),
                4,
                &cfg,
            )
        };
        assert_eq!(mk(ShuffleMode::Dynamic).name(), "TCM");
        assert_eq!(mk(ShuffleMode::RoundRobin).name(), "TCM-roundrobin");
        assert_eq!(mk(ShuffleMode::RandomOnly).name(), "TCM-random");
        assert_eq!(mk(ShuffleMode::InsertionOnly).name(), "TCM-insertion");
    }
}
