//! TCM algorithmic parameters and the fairness/performance knob.

use tcm_types::Cycle;

/// Which shuffling algorithm the bandwidth-sensitive cluster uses.
///
/// The paper's TCM dynamically switches between insertion shuffle
/// (heterogeneous workloads) and random shuffle (homogeneous workloads);
/// the fixed modes exist to reproduce the paper's Table 6 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShuffleMode {
    /// The full TCM behavior: insertion shuffle when the cluster shows
    /// enough BLP/RBL diversity (per `ShuffleAlgoThresh`), random shuffle
    /// otherwise.
    #[default]
    Dynamic,
    /// Always insertion shuffle.
    InsertionOnly,
    /// Always random shuffle (equivalent to `ShuffleAlgoThresh = 1`).
    RandomOnly,
    /// Round-robin rotation (the strawman the paper's Section 3.3
    /// dismantles; kept for Table 6).
    RoundRobin,
    /// No shuffling at all: the bandwidth cluster keeps its
    /// ascending-niceness ranking for the whole quantum. Not part of the
    /// paper's design — an *ablation* mode isolating the contribution of
    /// shuffling (the `ablation` experiment binary).
    Static,
}

/// TCM's tunable parameters.
///
/// `cluster_thresh` is the paper's *fairness/performance knob* (Section
/// 7.1): larger values admit more threads into the latency-sensitive
/// cluster, raising system throughput but squeezing the bandwidth cluster
/// and raising maximum slowdown; the paper recommends `2/N … 6/N`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcmParams {
    /// Fraction of the previous quantum's total bandwidth usage the
    /// latency-sensitive cluster may consume (paper default `4/24`).
    pub cluster_thresh: f64,
    /// Quantum length in cycles between re-clusterings (paper: 1 M).
    pub quantum: Cycle,
    /// Cycles between bandwidth-cluster shuffles (paper: 800).
    pub shuffle_interval: Cycle,
    /// Diversity threshold for using insertion shuffle: both
    /// `max ∆BLP > shuffle_algo_thresh × NumBanks` and
    /// `max ∆RBL > shuffle_algo_thresh` must hold (paper: 0.1).
    pub shuffle_algo_thresh: f64,
    /// Shuffling algorithm selection (Dynamic reproduces the paper).
    pub shuffle_mode: ShuffleMode,
}

impl TcmParams {
    /// The paper's default configuration for an `n`-thread system:
    /// ClusterThresh `4/n`, quantum 1 M cycles, ShuffleInterval 800,
    /// ShuffleAlgoThresh 0.1, dynamic shuffling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn paper_default(n: usize) -> Self {
        assert!(n > 0, "system must have at least one thread");
        Self {
            // 4/N, clamped for tiny systems where 4/N would exceed 1.
            cluster_thresh: (4.0 / n as f64).min(1.0),
            quantum: 1_000_000,
            shuffle_interval: 800,
            shuffle_algo_thresh: 0.1,
            shuffle_mode: ShuffleMode::Dynamic,
        }
    }

    /// The configuration this reproduction uses for its headline "TCM"
    /// results: the paper defaults with `ShuffleAlgoThresh = 1`, which —
    /// per the paper's own Section 3.3 — forces random shuffling.
    ///
    /// Rationale (see DESIGN.md): the synthetic trace substitution makes
    /// every thread's (MPKI, RBL, BLP) *stationary*, so a
    /// niceness-persistent ranking (insertion shuffle) deprioritizes the
    /// same threads for the entire run — something real SPEC phase
    /// behavior prevents — and measurably hurts fairness in this
    /// substrate. Random shuffling is the best-performing
    /// paper-sanctioned configuration here.
    pub fn reproduction_default(n: usize) -> Self {
        Self::paper_default(n).with_shuffle_algo_thresh(1.0)
    }

    /// Replaces the clustering threshold (the Figure 6 knob sweep uses
    /// `2/24 … 6/24`).
    pub fn with_cluster_thresh(mut self, thresh: f64) -> Self {
        self.cluster_thresh = thresh;
        self
    }

    /// Replaces the shuffle interval (Table 7 sensitivity: 500–800).
    pub fn with_shuffle_interval(mut self, interval: Cycle) -> Self {
        self.shuffle_interval = interval;
        self
    }

    /// Replaces the shuffle-algorithm threshold (Table 7 sensitivity:
    /// 0.05–0.10; 1.0 forces random shuffling).
    pub fn with_shuffle_algo_thresh(mut self, thresh: f64) -> Self {
        self.shuffle_algo_thresh = thresh;
        self
    }

    /// Replaces the shuffle mode (Table 6 comparison).
    pub fn with_shuffle_mode(mut self, mode: ShuffleMode) -> Self {
        self.shuffle_mode = mode;
        self
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns [`tcm_types::ConfigError`] if the threshold is outside
    /// `(0, 1]`, the quantum is zero, or the shuffle interval is zero or
    /// longer than the quantum.
    pub fn validate(&self) -> Result<(), tcm_types::ConfigError> {
        if !(self.cluster_thresh > 0.0 && self.cluster_thresh <= 1.0) {
            return Err(tcm_types::ConfigError::invalid(
                "cluster_thresh",
                "must be in (0, 1]",
            ));
        }
        if self.quantum == 0 {
            return Err(tcm_types::ConfigError::invalid("quantum", "must be non-zero"));
        }
        if self.shuffle_interval == 0 || self.shuffle_interval > self.quantum {
            return Err(tcm_types::ConfigError::invalid(
                "shuffle_interval",
                "must be non-zero and no longer than the quantum",
            ));
        }
        if !(0.0..=1.0).contains(&self.shuffle_algo_thresh) {
            return Err(tcm_types::ConfigError::invalid(
                "shuffle_algo_thresh",
                "must be in [0, 1]",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6() {
        let p = TcmParams::paper_default(24);
        assert!((p.cluster_thresh - 4.0 / 24.0).abs() < 1e-12);
        assert_eq!(p.quantum, 1_000_000);
        assert_eq!(p.shuffle_interval, 800);
        assert!((p.shuffle_algo_thresh - 0.1).abs() < 1e-12);
        assert_eq!(p.shuffle_mode, ShuffleMode::Dynamic);
        p.validate().unwrap();
    }

    #[test]
    fn builder_style_overrides() {
        let p = TcmParams::paper_default(24)
            .with_cluster_thresh(6.0 / 24.0)
            .with_shuffle_interval(500)
            .with_shuffle_algo_thresh(0.05)
            .with_shuffle_mode(ShuffleMode::RandomOnly);
        assert!((p.cluster_thresh - 0.25).abs() < 1e-12);
        assert_eq!(p.shuffle_interval, 500);
        assert_eq!(p.shuffle_mode, ShuffleMode::RandomOnly);
        p.validate().unwrap();
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(TcmParams::paper_default(24)
            .with_cluster_thresh(0.0)
            .validate()
            .is_err());
        assert!(TcmParams::paper_default(24)
            .with_cluster_thresh(1.5)
            .validate()
            .is_err());
        assert!(TcmParams::paper_default(24)
            .with_shuffle_interval(0)
            .validate()
            .is_err());
        assert!(TcmParams::paper_default(24)
            .with_shuffle_interval(2_000_000)
            .validate()
            .is_err());
        assert!(TcmParams::paper_default(24)
            .with_shuffle_algo_thresh(-0.1)
            .validate()
            .is_err());
    }
}
