//! Hardware storage-cost model: reproduces the paper's Table 2.
//!
//! The paper itemizes the per-controller storage TCM's monitors require
//! and concludes it is under 4 Kbit for the 24-core baseline (under
//! 0.5 Kbit if pure random shuffling is used, which needs no BLP/RBL
//! monitoring). These functions reproduce each row of Table 2 exactly.
//!
//! # Example
//!
//! ```
//! use tcm_core::storage::{StorageModel, Table2Row};
//!
//! let m = StorageModel::paper_baseline();
//! assert_eq!(m.total_bits(), 3792); // < 4 Kbit, as the paper states
//! assert!(m.random_shuffle_only_bits() < 512);
//! ```

/// Integer `ceil(log2(x))`, the bit width needed to count to `x`.
fn bits_for(x: u64) -> u64 {
    assert!(x > 1, "a counter must have at least two states");
    64 - (x - 1).leading_zeros() as u64
}

/// One itemized row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Structure name as printed in the paper.
    pub name: &'static str,
    /// What the structure stores.
    pub function: &'static str,
    /// The closed-form size expression, evaluated.
    pub bits: u64,
}

/// Parameters of the storage model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageModel {
    /// Hardware threads monitored.
    pub num_threads: u64,
    /// Banks per controller.
    pub banks_per_controller: u64,
    /// Maximum MPKI value the counter saturates at.
    pub mpki_max: u64,
    /// Maximum per-bank queue occupancy counted by the load counter.
    pub queue_max: u64,
    /// Rows per bank.
    pub num_rows: u64,
    /// Maximum shadow row-buffer hit count per counter.
    pub count_max: u64,
}

impl StorageModel {
    /// The paper's baseline: 24 threads, 4 banks per controller,
    /// 1024-saturating MPKI counters, 64-entry per-bank load counters,
    /// 16384 rows, 16-bit shadow hit counters. Chosen so every row of
    /// Table 2 evaluates to the paper's printed value.
    pub fn paper_baseline() -> Self {
        Self {
            num_threads: 24,
            banks_per_controller: 4,
            mpki_max: 1 << 10,
            queue_max: 1 << 6,
            num_rows: 1 << 14,
            count_max: 1 << 16,
        }
    }

    /// Row: MPKI counter (`Nthread · log2 MPKImax`).
    pub fn mpki_counter_bits(&self) -> u64 {
        self.num_threads * bits_for(self.mpki_max)
    }

    /// Row: per-bank load counter (`Nthread · Nbank · log2 Queuemax`).
    pub fn load_counter_bits(&self) -> u64 {
        self.num_threads * self.banks_per_controller * bits_for(self.queue_max)
    }

    /// Row: BLP counter (`Nthread · log2 Nbank`).
    pub fn blp_counter_bits(&self) -> u64 {
        self.num_threads * bits_for(self.banks_per_controller)
    }

    /// Row: BLP average register (`Nthread · log2 Nbank`).
    pub fn blp_average_bits(&self) -> u64 {
        self.num_threads * bits_for(self.banks_per_controller)
    }

    /// Row: shadow row-buffer index (`Nthread · Nbank · log2 Nrows`).
    pub fn shadow_index_bits(&self) -> u64 {
        self.num_threads * self.banks_per_controller * bits_for(self.num_rows)
    }

    /// Row: shadow row-buffer hit counters
    /// (`Nthread · Nbank · log2 Countmax`).
    pub fn shadow_hits_bits(&self) -> u64 {
        self.num_threads * self.banks_per_controller * bits_for(self.count_max)
    }

    /// All rows of Table 2 with the paper's labels.
    pub fn rows(&self) -> Vec<Table2Row> {
        vec![
            Table2Row {
                name: "MPKI-counter",
                function: "A thread's cache misses per kilo-instruction",
                bits: self.mpki_counter_bits(),
            },
            Table2Row {
                name: "Load-counter",
                function: "Number of outstanding thread requests to a bank",
                bits: self.load_counter_bits(),
            },
            Table2Row {
                name: "BLP-counter",
                function: "Number of banks for which load-counter > 0",
                bits: self.blp_counter_bits(),
            },
            Table2Row {
                name: "BLP-average",
                function: "Average value of load-counter",
                bits: self.blp_average_bits(),
            },
            Table2Row {
                name: "Shadow row-buffer index",
                function: "Index of a thread's last accessed row",
                bits: self.shadow_index_bits(),
            },
            Table2Row {
                name: "Shadow row-buffer hits",
                function: "Row-buffer hits if a thread were running alone",
                bits: self.shadow_hits_bits(),
            },
        ]
    }

    /// Total per-controller monitoring storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.rows().iter().map(|r| r.bits).sum()
    }

    /// Storage needed when TCM is configured for pure random shuffling
    /// (`ShuffleAlgoThresh = 1`): only memory-intensity monitoring
    /// remains; BLP and RBL monitors are dropped.
    pub fn random_shuffle_only_bits(&self) -> u64 {
        self.mpki_counter_bits()
    }
}

impl Default for StorageModel {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn every_row_matches_table_2() {
        let m = StorageModel::paper_baseline();
        assert_eq!(m.mpki_counter_bits(), 240);
        assert_eq!(m.load_counter_bits(), 576);
        assert_eq!(m.blp_counter_bits(), 48);
        assert_eq!(m.blp_average_bits(), 48);
        assert_eq!(m.shadow_index_bits(), 1344);
        assert_eq!(m.shadow_hits_bits(), 1536);
    }

    #[test]
    fn totals_match_paper_claims() {
        let m = StorageModel::paper_baseline();
        assert!(m.total_bits() < 4096, "paper: less than 4 Kbit");
        assert!(
            m.random_shuffle_only_bits() < 512,
            "paper: less than 0.5 Kbit for pure random shuffling"
        );
    }

    #[test]
    fn rows_are_itemized_and_sum_to_total() {
        let m = StorageModel::paper_baseline();
        let rows = m.rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().map(|r| r.bits).sum::<u64>(), m.total_bits());
        assert!(rows.iter().all(|r| !r.name.is_empty() && r.bits > 0));
    }

    #[test]
    fn bits_for_is_ceil_log2() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(1024), 10);
        assert_eq!(bits_for(1025), 11);
        assert_eq!(bits_for(16384), 14);
    }

    #[test]
    fn scales_with_thread_count() {
        let mut m = StorageModel::paper_baseline();
        m.num_threads = 48;
        assert_eq!(m.mpki_counter_bits(), 480);
        assert_eq!(m.total_bits(), 2 * StorageModel::paper_baseline().total_bits());
    }

    #[test]
    #[should_panic(expected = "two states")]
    fn degenerate_counter_rejected() {
        bits_for(1);
    }
}
