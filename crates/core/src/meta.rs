//! The §5.3 meta-controller and its per-controller counterpart.
//!
//! In the paper's multi-controller design, each memory controller runs
//! its own monitors and request prioritization while a central
//! *meta-controller* periodically aggregates every controller's monitor
//! state, computes one system-wide cluster assignment + shuffle phase,
//! and broadcasts it back, so all controllers prioritize threads
//! identically within a quantum.
//!
//! This module splits the single-instance [`Tcm`] policy along exactly
//! that line:
//!
//! * [`TcmController`] is one controller's share of TCM: it feeds its
//!   local [`TcmMonitor`] from the enqueue/service hooks, hands the raw
//!   per-quantum accumulators up through
//!   [`Scheduler::quantum_exchange`], and prioritizes requests with the
//!   paper's Algorithm 3 over whatever ranking the last broadcast
//!   installed (all-zero before the first quantum — the same FR-FCFS
//!   degenerate state `Tcm` starts in).
//! * [`MetaController`] implements [`MetaScheduler`]: it aggregates the
//!   samples (summing shadow row-buffer counts and BLP integrals across
//!   controllers), derives MPKI and bandwidth usage from the global
//!   cumulative counters, and then reuses the *identical* clustering,
//!   niceness, shuffling and plausibility-guard machinery as [`Tcm`] —
//!   same thresholds, same RNG seeds — so a single-controller topology
//!   driven through the exchange protocol ranks threads exactly as the
//!   monolithic policy does.

use crate::monitor::{QuantumSnapshot, TcmMonitor};
use crate::params::TcmParams;
use crate::scheduler::Tcm;
use tcm_dram::ServiceOutcome;
use tcm_sched::select::{age_key, pick_max_by_key, row_hit};
use tcm_sched::{ClusterPlan, MetaScheduler, MonitorSample, PickContext, Scheduler, SystemView};
use tcm_telemetry::{DegradationAnomaly, Telemetry};
use tcm_types::{Cycle, Request, SystemConfig};

/// One memory controller's slice of the coordinated TCM design: local
/// monitoring + Algorithm 3 prioritization over the meta-controller's
/// broadcast ranking. See the module docs.
#[derive(Debug)]
pub struct TcmController {
    monitor: TcmMonitor,
    /// Ranking installed by the last broadcast; all-zero (FR-FCFS
    /// degenerate) until the first quantum boundary.
    priority: Vec<usize>,
}

impl TcmController {
    /// Creates one controller's policy instance for the given machine.
    ///
    /// The monitor is addressed by *global* bank index (the same
    /// flattening [`Tcm`] uses), so it is sized for the whole system
    /// even though only this controller's requests flow through it.
    pub fn new(num_threads: usize, config: &SystemConfig) -> Self {
        Self {
            monitor: TcmMonitor::new(num_threads, config.num_channels(), config.banks_per_channel),
            priority: vec![0; num_threads],
        }
    }

    /// Current per-thread priority values (higher = scheduled first).
    pub fn priorities(&self) -> &[usize] {
        &self.priority
    }
}

impl Scheduler for TcmController {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        // Algorithm 3: highest-rank first, then row-hit, then oldest.
        pick_max_by_key(pending, |r| {
            (
                self.priority.get(r.thread.index()).copied().unwrap_or(0),
                row_hit(r, ctx.open_row),
                age_key(r),
            )
        })
    }

    fn on_enqueue(&mut self, req: &Request, now: Cycle) {
        self.monitor
            .on_enqueue(req.thread, req.addr.global_bank(), req.addr.row, now);
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        now: Cycle,
    ) {
        self.monitor.on_service(
            outcome.request.thread,
            outcome.request.addr.global_bank(),
            now,
        );
    }

    fn quantum_exchange(&mut self, now: Cycle) -> Option<MonitorSample> {
        Some(self.monitor.harvest_sample(now))
    }

    fn apply_broadcast(&mut self, plan: &ClusterPlan, now: Cycle) {
        let _ = now;
        self.priority.clear();
        self.priority.extend_from_slice(&plan.priorities);
    }
}

/// The central TCM meta-controller (paper §5.3): aggregates every
/// controller's [`MonitorSample`] at quantum boundaries and broadcasts
/// the unified [`ClusterPlan`]. See the module docs.
///
/// Internally it drives an embedded [`Tcm`] ranking engine through the
/// same quantum/shuffle state machine the monolithic policy uses, so
/// clustering decisions, shuffle-algorithm selection and the RNG
/// sequence are bit-identical to the single-instance design given the
/// same aggregated measurements.
#[derive(Debug)]
pub struct MetaController {
    /// The shared ranking engine. Its local monitor is never fed — the
    /// aggregated samples replace it.
    core: Tcm,
    num_threads: usize,
    /// Cumulative counters at the last quantum boundary, for computing
    /// per-quantum MPKI / bandwidth deltas from the global view.
    retired_snapshot: Vec<u64>,
    misses_snapshot: Vec<u64>,
    service_snapshot: Vec<u64>,
}

impl MetaController {
    /// Creates a meta-controller with the given TCM parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation (see [`TcmParams::validate`]).
    pub fn new(params: TcmParams, num_threads: usize, config: &SystemConfig) -> Self {
        Self {
            core: Tcm::with_params(params, num_threads, config),
            num_threads,
            retired_snapshot: vec![0; num_threads],
            misses_snapshot: vec![0; num_threads],
            service_snapshot: vec![0; num_threads],
        }
    }

    /// The plan reflecting the ranking engine's current state.
    fn plan(&self) -> ClusterPlan {
        ClusterPlan {
            priorities: self.core.priorities().to_vec(),
            degraded: self.core.degraded(),
        }
    }

    /// Assembles the quantum snapshot the ranking engine expects by
    /// aggregating the controllers' samples (RBL, BLP) and differencing
    /// the global cumulative counters (MPKI, bandwidth). Mirrors
    /// `TcmMonitor::quantum_snapshot` field for field.
    fn aggregate(
        &mut self,
        view: &SystemView<'_>,
        samples: &[Option<MonitorSample>],
    ) -> QuantumSnapshot {
        let n = self.num_threads;
        let mut hits = vec![0u64; n];
        let mut accesses = vec![0u64; n];
        let mut blp_integral = vec![0u64; n];
        let mut busy_time = vec![0u64; n];
        for sample in samples.iter().flatten() {
            for t in 0..n {
                hits[t] += sample.shadow_hits.get(t).copied().unwrap_or(0);
                accesses[t] += sample.shadow_accesses.get(t).copied().unwrap_or(0);
                blp_integral[t] += sample.blp_integral.get(t).copied().unwrap_or(0);
                busy_time[t] += sample.busy_time.get(t).copied().unwrap_or(0);
            }
        }
        let mut snap = QuantumSnapshot {
            mpki: vec![0.0; n],
            bw_usage: vec![0; n],
            rbl: vec![0.0; n],
            blp: vec![0.0; n],
        };
        for t in 0..n {
            let instr = view.retired.get(t).copied().unwrap_or(0) - self.retired_snapshot[t];
            let miss = view.misses.get(t).copied().unwrap_or(0) - self.misses_snapshot[t];
            snap.mpki[t] = match (miss, instr) {
                (0, _) => 0.0,
                (_, 0) => f64::INFINITY,
                (m, i) => m as f64 * 1000.0 / i as f64,
            };
            snap.bw_usage[t] =
                view.service.get(t).copied().unwrap_or(0) - self.service_snapshot[t];
            snap.rbl[t] = if accesses[t] > 0 {
                hits[t] as f64 / accesses[t] as f64
            } else {
                0.0
            };
            snap.blp[t] = if busy_time[t] > 0 {
                blp_integral[t] as f64 / busy_time[t] as f64
            } else if miss > 0 {
                1.0
            } else {
                0.0
            };
            self.retired_snapshot[t] = view.retired.get(t).copied().unwrap_or(0);
            self.misses_snapshot[t] = view.misses.get(t).copied().unwrap_or(0);
            self.service_snapshot[t] = view.service.get(t).copied().unwrap_or(0);
        }
        snap
    }
}

impl MetaScheduler for MetaController {
    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(self.core.next_boundary(now))
    }

    fn needs_samples(&self, now: Cycle) -> bool {
        self.core.is_quantum_due(now)
    }

    fn set_thread_weights(&mut self, weights: &[f64]) {
        self.core.set_thread_weights(weights);
    }

    fn exchange(
        &mut self,
        now: Cycle,
        view: &SystemView<'_>,
        samples: &[Option<MonitorSample>],
    ) -> ClusterPlan {
        let snap = self
            .core
            .is_quantum_due(now)
            .then(|| self.aggregate(view, samples));
        self.core.run_boundary(snap, now);
        self.plan()
    }

    fn degradation_events(&self) -> &[DegradationAnomaly] {
        self.core.anomaly_events()
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.core.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{
        BankId, ChannelId, MemAddress, RequestId, Row, SystemConfig, ThreadId, Topology,
    };

    fn cfg() -> SystemConfig {
        SystemConfig::builder()
            .num_threads(4)
            .topology(Topology::uniform(2, 1))
            .banks_per_channel(2)
            .build()
            .unwrap()
    }

    fn req(id: u64, thread: usize, channel: usize, bank: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(channel), BankId::new(bank), Row::new(row)),
            at,
        )
    }

    /// A clean 4-thread quantum: thread 0 latency-sensitive (low MPKI),
    /// the rest bandwidth-hungry.
    fn view_arrays() -> ([u64; 4], [u64; 4], [u64; 4]) {
        (
            [3_000_000, 200_000, 200_000, 200_000],
            [30, 20_000, 20_000, 20_000],
            [2_000, 300_000, 300_000, 300_000],
        )
    }

    /// Drives `controllers` TcmControllers + a MetaController through
    /// one quantum boundary with the given view and returns the plan.
    fn one_quantum(controllers: usize) -> (ClusterPlan, Vec<TcmController>, MetaController) {
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut ctls: Vec<TcmController> = (0..controllers)
            .map(|_| TcmController::new(4, &cfg))
            .collect();
        let mut meta = MetaController::new(params, 4, &cfg);
        // Spread some traffic over the controllers so RBL/BLP are fed.
        for (c, ctl) in ctls.iter_mut().enumerate() {
            for i in 0..4u64 {
                let r = req(i, 1 + c % 3, c, (i % 2) as usize, 7, i * 10);
                ctl.on_enqueue(&r, i * 10);
            }
        }
        let (retired, misses, service) = view_arrays();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let now = 1_000_000;
        assert!(meta.needs_samples(now), "the quantum is due at 1M cycles");
        let samples: Vec<Option<MonitorSample>> = ctls
            .iter_mut()
            .map(|c| c.quantum_exchange(now))
            .collect();
        let plan = meta.exchange(now, &view, &samples);
        for ctl in &mut ctls {
            ctl.apply_broadcast(&plan, now);
        }
        (plan, ctls, meta)
    }

    #[test]
    fn broadcast_installs_one_shared_ranking() {
        let (plan, ctls, meta) = one_quantum(2);
        assert!(!plan.degraded);
        assert!(
            plan.priorities.iter().any(|&p| p > 0),
            "a clean quantum must rank threads"
        );
        for ctl in &ctls {
            assert_eq!(ctl.priorities(), &plan.priorities[..]);
        }
        assert!(meta.degradation_events().is_empty());
    }

    #[test]
    fn aggregated_ranking_matches_the_monolithic_policy() {
        // One controller fed through the exchange protocol must rank
        // threads exactly as the monolithic Tcm given the same traffic
        // and counters: the meta-controller reuses Tcm's machinery.
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut mono = Tcm::with_params(params, 4, &cfg);
        let mut ctl = TcmController::new(4, &cfg);
        let mut meta = MetaController::new(params, 4, &cfg);
        for i in 0..6u64 {
            let r = req(i, 1 + (i % 3) as usize, (i % 2) as usize, 0, 7, i * 20);
            mono.on_enqueue(&r, i * 20);
            ctl.on_enqueue(&r, i * 20);
        }
        let (retired, misses, service) = view_arrays();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let now = 1_000_000;
        mono.tick(now, &view);
        let samples = vec![ctl.quantum_exchange(now)];
        let plan = meta.exchange(now, &view, &samples);
        assert_eq!(plan.priorities, mono.priorities());
        assert_eq!(plan.degraded, mono.degraded());
    }

    #[test]
    fn shuffle_boundaries_skip_the_harvest() {
        let (_, _, mut meta) = one_quantum(2);
        let now = 1_000_000;
        let next = meta.next_tick(now).unwrap();
        assert!(next > now);
        assert!(
            !meta.needs_samples(next),
            "the boundary after a quantum is a shuffle, no harvest"
        );
        let (retired, misses, service) = view_arrays();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let before = meta.plan();
        let after = meta.exchange(next, &view, &[]);
        // Same thread set, possibly rotated ranking; never degraded.
        assert!(!after.degraded);
        assert_eq!(
            {
                let mut p = before.priorities.clone();
                p.sort_unstable();
                p
            },
            {
                let mut p = after.priorities.clone();
                p.sort_unstable();
                p
            },
            "a shuffle permutes ranks, it does not invent new ones"
        );
    }

    #[test]
    fn controllers_harvest_deltas_not_totals() {
        let cfg = cfg();
        let mut ctl = TcmController::new(4, &cfg);
        let r = req(0, 1, 0, 0, 7, 0);
        ctl.on_enqueue(&r, 0);
        let first = ctl.quantum_exchange(1_000).unwrap();
        assert_eq!(first.shadow_accesses[1], 1);
        // Nothing new: the second harvest must be empty, not cumulative.
        let second = ctl.quantum_exchange(2_000).unwrap();
        assert_eq!(second.shadow_accesses[1], 0);
        assert_eq!(second.shadow_hits[1], 0);
    }

    #[test]
    fn pick_follows_the_broadcast_ranking() {
        let (plan, mut ctls, _) = one_quantum(1);
        let ctl = &mut ctls[0];
        // Find a top-ranked and a bottom-ranked thread.
        let top = (0..4)
            .max_by_key(|&t| plan.priorities[t])
            .unwrap();
        let bottom = (0..4)
            .min_by_key(|&t| plan.priorities[t])
            .unwrap();
        assert_ne!(plan.priorities[top], plan.priorities[bottom]);
        let pending = vec![
            req(10, bottom, 0, 0, 1, 0),
            req(11, top, 0, 0, 2, 500),
        ];
        let ctx = PickContext {
            now: 1_000_100,
            channel: ChannelId::new(0),
            bank: BankId::new(0),
            // The bottom thread's request would be the row hit; rank
            // still wins (Algorithm 3 puts rank above row-hit).
            open_row: Some(Row::new(1)),
        };
        assert_eq!(ctl.pick(&pending, &ctx), 1);
    }
}
