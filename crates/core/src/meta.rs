//! The §5.3 meta-controller and its per-controller counterpart.
//!
//! In the paper's multi-controller design, each memory controller runs
//! its own monitors and request prioritization while a central
//! *meta-controller* periodically aggregates every controller's monitor
//! state, computes one system-wide cluster assignment + shuffle phase,
//! and broadcasts it back, so all controllers prioritize threads
//! identically within a quantum.
//!
//! This module splits the single-instance [`Tcm`] policy along exactly
//! that line:
//!
//! * [`TcmController`] is one controller's share of TCM: it feeds its
//!   local [`TcmMonitor`] from the enqueue/service hooks, hands the raw
//!   per-quantum accumulators up through
//!   [`Scheduler::quantum_exchange`], and prioritizes requests with the
//!   paper's Algorithm 3 over whatever ranking the last broadcast
//!   installed (all-zero before the first quantum — the same FR-FCFS
//!   degenerate state `Tcm` starts in).
//! * [`MetaController`] implements [`MetaScheduler`]: it aggregates the
//!   samples (summing shadow row-buffer counts and BLP integrals across
//!   controllers), derives MPKI and bandwidth usage from the global
//!   cumulative counters, and then reuses the *identical* clustering,
//!   niceness, shuffling and plausibility-guard machinery as [`Tcm`] —
//!   same thresholds, same RNG seeds — so a single-controller topology
//!   driven through the exchange protocol ranks threads exactly as the
//!   monolithic policy does.

use crate::monitor::{QuantumSnapshot, TcmMonitor};
use crate::params::TcmParams;
use crate::scheduler::Tcm;
use tcm_chaos::FaultSpec;
use tcm_dram::ServiceOutcome;
use tcm_sched::select::{age_key, pick_max_by_key, row_hit};
use tcm_sched::{ClusterPlan, MetaScheduler, MonitorSample, PickContext, Scheduler, SystemView};
use tcm_telemetry::{DegradationAnomaly, QuarantineReason, Telemetry};
use tcm_types::{Cycle, Request, SystemConfig};

/// One memory controller's slice of the coordinated TCM design: local
/// monitoring + Algorithm 3 prioritization over the meta-controller's
/// broadcast ranking. See the module docs.
#[derive(Debug)]
pub struct TcmController {
    monitor: TcmMonitor,
    /// Ranking installed by the last broadcast; all-zero (FR-FCFS
    /// degenerate) until the first quantum boundary.
    priority: Vec<usize>,
}

impl TcmController {
    /// Creates one controller's policy instance for the given machine.
    ///
    /// The monitor is addressed by *global* bank index (the same
    /// flattening [`Tcm`] uses), so it is sized for the whole system
    /// even though only this controller's requests flow through it.
    pub fn new(num_threads: usize, config: &SystemConfig) -> Self {
        Self {
            monitor: TcmMonitor::new(num_threads, config.num_channels(), config.banks_per_channel),
            priority: vec![0; num_threads],
        }
    }

    /// Current per-thread priority values (higher = scheduled first).
    pub fn priorities(&self) -> &[usize] {
        &self.priority
    }
}

impl Scheduler for TcmController {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn pick(&mut self, pending: &[Request], ctx: &PickContext) -> usize {
        // Algorithm 3: highest-rank first, then row-hit, then oldest.
        pick_max_by_key(pending, |r| {
            (
                self.priority.get(r.thread.index()).copied().unwrap_or(0),
                row_hit(r, ctx.open_row),
                age_key(r),
            )
        })
    }

    fn on_enqueue(&mut self, req: &Request, now: Cycle) {
        self.monitor
            .on_enqueue(req.thread, req.addr.global_bank(), req.addr.row, now);
    }

    fn on_service(
        &mut self,
        outcome: &ServiceOutcome,
        _remaining_same_bank: &[Request],
        now: Cycle,
    ) {
        self.monitor.on_service(
            outcome.request.thread,
            outcome.request.addr.global_bank(),
            now,
        );
    }

    fn quantum_exchange(&mut self, now: Cycle) -> Option<MonitorSample> {
        Some(self.monitor.harvest_sample(now))
    }

    fn apply_broadcast(&mut self, plan: &ClusterPlan, now: Cycle) {
        let _ = now;
        self.priority.clear();
        self.priority.extend_from_slice(&plan.priorities);
    }
}

/// The central TCM meta-controller (paper §5.3): aggregates every
/// controller's [`MonitorSample`] at quantum boundaries and broadcasts
/// the unified [`ClusterPlan`]. See the module docs.
///
/// Internally it drives an embedded [`Tcm`] ranking engine through the
/// same quantum/shuffle state machine the monolithic policy uses, so
/// clustering decisions, shuffle-algorithm selection and the RNG
/// sequence are bit-identical to the single-instance design given the
/// same aggregated measurements.
#[derive(Debug)]
pub struct MetaController {
    /// The shared ranking engine. Its local monitor is never fed — the
    /// aggregated samples replace it.
    core: Tcm,
    num_threads: usize,
    /// Cumulative counters at the last quantum boundary, for computing
    /// per-quantum MPKI / bandwidth deltas from the global view.
    retired_snapshot: Vec<u64>,
    misses_snapshot: Vec<u64>,
    service_snapshot: Vec<u64>,
    /// Per-controller quarantine flags (sized lazily from the first
    /// sample vector). A quarantined controller's samples are excluded
    /// from aggregation until it earns re-admission.
    quarantined: Vec<bool>,
    /// Consecutive clean quanta each quarantined controller has
    /// supplied since its last offense.
    clean_quanta: Vec<u64>,
    /// Whether each controller has ever supplied a sample — staleness
    /// (a `None` sample) is only an anomaly for controllers that used
    /// to participate, so mixed fleets of coordinated and
    /// non-coordinated policies are never flagged.
    participated: Vec<bool>,
}

impl MetaController {
    /// Consecutive clean quanta a quarantined controller must supply
    /// before the meta-controller re-admits its samples.
    pub const QUARANTINE_CLEAN_QUANTA: u64 = 2;

    /// Creates a meta-controller with the given TCM parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation (see [`TcmParams::validate`]).
    pub fn new(params: TcmParams, num_threads: usize, config: &SystemConfig) -> Self {
        Self {
            core: Tcm::with_params(params, num_threads, config),
            num_threads,
            retired_snapshot: vec![0; num_threads],
            misses_snapshot: vec![0; num_threads],
            service_snapshot: vec![0; num_threads],
            quarantined: Vec::new(),
            clean_quanta: Vec::new(),
            participated: Vec::new(),
        }
    }

    /// Per-controller quarantine flags (empty until a sample vector has
    /// been seen — and stays all-`false` on healthy runs).
    pub fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    /// The plan reflecting the ranking engine's current state. The
    /// quarantine vector is only attached once some controller has
    /// actually been quarantined, so clean runs broadcast a plan
    /// bit-identical to the pre-quarantine format.
    fn plan(&self) -> ClusterPlan {
        ClusterPlan {
            priorities: self.core.priorities().to_vec(),
            degraded: self.core.degraded(),
            quarantined: if self.quarantined.iter().any(|&q| q) {
                self.quarantined.clone()
            } else {
                Vec::new()
            },
        }
    }

    /// Whether a controller's sample is physically impossible: the
    /// shadow row-buffer cannot hit more often than it is accessed, and
    /// the BLP integral cannot be positive over zero busy cycles. A
    /// healthy controller can never produce either, so this guard has
    /// no false positives by construction.
    fn sample_implausible(sample: &MonitorSample) -> bool {
        let hits_exceed = sample
            .shadow_hits
            .iter()
            .zip(&sample.shadow_accesses)
            .any(|(&h, &a)| h > a);
        let phantom_blp = sample
            .blp_integral
            .iter()
            .zip(&sample.busy_time)
            .any(|(&i, &b)| i > 0 && b == 0);
        hits_exceed || phantom_blp
    }

    /// The per-controller staleness/plausibility guard (runs only at
    /// quantum boundaries, before aggregation): quarantines a single
    /// controller's samples instead of degrading the whole system, and
    /// re-admits it after [`MetaController::QUARANTINE_CLEAN_QUANTA`]
    /// consecutive clean quanta. Emits typed
    /// [`DegradationAnomaly::ControllerQuarantined`] /
    /// [`DegradationAnomaly::ControllerReadmitted`] events through the
    /// shared anomaly log and telemetry stream.
    fn update_quarantine(&mut self, now: Cycle, samples: &[Option<MonitorSample>]) {
        let n = samples.len();
        if self.quarantined.len() < n {
            self.quarantined.resize(n, false);
            self.clean_quanta.resize(n, 0);
            self.participated.resize(n, false);
        }
        for (c, sample) in samples.iter().enumerate() {
            let stale = self.participated[c] && sample.is_none();
            let skewed = sample.as_ref().is_some_and(Self::sample_implausible);
            if !self.quarantined[c] {
                if stale || skewed {
                    self.quarantined[c] = true;
                    self.clean_quanta[c] = 0;
                    let reason = if skewed {
                        QuarantineReason::ImplausibleAggregate
                    } else {
                        QuarantineReason::StaleSample
                    };
                    self.core.record_anomaly(DegradationAnomaly::ControllerQuarantined {
                        cycle: now,
                        controller: c,
                        reason,
                    });
                }
            } else if stale || skewed {
                self.clean_quanta[c] = 0;
            } else if sample.is_some() {
                self.clean_quanta[c] += 1;
                if self.clean_quanta[c] >= Self::QUARANTINE_CLEAN_QUANTA {
                    let clean_quanta = self.clean_quanta[c];
                    self.quarantined[c] = false;
                    self.clean_quanta[c] = 0;
                    self.core.record_anomaly(DegradationAnomaly::ControllerReadmitted {
                        cycle: now,
                        controller: c,
                        clean_quanta,
                    });
                }
            }
            if sample.is_some() {
                self.participated[c] = true;
            }
        }
    }

    /// Assembles the quantum snapshot the ranking engine expects by
    /// aggregating the controllers' samples (RBL, BLP) and differencing
    /// the global cumulative counters (MPKI, bandwidth). Mirrors
    /// `TcmMonitor::quantum_snapshot` field for field.
    fn aggregate(
        &mut self,
        view: &SystemView<'_>,
        samples: &[Option<MonitorSample>],
    ) -> QuantumSnapshot {
        let n = self.num_threads;
        let mut hits = vec![0u64; n];
        let mut accesses = vec![0u64; n];
        let mut blp_integral = vec![0u64; n];
        let mut busy_time = vec![0u64; n];
        for (c, sample) in samples.iter().enumerate() {
            // A quarantined controller's samples are untrusted: keep
            // them out of the system-wide aggregate until re-admission.
            if self.quarantined.get(c).copied().unwrap_or(false) {
                continue;
            }
            let Some(sample) = sample else { continue };
            for t in 0..n {
                hits[t] += sample.shadow_hits.get(t).copied().unwrap_or(0);
                accesses[t] += sample.shadow_accesses.get(t).copied().unwrap_or(0);
                blp_integral[t] += sample.blp_integral.get(t).copied().unwrap_or(0);
                busy_time[t] += sample.busy_time.get(t).copied().unwrap_or(0);
            }
        }
        let mut snap = QuantumSnapshot {
            mpki: vec![0.0; n],
            bw_usage: vec![0; n],
            rbl: vec![0.0; n],
            blp: vec![0.0; n],
        };
        for t in 0..n {
            let instr = view.retired.get(t).copied().unwrap_or(0) - self.retired_snapshot[t];
            let miss = view.misses.get(t).copied().unwrap_or(0) - self.misses_snapshot[t];
            snap.mpki[t] = match (miss, instr) {
                (0, _) => 0.0,
                (_, 0) => f64::INFINITY,
                (m, i) => m as f64 * 1000.0 / i as f64,
            };
            snap.bw_usage[t] =
                view.service.get(t).copied().unwrap_or(0) - self.service_snapshot[t];
            snap.rbl[t] = if accesses[t] > 0 {
                hits[t] as f64 / accesses[t] as f64
            } else {
                0.0
            };
            snap.blp[t] = if busy_time[t] > 0 {
                blp_integral[t] as f64 / busy_time[t] as f64
            } else if miss > 0 {
                1.0
            } else {
                0.0
            };
            self.retired_snapshot[t] = view.retired.get(t).copied().unwrap_or(0);
            self.misses_snapshot[t] = view.misses.get(t).copied().unwrap_or(0);
            self.service_snapshot[t] = view.service.get(t).copied().unwrap_or(0);
        }
        snap
    }
}

impl MetaScheduler for MetaController {
    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(self.core.next_boundary(now))
    }

    fn needs_samples(&self, now: Cycle) -> bool {
        self.core.is_quantum_due(now)
    }

    fn set_thread_weights(&mut self, weights: &[f64]) {
        self.core.set_thread_weights(weights);
    }

    fn exchange(
        &mut self,
        now: Cycle,
        view: &SystemView<'_>,
        samples: &[Option<MonitorSample>],
    ) -> ClusterPlan {
        let snap = self.core.is_quantum_due(now).then(|| {
            // Quarantine first so a skewed sample never reaches the
            // aggregate (and the whole-system plausibility guard) in
            // the same quantum it is detected.
            self.update_quarantine(now, samples);
            let mut snap = self.aggregate(view, samples);
            self.core.apply_monitor_faults(&mut snap, now);
            snap
        });
        self.core.run_boundary(snap, now);
        self.plan()
    }

    fn inject_monitor_fault(&mut self, fault: &FaultSpec) {
        self.core.inject_monitor_fault(fault);
    }

    fn degradation_events(&self) -> &[DegradationAnomaly] {
        self.core.anomaly_events()
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.core.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{
        BankId, ChannelId, MemAddress, RequestId, Row, SystemConfig, ThreadId, Topology,
    };

    fn cfg() -> SystemConfig {
        SystemConfig::builder()
            .num_threads(4)
            .topology(Topology::uniform(2, 1))
            .banks_per_channel(2)
            .build()
            .unwrap()
    }

    fn req(id: u64, thread: usize, channel: usize, bank: usize, row: usize, at: Cycle) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(channel), BankId::new(bank), Row::new(row)),
            at,
        )
    }

    /// A clean 4-thread quantum: thread 0 latency-sensitive (low MPKI),
    /// the rest bandwidth-hungry.
    fn view_arrays() -> ([u64; 4], [u64; 4], [u64; 4]) {
        (
            [3_000_000, 200_000, 200_000, 200_000],
            [30, 20_000, 20_000, 20_000],
            [2_000, 300_000, 300_000, 300_000],
        )
    }

    /// Drives `controllers` TcmControllers + a MetaController through
    /// one quantum boundary with the given view and returns the plan.
    fn one_quantum(controllers: usize) -> (ClusterPlan, Vec<TcmController>, MetaController) {
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut ctls: Vec<TcmController> = (0..controllers)
            .map(|_| TcmController::new(4, &cfg))
            .collect();
        let mut meta = MetaController::new(params, 4, &cfg);
        // Spread some traffic over the controllers so RBL/BLP are fed.
        for (c, ctl) in ctls.iter_mut().enumerate() {
            for i in 0..4u64 {
                let r = req(i, 1 + c % 3, c, (i % 2) as usize, 7, i * 10);
                ctl.on_enqueue(&r, i * 10);
            }
        }
        let (retired, misses, service) = view_arrays();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let now = 1_000_000;
        assert!(meta.needs_samples(now), "the quantum is due at 1M cycles");
        let samples: Vec<Option<MonitorSample>> = ctls
            .iter_mut()
            .map(|c| c.quantum_exchange(now))
            .collect();
        let plan = meta.exchange(now, &view, &samples);
        for ctl in &mut ctls {
            ctl.apply_broadcast(&plan, now);
        }
        (plan, ctls, meta)
    }

    #[test]
    fn broadcast_installs_one_shared_ranking() {
        let (plan, ctls, meta) = one_quantum(2);
        assert!(!plan.degraded);
        assert!(
            plan.priorities.iter().any(|&p| p > 0),
            "a clean quantum must rank threads"
        );
        for ctl in &ctls {
            assert_eq!(ctl.priorities(), &plan.priorities[..]);
        }
        assert!(meta.degradation_events().is_empty());
    }

    #[test]
    fn aggregated_ranking_matches_the_monolithic_policy() {
        // One controller fed through the exchange protocol must rank
        // threads exactly as the monolithic Tcm given the same traffic
        // and counters: the meta-controller reuses Tcm's machinery.
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut mono = Tcm::with_params(params, 4, &cfg);
        let mut ctl = TcmController::new(4, &cfg);
        let mut meta = MetaController::new(params, 4, &cfg);
        for i in 0..6u64 {
            let r = req(i, 1 + (i % 3) as usize, (i % 2) as usize, 0, 7, i * 20);
            mono.on_enqueue(&r, i * 20);
            ctl.on_enqueue(&r, i * 20);
        }
        let (retired, misses, service) = view_arrays();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let now = 1_000_000;
        mono.tick(now, &view);
        let samples = vec![ctl.quantum_exchange(now)];
        let plan = meta.exchange(now, &view, &samples);
        assert_eq!(plan.priorities, mono.priorities());
        assert_eq!(plan.degraded, mono.degraded());
    }

    #[test]
    fn shuffle_boundaries_skip_the_harvest() {
        let (_, _, mut meta) = one_quantum(2);
        let now = 1_000_000;
        let next = meta.next_tick(now).unwrap();
        assert!(next > now);
        assert!(
            !meta.needs_samples(next),
            "the boundary after a quantum is a shuffle, no harvest"
        );
        let (retired, misses, service) = view_arrays();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let before = meta.plan();
        let after = meta.exchange(next, &view, &[]);
        // Same thread set, possibly rotated ranking; never degraded.
        assert!(!after.degraded);
        assert_eq!(
            {
                let mut p = before.priorities.clone();
                p.sort_unstable();
                p
            },
            {
                let mut p = after.priorities.clone();
                p.sort_unstable();
                p
            },
            "a shuffle permutes ranks, it does not invent new ones"
        );
    }

    #[test]
    fn controllers_harvest_deltas_not_totals() {
        let cfg = cfg();
        let mut ctl = TcmController::new(4, &cfg);
        let r = req(0, 1, 0, 0, 7, 0);
        ctl.on_enqueue(&r, 0);
        let first = ctl.quantum_exchange(1_000).unwrap();
        assert_eq!(first.shadow_accesses[1], 1);
        // Nothing new: the second harvest must be empty, not cumulative.
        let second = ctl.quantum_exchange(2_000).unwrap();
        assert_eq!(second.shadow_accesses[1], 0);
        assert_eq!(second.shadow_hits[1], 0);
    }

    /// A physically plausible per-controller sample: every thread was
    /// accessed once, no shadow hits, no bank-level parallelism.
    fn clean_sample(n: usize) -> MonitorSample {
        MonitorSample {
            shadow_hits: vec![0; n],
            shadow_accesses: vec![1; n],
            blp_integral: vec![0; n],
            busy_time: vec![0; n],
        }
    }

    fn paper_view() -> ([u64; 4], [u64; 4], [u64; 4]) {
        view_arrays()
    }

    #[test]
    fn implausible_sample_quarantines_only_that_controller() {
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut meta = MetaController::new(params, 4, &cfg);
        let (retired, misses, service) = paper_view();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let mut bad = clean_sample(4);
        // The shadow row-buffer cannot hit more often than it is
        // accessed: this sample is impossible for a healthy controller.
        bad.shadow_hits[2] = bad.shadow_accesses[2] + 7;
        let samples = vec![Some(clean_sample(4)), Some(bad)];
        let plan = meta.exchange(1_000_000, &view, &samples);
        assert_eq!(plan.quarantined, vec![false, true]);
        assert!(!plan.degraded, "the healthy majority keeps TCM clustering");
        assert!(
            plan.priorities.iter().any(|&p| p > 0),
            "the quantum still ranks threads from the healthy sample"
        );
        let events = meta.degradation_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            DegradationAnomaly::ControllerQuarantined {
                controller: 1,
                reason: QuarantineReason::ImplausibleAggregate,
                ..
            }
        ));
    }

    #[test]
    fn stale_controller_is_quarantined_then_readmitted() {
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut meta = MetaController::new(params, 4, &cfg);
        let (retired, misses, service) = paper_view();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let both = || vec![Some(clean_sample(4)), Some(clean_sample(4))];
        // Quantum 1: both controllers participate cleanly.
        let plan = meta.exchange(1_000_000, &view, &both());
        assert!(plan.quarantined.is_empty());
        assert!(meta.degradation_events().is_empty());
        // Quantum 2: controller 1 goes dark — stale-sample quarantine.
        let plan = meta.exchange(2_000_000, &view, &[Some(clean_sample(4)), None]);
        assert_eq!(plan.quarantined, vec![false, true]);
        // Quantum 3: one clean quantum is not enough to earn trust back.
        let plan = meta.exchange(3_000_000, &view, &both());
        assert_eq!(plan.quarantined, vec![false, true]);
        // Quantum 4: second consecutive clean quantum — re-admitted.
        let plan = meta.exchange(4_000_000, &view, &both());
        assert!(
            plan.quarantined.is_empty(),
            "re-admission clears the broadcast quarantine flags"
        );
        let events = meta.degradation_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            DegradationAnomaly::ControllerQuarantined {
                controller: 1,
                reason: QuarantineReason::StaleSample,
                ..
            }
        ));
        assert!(matches!(
            events[1],
            DegradationAnomaly::ControllerReadmitted { controller: 1, clean_quanta: 2, .. }
        ));
    }

    #[test]
    fn absent_controllers_are_not_stale_before_first_participation() {
        // Staleness is "used to report, stopped reporting": a controller
        // that never supplied a sample (e.g. a non-coordinated policy in
        // a mixed fleet) must never be flagged.
        let cfg = cfg();
        let params = TcmParams::paper_default(4).with_cluster_thresh(0.25);
        let mut meta = MetaController::new(params, 4, &cfg);
        let (retired, misses, service) = paper_view();
        let view = SystemView {
            retired: &retired,
            misses: &misses,
            service: &service,
        };
        let plan = meta.exchange(1_000_000, &view, &[Some(clean_sample(4)), None]);
        assert!(plan.quarantined.is_empty());
        assert!(meta.degradation_events().is_empty());
        // Once it starts participating it is trusted immediately.
        let plan = meta.exchange(
            2_000_000,
            &view,
            &[Some(clean_sample(4)), Some(clean_sample(4))],
        );
        assert!(plan.quarantined.is_empty());
        assert!(meta.degradation_events().is_empty());
    }

    #[test]
    fn pick_follows_the_broadcast_ranking() {
        let (plan, mut ctls, _) = one_quantum(1);
        let ctl = &mut ctls[0];
        // Find a top-ranked and a bottom-ranked thread.
        let top = (0..4)
            .max_by_key(|&t| plan.priorities[t])
            .unwrap();
        let bottom = (0..4)
            .min_by_key(|&t| plan.priorities[t])
            .unwrap();
        assert_ne!(plan.priorities[top], plan.priorities[bottom]);
        let pending = vec![
            req(10, bottom, 0, 0, 1, 0),
            req(11, top, 0, 0, 2, 500),
        ];
        let ctx = PickContext {
            now: 1_000_100,
            channel: ChannelId::new(0),
            bank: BankId::new(0),
            // The bottom thread's request would be the row hit; rank
            // still wins (Algorithm 3 puts rank above row-hit).
            open_row: Some(Row::new(1)),
        };
        assert_eq!(ctl.pick(&pending, &ctx), 1);
    }
}
