//! TCM — Thread Cluster Memory scheduling (Kim, Papamichael, Mutlu,
//! Harchol-Balter, MICRO 2010): the paper's primary contribution.
//!
//! TCM observes that system throughput and fairness call for *different*
//! scheduling policies, and that threads can be divided into two clusters
//! with different needs:
//!
//! 1. **Clustering** ([`cluster_threads`], the paper's Algorithm 1):
//!    every quantum (1 M cycles) threads are sorted by memory intensity
//!    (MPKI) and the least intensive ones — up to a `ClusterThresh`
//!    fraction of the previous quantum's total bandwidth usage — form the
//!    *latency-sensitive* cluster; the rest form the
//!    *bandwidth-sensitive* cluster.
//! 2. **Latency cluster first**: latency-sensitive threads are strictly
//!    prioritized (lowest MPKI highest), buying large throughput gains at
//!    negligible bandwidth cost.
//! 3. **Niceness** ([`niceness_scores`]): within the bandwidth cluster, a
//!    thread with high bank-level parallelism is *fragile* (nice) and one
//!    with high row-buffer locality is *hostile* (not nice).
//! 4. **Insertion shuffle** ([`InsertionShuffler`], Algorithm 2):
//!    every `ShuffleInterval` (800 cycles) the bandwidth cluster's
//!    priority order is perturbed so that nicer threads spend more time
//!    near the top and the least nice thread almost always sits at the
//!    bottom; when threads are too homogeneous for niceness to be
//!    meaningful (`ShuffleAlgoThresh`), TCM falls back to
//!    [`RandomShuffler`].
//!
//! [`Tcm`] assembles these pieces into a policy implementing
//! [`tcm_sched::Scheduler`] (the paper's Algorithm 3 request
//! prioritization: rank, then row-hit, then age), with OS thread-weight
//! support and the `ClusterThresh` fairness/performance knob.
//! [`storage`] reproduces the paper's Table 2 hardware-cost model.
//!
//! # Example
//!
//! ```
//! use tcm_core::{Tcm, TcmParams};
//!
//! let tcm = Tcm::new(24); // paper defaults: ClusterThresh 4/24, quantum 1M
//! assert_eq!(tcm.params().quantum, 1_000_000);
//! assert_eq!(tcm.params().shuffle_interval, 800);
//! assert_eq!(TcmParams::paper_default(24).cluster_thresh, 4.0 / 24.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod clustering;
mod meta;
mod monitor;
mod niceness;
mod params;
mod scheduler;
mod shuffle;
pub mod storage;

pub use clustering::{cluster_threads, Cluster, Clustering};
pub use meta::{MetaController, TcmController};
pub use monitor::{QuantumSnapshot, TcmMonitor};
pub use niceness::{niceness_scores, rank_ascending};
pub use params::{ShuffleMode, TcmParams};
pub use scheduler::Tcm;
pub use shuffle::{
    weighted_random_permutation, InsertionShuffler, InsertionVariant, RandomShuffler,
    RoundRobinShuffler, Shuffler,
};
