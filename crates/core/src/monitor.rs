//! TCM's per-thread memory-behavior monitors (paper Section 3.4).
//!
//! Per quantum, TCM needs four signals per thread:
//!
//! * **MPKI** — misses per kilo-instruction, from the core's counters;
//! * **bandwidth usage** — bank-busy cycles attained (memory service
//!   time);
//! * **RBL** — *inherent* row-buffer locality, measured with shadow
//!   row-buffers (what would have hit if the thread ran alone);
//! * **BLP** — average number of banks holding at least one of the
//!   thread's requests, averaged over the time the thread has any
//!   outstanding request (time-weighted, which refines the paper's
//!   periodic sampling).
//!
//! [`TcmMonitor`] is fed from the scheduler's enqueue/service hooks and
//! harvested once per quantum via [`TcmMonitor::quantum_snapshot`].

use tcm_dram::ShadowRowBuffer;
use tcm_sched::MonitorSample;
use tcm_types::{BankId, Cycle, GlobalBank, Row, ThreadId};

/// Per-quantum measurement results, indexed by thread id.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumSnapshot {
    /// Misses per kilo-instruction during the quantum
    /// (`f64::INFINITY` for a thread that missed but retired nothing).
    pub mpki: Vec<f64>,
    /// Bank-busy cycles attained during the quantum.
    pub bw_usage: Vec<u64>,
    /// Inherent row-buffer locality in `[0, 1]` (0 for inactive threads).
    pub rbl: Vec<f64>,
    /// Average bank-level parallelism (1.0 floor for active threads, 0
    /// for threads with no accesses).
    pub blp: Vec<f64>,
}

/// Hardware monitors for one TCM instance (conceptually: the per-
/// controller monitors plus the meta-controller's aggregation).
#[derive(Debug, Clone)]
pub struct TcmMonitor {
    num_threads: usize,
    total_banks: usize,
    banks_per_channel: usize,
    shadow: ShadowRowBuffer,
    /// Outstanding requests per `(thread, global bank)`.
    outstanding: Vec<u32>,
    /// Number of banks with outstanding requests, per thread.
    banks_active: Vec<u32>,
    /// `Σ banks_active · dt` while the thread had outstanding requests.
    blp_integral: Vec<u64>,
    /// Total time with ≥ 1 outstanding request.
    busy_time: Vec<u64>,
    last_event: Vec<Cycle>,
    /// Cumulative counters at the start of the current quantum.
    retired_snapshot: Vec<u64>,
    misses_snapshot: Vec<u64>,
    service_snapshot: Vec<u64>,
}

impl TcmMonitor {
    /// Creates monitors for `num_threads` threads over a memory system
    /// with `num_channels × banks_per_channel` banks.
    pub fn new(num_threads: usize, num_channels: usize, banks_per_channel: usize) -> Self {
        let total_banks = num_channels * banks_per_channel;
        Self {
            num_threads,
            total_banks,
            banks_per_channel,
            // Shadow row-buffers are tracked per *global* bank: flatten
            // (channel, bank) into a single bank axis.
            shadow: ShadowRowBuffer::new(num_threads, total_banks),
            outstanding: vec![0; num_threads * total_banks],
            banks_active: vec![0; num_threads],
            blp_integral: vec![0; num_threads],
            busy_time: vec![0; num_threads],
            last_event: vec![0; num_threads],
            retired_snapshot: vec![0; num_threads],
            misses_snapshot: vec![0; num_threads],
            service_snapshot: vec![0; num_threads],
        }
    }

    /// Total number of banks monitored.
    pub fn total_banks(&self) -> usize {
        self.total_banks
    }

    fn flat_bank(&self, bank: GlobalBank) -> usize {
        bank.flat_index(self.banks_per_channel)
    }

    /// Advances the BLP time integral for `thread` to `now`.
    fn settle(&mut self, thread: usize, now: Cycle) {
        let dt = now.saturating_sub(self.last_event[thread]);
        if self.banks_active[thread] > 0 && dt > 0 {
            self.blp_integral[thread] += self.banks_active[thread] as u64 * dt;
            self.busy_time[thread] += dt;
        }
        self.last_event[thread] = now;
    }

    /// Records a request arriving at a controller.
    pub fn on_enqueue(&mut self, thread: ThreadId, bank: GlobalBank, row: Row, now: Cycle) {
        let t = thread.index();
        if t >= self.num_threads {
            return;
        }
        self.shadow
            .access(thread, BankId::new(self.flat_bank(bank)), row);
        self.settle(t, now);
        let slot = t * self.total_banks + self.flat_bank(bank);
        self.outstanding[slot] += 1;
        if self.outstanding[slot] == 1 {
            self.banks_active[t] += 1;
        }
    }

    /// Records a request leaving the queue for service.
    ///
    /// # Panics
    ///
    /// Panics if no request from `thread` is outstanding at `bank` —
    /// enqueue/service accounting must be balanced.
    pub fn on_service(&mut self, thread: ThreadId, bank: GlobalBank, now: Cycle) {
        let t = thread.index();
        if t >= self.num_threads {
            return;
        }
        self.settle(t, now);
        let slot = t * self.total_banks + self.flat_bank(bank);
        assert!(self.outstanding[slot] > 0, "unbalanced service accounting");
        self.outstanding[slot] -= 1;
        if self.outstanding[slot] == 0 {
            self.banks_active[t] -= 1;
        }
    }

    /// Harvests the quantum's measurements and resets the per-quantum
    /// counters. `retired`, `misses` and `service` are the *cumulative*
    /// per-thread counters at quantum end.
    pub fn quantum_snapshot(
        &mut self,
        now: Cycle,
        retired: &[u64],
        misses: &[u64],
        service: &[u64],
    ) -> QuantumSnapshot {
        let n = self.num_threads;
        let mut snap = QuantumSnapshot {
            mpki: vec![0.0; n],
            bw_usage: vec![0; n],
            rbl: vec![0.0; n],
            blp: vec![0.0; n],
        };
        for t in 0..n {
            self.settle(t, now);
            let instr = retired.get(t).copied().unwrap_or(0) - self.retired_snapshot[t];
            let miss = misses.get(t).copied().unwrap_or(0) - self.misses_snapshot[t];
            snap.mpki[t] = match (miss, instr) {
                (0, _) => 0.0,
                (_, 0) => f64::INFINITY,
                (m, i) => m as f64 * 1000.0 / i as f64,
            };
            snap.bw_usage[t] =
                service.get(t).copied().unwrap_or(0) - self.service_snapshot[t];
            snap.rbl[t] = self.shadow.thread_rbl(ThreadId::new(t)).unwrap_or(0.0);
            snap.blp[t] = if self.busy_time[t] > 0 {
                self.blp_integral[t] as f64 / self.busy_time[t] as f64
            } else if miss > 0 {
                1.0
            } else {
                0.0
            };
            self.retired_snapshot[t] = retired.get(t).copied().unwrap_or(0);
            self.misses_snapshot[t] = misses.get(t).copied().unwrap_or(0);
            self.service_snapshot[t] = service.get(t).copied().unwrap_or(0);
            self.blp_integral[t] = 0;
            self.busy_time[t] = 0;
        }
        self.shadow.reset_counters();
        snap
    }

    /// Harvests the raw per-quantum accumulators as a [`MonitorSample`]
    /// for meta-controller aggregation (paper §5.3), resetting the same
    /// windows [`TcmMonitor::quantum_snapshot`] resets (shadow hit
    /// counters, BLP integrals) but leaving the cumulative-counter
    /// snapshots untouched — in the coordinated design those deltas are
    /// the meta-controller's job, taken from the global system view.
    pub fn harvest_sample(&mut self, now: Cycle) -> MonitorSample {
        let n = self.num_threads;
        let mut sample = MonitorSample {
            shadow_hits: vec![0; n],
            shadow_accesses: vec![0; n],
            blp_integral: vec![0; n],
            busy_time: vec![0; n],
        };
        for t in 0..n {
            self.settle(t, now);
            let (hits, accesses) = self.shadow.thread_counts(ThreadId::new(t));
            sample.shadow_hits[t] = hits;
            sample.shadow_accesses[t] = accesses;
            sample.blp_integral[t] = self.blp_integral[t];
            sample.busy_time[t] = self.busy_time[t];
            self.blp_integral[t] = 0;
            self.busy_time[t] = 0;
        }
        self.shadow.reset_counters();
        sample
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::ChannelId;

    fn gb(channel: usize, bank: usize) -> GlobalBank {
        GlobalBank::new(ChannelId::new(channel), BankId::new(bank))
    }

    fn monitor() -> TcmMonitor {
        TcmMonitor::new(2, 2, 2) // 2 threads, 4 global banks
    }

    #[test]
    fn blp_is_time_weighted_average_of_active_banks() {
        let mut m = monitor();
        let t = ThreadId::new(0);
        // Two banks active from cycle 0 to 100.
        m.on_enqueue(t, gb(0, 0), Row::new(1), 0);
        m.on_enqueue(t, gb(1, 1), Row::new(2), 0);
        // One bank drains at 100; the other at 200.
        m.on_service(t, gb(0, 0), 100);
        m.on_service(t, gb(1, 1), 200);
        let snap = m.quantum_snapshot(1000, &[1000, 0], &[2, 0], &[0, 0]);
        // BLP = (2*100 + 1*100) / 200 = 1.5.
        assert!((snap.blp[0] - 1.5).abs() < 1e-9, "blp = {}", snap.blp[0]);
    }

    #[test]
    fn rbl_measures_shadow_hits() {
        let mut m = monitor();
        let t = ThreadId::new(0);
        m.on_enqueue(t, gb(0, 0), Row::new(7), 0);
        m.on_enqueue(t, gb(0, 0), Row::new(7), 10); // shadow hit
        m.on_enqueue(t, gb(0, 0), Row::new(8), 20); // miss
        m.on_enqueue(t, gb(0, 0), Row::new(8), 30); // hit
        for at in [40, 50, 60, 70] {
            m.on_service(t, gb(0, 0), at);
        }
        let snap = m.quantum_snapshot(100, &[100, 0], &[4, 0], &[0, 0]);
        assert!((snap.rbl[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mpki_and_bandwidth_are_quantum_deltas() {
        let mut m = monitor();
        let snap = m.quantum_snapshot(1000, &[10_000, 1000], &[50, 0], &[777, 0]);
        assert!((snap.mpki[0] - 5.0).abs() < 1e-9);
        assert_eq!(snap.bw_usage[0], 777);
        assert_eq!(snap.mpki[1], 0.0);
        // Second quantum: only the delta counts.
        let snap = m.quantum_snapshot(2000, &[20_000, 2000], &[70, 3], &[1000, 50]);
        assert!((snap.mpki[0] - 2.0).abs() < 1e-9);
        assert_eq!(snap.bw_usage[0], 223);
        assert_eq!(snap.bw_usage[1], 50);
        assert!((snap.mpki[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stalled_thread_with_misses_has_infinite_mpki() {
        let mut m = monitor();
        let snap = m.quantum_snapshot(1000, &[0, 0], &[5, 0], &[0, 0]);
        assert!(snap.mpki[0].is_infinite());
    }

    #[test]
    fn quantum_reset_clears_blp_and_rbl_windows() {
        let mut m = monitor();
        let t = ThreadId::new(0);
        m.on_enqueue(t, gb(0, 0), Row::new(1), 0);
        m.on_service(t, gb(0, 0), 100);
        let first = m.quantum_snapshot(100, &[100, 0], &[1, 0], &[10, 0]);
        assert!(first.blp[0] > 0.0);
        // Nothing happens in the second quantum.
        let second = m.quantum_snapshot(200, &[200, 0], &[1, 0], &[10, 0]);
        assert_eq!(second.blp[0], 0.0);
        assert_eq!(second.rbl[0], 0.0);
        assert_eq!(second.bw_usage[0], 0);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_service_panics() {
        let mut m = monitor();
        m.on_service(ThreadId::new(0), gb(0, 0), 10);
    }

    #[test]
    fn out_of_range_threads_are_ignored() {
        let mut m = monitor();
        m.on_enqueue(ThreadId::new(9), gb(0, 0), Row::new(1), 0);
        m.on_service(ThreadId::new(9), gb(0, 0), 10);
        let snap = m.quantum_snapshot(100, &[0, 0], &[0, 0], &[0, 0]);
        assert_eq!(snap.blp, vec![0.0, 0.0]);
    }
}
