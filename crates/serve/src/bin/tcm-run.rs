//! `tcm-run` — command-line front end for the simulator: run one
//! workload under one or more scheduling policies and print the paper's
//! metrics (optionally as JSON). Two subcommands complete the
//! engine/service/client split:
//!
//! ```text
//! tcm-run serve  [--socket PATH] [--state-dir DIR] [--workers N]
//!                [--queue-capacity N] [--drain-deadline SECS]
//!                [--log-level L] [--log-json] [--metrics-file FILE]
//! tcm-run client [--socket PATH] submit|soak|status|watch|cancel|drain|metrics ...
//! tcm-run top    [--socket PATH] [--interval SECS] [--once]
//! ```
//!
//! `serve` starts the long-running daemon (see `tcm_serve::server`): a
//! Unix-socket service with a durable priority job queue (fsynced WAL +
//! per-job cell checkpoints — a SIGKILL'd daemon restarts and finishes
//! its jobs bit-identically), per-job deadlines, deterministic seeded
//! retry backoff, and graceful drain on SIGTERM (exit 0 within the
//! drain deadline). `client` speaks `tcm-proto` frames to it: `submit`
//! enqueues a sweep grid (`--watch` streams per-cell results live),
//! `soak` enqueues a continuous chaos-soak job, `status`/`watch`/
//! `cancel`/`drain` do what they say, `metrics` scrapes the daemon's
//! Prometheus-format exposition over the socket. `top` is a live
//! dashboard over the same three requests — Status (job table +
//! `ServerInfo`), Metrics (queue/worker/WAL gauges, throughput
//! counters) and Watch (streamed events from the newest active job) —
//! redrawn in place with plain ANSI codes; `--once` prints a single
//! snapshot and exits. Without a subcommand, `tcm-run` is the classic
//! one-shot front end:
//!
//! ```text
//! tcm-run [--threads N] [--intensity F] [--seed S] [--cycles C]
//!         [--topology N|CxK|a+b+...] [--intra-hosts H]
//!         [--policies fr-fcfs,stfm,par-bs,atlas,fqm,tcm] [--json]
//!         [--workload A|B|C|D] [--workers W] [--verify]
//!         [--checkpoint FILE] [--resume FILE] [--cell-deadline SECS]
//!         [--bench-json FILE] [--chaos-smoke] [--chaos-empty]
//!         [--trace FILE] [--trace-format jsonl|chrome] [--metrics-json FILE]
//! ```
//!
//! `--topology` selects the memory-system shape: `4` is the legacy flat
//! single controller with 4 channels, `2x2` is two controllers with two
//! channels each (coordinated by the paper's §5.3 meta-controller when
//! the policy is TCM), `3+1` is an asymmetric pair. `--intra-hosts`
//! shards a multi-controller cell's controllers across host threads —
//! results are bit-identical for any value; it only trades wall-clock.
//!
//! `--trace FILE` enables telemetry and writes the captured event log:
//! as JSONL (one event per line, `cell_begin` marker lines between
//! cells, floats as `*_bits` integers) or, with `--trace-format
//! chrome`, as a Chrome-trace JSON array loadable in Perfetto
//! (<https://ui.perfetto.dev>) — one process per sweep cell, one track
//! per simulated thread, counter tracks for the sampled series.
//! `--metrics-json FILE` enables telemetry and writes every cell's
//! final metrics registry (counters, gauges, histograms, series) as
//! one JSON document. Telemetry is observation-only: results are
//! bit-identical with and without it.
//!
//! `--bench-json FILE` switches to benchmark mode: time a *fixed*
//! paper-lineup sweep (5 policies × the 4 Table 5 workload categories on
//! the paper-baseline machine) and write a wall-clock throughput record
//! to FILE — simulated cycles/sec, cells/sec, peak queue depth — tagged
//! with which `RequestQueue` implementation the binary was built with
//! (`indexed` by default, `flat` under the `flat-queue` feature).
//! `scripts/bench.sh` runs both builds and merges the two records into
//! `BENCH_hotpath.json`. Only `--cycles`, `--workers`, the topology
//! flags, and the `--verify`/`--chaos-empty` probes modify the fixed
//! sweep (workers default to 1 in this mode for stable timing).
//!
//! `--checkpoint FILE` records every completed sweep cell to FILE
//! (JSONL, atomically republished after each cell), and `--resume FILE`
//! restores completed cells from FILE before running the rest — the
//! merged result is bit-identical to an uninterrupted run. The two
//! flags name the same mechanism: `--resume` both reads and continues
//! updating FILE. `--cell-deadline SECS` bounds each cell's wall-clock
//! time; a cell that exceeds it is cancelled cooperatively, retried
//! once with a fresh deadline, and reported as a timeout — other cells
//! are unaffected.
//!
//! `--chaos-smoke` runs the fault-injection smoke campaign instead of a
//! sweep: every `tcm-chaos` fault class is injected into a fixed-seed
//! simulation and must be caught by exactly its mapped detector, and a
//! zero-fault control run must finish clean and bit-identical to a run
//! without the chaos layer. With a multi-controller `--topology` (e.g.
//! `2x2`) the campaign runs on `MultiSystem` instead — covering the
//! coordination fault classes (controller blackout, monitor skew) that
//! have no flat-machine analogue — and honours `--intra-hosts`, so the
//! same faults are provably host-count invariant. `--chaos-empty`
//! installs an *empty* fault plan on every run (arming the detectors
//! without scheduling any fault); benches use it to prove the chaos
//! layer is zero-cost when inert.
//!
//! Exit codes: 0 on success, 1 if any sweep cell failed for a
//! deterministic reason (panic, invariant violation, stall — the
//! failures are reported on stderr with their (policy, workload, seed)
//! coordinates; successful cells are still printed), 2 on usage errors,
//! 3 if cells failed but *only* by exceeding `--cell-deadline` (retry
//! with a longer deadline and `--resume` to finish the grid).
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p tcm-serve --bin tcm-run -- --intensity 1.0 --cycles 5000000
//! cargo run --release -p tcm-serve --bin tcm-run -- --workload B --json
//! cargo run --release -p tcm-serve --bin tcm-run -- serve --socket /tmp/tcm.sock
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tcm_proto::{
    Event, JobKind, JobSpec, JobState, JobStatusInfo, ServerInfo, SoakSpec, SweepSpec, WorkloadRef,
};
use tcm_serve::{Client, Level, Server, ServerConfig};
use tcm_chaos::{Detector, FaultKind, FaultPlan, FaultSpec};
use tcm_core::TcmParams;
use tcm_sched::{AtlasParams, ParBsParams, StfmParams};
use tcm_sim::{CellFailureKind, MultiSystem, PolicyKind, RunConfig, Session, SweepCell, System};
use tcm_telemetry::{
    chrome_counter, chrome_event, chrome_process_name, event_to_jsonl, labeled, TelemetryConfig,
};
use tcm_types::{SimError, SystemConfig, Topology};
use tcm_workload::{random_workload, table5_workloads, WorkloadSpec};

struct PolicyOutput {
    policy: String,
    weighted_speedup: f64,
    harmonic_speedup: f64,
    max_slowdown: f64,
    slowdowns: Vec<f64>,
}

struct Output {
    workload: String,
    threads: usize,
    cycles: u64,
    benchmarks: Vec<String>,
    results: Vec<PolicyOutput>,
}

/// Minimal JSON emission (the build environment is offline, so the
/// workspace carries no serializer dependency).
mod json {
    use std::fmt::Write as _;

    pub fn string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    pub fn number(out: &mut String, v: f64) {
        if v.is_finite() {
            let _ = write!(out, "{v}");
        } else {
            out.push_str("null"); // matches serde_json's treatment of non-finite floats
        }
    }
}

impl Output {
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"workload\": ");
        json::string(&mut s, &self.workload);
        let _ = write!(s, ",\n  \"threads\": {},\n  \"cycles\": {}", self.threads, self.cycles);
        s.push_str(",\n  \"benchmarks\": [");
        for (i, b) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::string(&mut s, b);
        }
        s.push_str("],\n  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n      \"policy\": ");
            json::string(&mut s, &r.policy);
            s.push_str(",\n      \"weighted_speedup\": ");
            json::number(&mut s, r.weighted_speedup);
            s.push_str(",\n      \"harmonic_speedup\": ");
            json::number(&mut s, r.harmonic_speedup);
            s.push_str(",\n      \"max_slowdown\": ");
            json::number(&mut s, r.max_slowdown);
            s.push_str(",\n      \"slowdowns\": [");
            for (j, sd) in r.slowdowns.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                json::number(&mut s, *sd);
            }
            s.push_str("]\n    }");
        }
        s.push_str("\n  ]\n}");
        s
    }
}

/// Benchmark mode: time the fixed paper-lineup sweep and write the
/// throughput record to `path`. Returns the process exit code.
fn run_bench(
    path: &str,
    cycles: u64,
    workers: usize,
    topology: Option<&Topology>,
    intra_hosts: usize,
    verify: bool,
    chaos_empty: bool,
) -> i32 {
    let threads = 24usize;
    let policies = PolicyKind::paper_lineup(threads);
    let workloads = table5_workloads();
    let policy_labels: Vec<String> = policies.iter().map(PolicyKind::label).collect();
    let workload_names: Vec<String> = workloads.iter().map(|w| w.name.clone()).collect();

    let mut cfg = SystemConfig::paper_baseline();
    if let Some(topology) = topology {
        cfg.topology = topology.clone();
    }
    let topology_spec = cfg.topology.to_string();
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(cycles)
            .intra_hosts(intra_hosts)
            .verify(verify)
            .chaos(chaos_empty.then(FaultPlan::none))
            .build(),
    );
    let sweep = session
        .sweep()
        .policies(policies)
        .workloads(workloads);
    let result = sweep.run_parallel(workers);
    if !result.is_complete() {
        eprintln!("bench sweep had {} failed cell(s):", result.failures().len());
        for failure in result.failures() {
            eprintln!("  {failure}");
        }
        return 1;
    }

    let stats = result.stats();
    let wall_secs = stats.wall.as_secs_f64();
    let cells_per_sec = if wall_secs > 0.0 {
        stats.cells as f64 / wall_secs
    } else {
        0.0
    };
    let peak_queue_depth = result
        .cells()
        .iter()
        .map(|c| c.result.run.peak_queue)
        .max()
        .unwrap_or(0);

    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"tcm-bench-hotpath-v1\",\n  \"queue_impl\": ");
    json::string(&mut s, tcm_dram::QUEUE_IMPL);
    s.push_str(",\n  \"telemetry_impl\": ");
    json::string(&mut s, tcm_telemetry::TELEMETRY_IMPL);
    s.push_str(",\n  \"topology\": ");
    json::string(&mut s, &topology_spec);
    let _ = write!(s, ",\n  \"threads\": {threads},\n  \"horizon\": {cycles}");
    s.push_str(",\n  \"policies\": [");
    for (i, p) in policy_labels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        json::string(&mut s, p);
    }
    s.push_str("],\n  \"workloads\": [");
    for (i, w) in workload_names.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        json::string(&mut s, w);
    }
    let _ = write!(
        s,
        "],\n  \"cells\": {},\n  \"alone_runs\": {},\n  \"workers\": {},\n  \"sim_cycles\": {}",
        stats.cells, stats.alone_runs, stats.workers, stats.sim_cycles
    );
    s.push_str(",\n  \"wall_secs\": ");
    json::number(&mut s, wall_secs);
    s.push_str(",\n  \"sim_cycles_per_sec\": ");
    json::number(&mut s, stats.sim_cycles_per_sec());
    s.push_str(",\n  \"cells_per_sec\": ");
    json::number(&mut s, cells_per_sec);
    let _ = write!(s, ",\n  \"peak_queue_depth\": {peak_queue_depth}\n}}");

    if let Err(err) = std::fs::write(path, format!("{s}\n")) {
        eprintln!("cannot write {path}: {err}");
        return 1;
    }
    eprintln!(
        "bench [{} queue]: {} cells @ {} cycles in {:.2}s ({:.2e} sim-cycles/sec, \
         peak queue {}) -> {}",
        tcm_dram::QUEUE_IMPL,
        stats.cells,
        cycles,
        wall_secs,
        stats.sim_cycles_per_sec(),
        peak_queue_depth,
        path,
    );
    0
}

/// Chaos smoke campaign: inject every fault class at a fixed seed and
/// check each is caught by exactly its mapped detector, then prove the
/// clean control has zero detections and is bit-identical to a run
/// without the chaos layer. A multi-controller `--topology` runs the
/// campaign on [`MultiSystem`] (the only machine where the coordination
/// fault classes have a target). Returns the process exit code.
fn run_chaos_smoke(topology: Option<&Topology>, intra_hosts: usize) -> i32 {
    match topology {
        Some(topo) if topo.num_controllers() > 1 => run_chaos_smoke_multi(topo, intra_hosts),
        _ => run_chaos_smoke_flat(),
    }
}

/// Tallies per-check pass/fail lines for the smoke campaigns.
struct SmokeReport {
    failures: usize,
}

impl SmokeReport {
    fn new() -> Self {
        Self { failures: 0 }
    }

    fn check(&mut self, name: &str, ok: bool, detail: String) {
        eprintln!("  {name:<20} {} {detail}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            self.failures += 1;
        }
    }

    fn finish(self, label: &str, classes: usize) -> i32 {
        if self.failures == 0 {
            eprintln!("chaos smoke [{label}]: all {classes} fault classes detected, control clean");
            0
        } else {
            eprintln!("chaos smoke [{label}]: {} check(s) FAILED", self.failures);
            1
        }
    }
}

/// The single-controller campaign: every non-coordination fault class
/// on the flat [`System`] engine. Coordination faults (blackout, skew)
/// strike the controller↔meta-controller exchange, which a flat machine
/// does not have; the multi campaign covers them.
fn run_chaos_smoke_flat() -> i32 {
    const HORIZON: u64 = 200_000;
    const FAULT_AT: u64 = 20_000;
    let threads = 4;
    // Single channel: all traffic fights over one data bus, so every
    // channel-level fault finds an eligible operation soon after arming.
    let cfg = SystemConfig::builder()
        .num_threads(threads)
        .num_channels(1)
        .build()
        .expect("smoke config is valid");
    let workload = random_workload(1, threads, 1.0);
    // Short quantum so TCM's plausibility guard runs within the horizon.
    let tcm = PolicyKind::Tcm(TcmParams {
        quantum: 50_000,
        ..TcmParams::paper_default(threads)
    });

    let mut report = SmokeReport::new();
    let mut classes = 0usize;
    eprintln!("chaos smoke: every fault class vs its detector");
    for kind in FaultKind::ALL {
        if kind.is_coordination_fault() {
            eprintln!(
                "  {:<20} skip coordination fault needs a meta-controller \
                 (rerun with --topology 2x2)",
                kind.name()
            );
            continue;
        }
        classes += 1;
        let policy = match kind.detector() {
            Detector::Degradation => &tcm,
            _ => &PolicyKind::FrFcfs,
        };
        let mut sys = System::new(&cfg, &workload, policy.build(threads, &cfg), 0);
        sys.install_chaos(
            &FaultPlan::none().with_fault(FaultSpec::new(kind, FAULT_AT).on_thread(1)),
        );
        let outcome = sys.try_run(HORIZON);
        match (kind.detector(), outcome) {
            (Detector::Invariant(expected), Err(SimError::InvariantViolation(v))) => {
                let ok = v.invariant == expected;
                report.check(kind.name(), ok, format!("caught: {v}"));
            }
            (Detector::Stall, Err(SimError::Stalled(r))) => {
                report.check(kind.name(), true, format!("caught: {}", r.summary()));
            }
            (Detector::Degradation, Ok(_)) => {
                let anomalies = sys.degradation_events();
                let ok = !anomalies.is_empty();
                let detail = anomalies
                    .first()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "no anomaly logged".to_string());
                report.check(kind.name(), ok, format!("degraded: {detail}"));
            }
            (Detector::Quarantine, _) => unreachable!("coordination kinds skipped above"),
            (_, Err(err)) => report.check(kind.name(), false, format!("wrong detector: {err}")),
            (_, Ok(_)) => report.check(kind.name(), false, "escaped undetected".to_string()),
        }
    }

    // Clean control: detectors armed, zero faults — and the empty plan
    // must be a strict no-op, bit for bit.
    let mut bare = System::new(&cfg, &workload, PolicyKind::FrFcfs.build(threads, &cfg), 0);
    bare.enable_verification();
    let mut control = System::new(&cfg, &workload, PolicyKind::FrFcfs.build(threads, &cfg), 0);
    control.install_chaos(&FaultPlan::none());
    match (bare.try_run(HORIZON), control.try_run(HORIZON)) {
        (Ok(a), Ok(b)) => {
            report.check(
                "clean-control",
                a == b,
                if a == b {
                    "zero detections, bit-identical to no chaos layer".to_string()
                } else {
                    "results diverge from the chaos-free run".to_string()
                },
            );
        }
        (a, b) => report.check(
            "clean-control",
            false,
            format!("false positive: {:?} / {:?}", a.err(), b.err()),
        ),
    }

    report.finish("flat", classes)
}

/// The multi-controller campaign: all fault classes — including the two
/// coordination kinds — on a sharded [`MultiSystem`], with faults
/// addressed to the *last* controller and the *last* global channel so
/// detection proves topology-aware routing, not flat-index luck.
fn run_chaos_smoke_multi(topo: &Topology, intra_hosts: usize) -> i32 {
    const HORIZON: u64 = 300_000;
    const FAULT_AT: u64 = 20_000;
    // Coordination faults must land *after* the target controller has
    // participated in one clean exchange (first boundary at the 50k
    // quantum): a monitor that never reported is indistinguishable from
    // one that went dark.
    const COORD_AT: u64 = 60_000;
    let threads = 4;
    let cfg = SystemConfig::builder()
        .num_threads(threads)
        .topology(topo.clone())
        .build()
        .expect("smoke config is valid");
    let workload = random_workload(1, threads, 1.0);
    let tcm = PolicyKind::Tcm(TcmParams {
        quantum: 50_000,
        ..TcmParams::paper_default(threads)
    });
    let build = |policy: &PolicyKind, hosts: usize| -> MultiSystem {
        let controllers = (0..topo.num_controllers())
            .map(|_| policy.build_controller(threads, &cfg))
            .collect();
        let mut sys =
            MultiSystem::new(&cfg, &workload, controllers, policy.build_meta(threads, &cfg), 0);
        sys.set_hosts(hosts);
        sys
    };
    let last_controller = topo.num_controllers() - 1;
    let last_channel = topo.num_channels() - 1;

    let mut report = SmokeReport::new();
    eprintln!(
        "chaos smoke: every fault class vs its detector on {topo} across {intra_hosts} host(s)"
    );
    for kind in FaultKind::ALL {
        let policy = match kind.detector() {
            // Both the plausibility guard and the quarantine guard live
            // in the TCM meta-controller.
            Detector::Degradation | Detector::Quarantine => &tcm,
            _ => &PolicyKind::FrFcfs,
        };
        let at = if kind.is_coordination_fault() { COORD_AT } else { FAULT_AT };
        let mut sys = build(policy, intra_hosts);
        sys.install_chaos(&FaultPlan::none().with_fault(
            FaultSpec::new(kind, at)
                .on_thread(1)
                .on_channel(last_channel)
                .on_controller(last_controller),
        ));
        let outcome = sys.try_run(HORIZON);
        match (kind.detector(), outcome) {
            (Detector::Invariant(expected), Err(SimError::InvariantViolation(v))) => {
                let ok = v.invariant == expected && v.channel.index() == last_channel;
                report.check(kind.name(), ok, format!("caught: {v}"));
            }
            (Detector::Stall, Err(SimError::Stalled(r))) => {
                // A sharded stall must name the frozen controller.
                let ok = r.controller.is_some();
                report.check(kind.name(), ok, format!("caught: {}", r.summary().trim_end()));
            }
            (Detector::Degradation, Ok(_)) => {
                let anomalies = sys.degradation_events();
                let ok = !anomalies.is_empty();
                let detail = anomalies
                    .first()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "no anomaly logged".to_string());
                report.check(kind.name(), ok, format!("degraded: {detail}"));
            }
            (Detector::Quarantine, Ok(_)) => {
                use tcm_telemetry::DegradationAnomaly;
                let anomalies = sys.degradation_events();
                let quarantined = anomalies.iter().any(|a| {
                    matches!(a, DegradationAnomaly::ControllerQuarantined { controller, .. }
                        if *controller == last_controller)
                });
                let readmitted = anomalies.iter().any(|a| {
                    matches!(a, DegradationAnomaly::ControllerReadmitted { controller, .. }
                        if *controller == last_controller)
                });
                let detail = anomalies
                    .first()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| "no quarantine logged".to_string());
                report.check(
                    kind.name(),
                    quarantined && readmitted,
                    format!("quarantined + readmitted: {detail}"),
                );
            }
            (_, Err(err)) => report.check(kind.name(), false, format!("wrong detector: {err}")),
            (_, Ok(_)) => report.check(kind.name(), false, "escaped undetected".to_string()),
        }
    }

    // Clean control under TCM (the guard-bearing policy): the empty plan
    // must be a strict no-op, and sharding across hosts must not shift a
    // single bit relative to the sequential chaos-free run.
    let mut bare = build(&tcm, 1);
    bare.enable_verification();
    let mut control = build(&tcm, intra_hosts);
    control.install_chaos(&FaultPlan::none());
    match (bare.try_run(HORIZON), control.try_run(HORIZON)) {
        (Ok(a), Ok(b)) => {
            let ok = a == b;
            report.check(
                "clean-control",
                ok,
                if ok {
                    format!(
                        "zero detections, bit-identical to chaos-free run at 1 vs \
                         {intra_hosts} host(s)"
                    )
                } else {
                    "results diverge from the chaos-free run".to_string()
                },
            );
        }
        (a, b) => report.check(
            "clean-control",
            false,
            format!("false positive: {:?} / {:?}", a.err(), b.err()),
        ),
    }

    report.finish(&format!("{topo} × {intra_hosts} host(s)"), FaultKind::ALL.len())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

/// Serializes the captured event logs of every completed cell. JSONL
/// interleaves `cell_begin` marker lines (skipped by the parser) so one
/// file can hold a whole sweep; the Chrome format emits one trace
/// "process" per cell, named `POLICY × WORKLOAD`, with the metric
/// series as counter tracks.
fn render_trace(format: TraceFormat, cells: &[SweepCell]) -> String {
    match format {
        TraceFormat::Jsonl => {
            let mut out = String::new();
            for cell in cells {
                let Some(snapshot) = &cell.result.telemetry else {
                    continue;
                };
                out.push_str("{\"event\":\"cell_begin\",\"policy\":");
                json::string(&mut out, &cell.result.policy);
                out.push_str(",\"workload\":");
                json::string(&mut out, &cell.result.workload);
                let _ = write!(
                    out,
                    ",\"seed\":{},\"events\":{},\"dropped\":{}}}",
                    cell.seed,
                    snapshot.events.len(),
                    snapshot.dropped
                );
                out.push('\n');
                for event in &snapshot.events {
                    out.push_str(&event_to_jsonl(event));
                    out.push('\n');
                }
            }
            out
        }
        TraceFormat::Chrome => {
            let mut entries = Vec::new();
            for (i, cell) in cells.iter().enumerate() {
                let Some(snapshot) = &cell.result.telemetry else {
                    continue;
                };
                let pid = i as u64 + 1;
                entries.push(chrome_process_name(
                    pid,
                    &format!("{} × {}", cell.result.policy, cell.result.workload),
                ));
                for event in &snapshot.events {
                    entries.push(chrome_event(event, pid));
                }
                for (name, points) in snapshot.metrics.all_series() {
                    for (at, value) in points {
                        entries.push(chrome_counter(pid, name, *at, *value));
                    }
                }
            }
            format!("[{}]\n", entries.join(",\n"))
        }
    }
}

/// Serializes every cell's final metrics registry as one JSON document
/// (schema `tcm-metrics-v1`). Human-facing: floats are plain JSON
/// numbers (`null` when non-finite); the lossless form lives in the
/// sweep checkpoint.
fn render_metrics(cells: &[SweepCell]) -> String {
    let mut s = String::from("{\n  \"schema\": \"tcm-metrics-v1\",\n  \"cells\": [");
    let mut first = true;
    for cell in cells {
        let Some(snapshot) = &cell.result.telemetry else {
            continue;
        };
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str("\n    {\"policy\": ");
        json::string(&mut s, &cell.result.policy);
        s.push_str(", \"workload\": ");
        json::string(&mut s, &cell.result.workload);
        let _ = write!(s, ", \"seed\": {}, \"dropped_events\": {}", cell.seed, snapshot.dropped);
        let m = &snapshot.metrics;
        s.push_str(",\n     \"counters\": {");
        for (i, (name, value)) in m.counters().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::string(&mut s, name);
            let _ = write!(s, ": {value}");
        }
        s.push_str("},\n     \"gauges\": {");
        for (i, (name, value)) in m.gauges().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::string(&mut s, name);
            s.push_str(": ");
            json::number(&mut s, *value);
        }
        s.push_str("},\n     \"histograms\": {");
        for (i, (name, hist)) in m.histograms().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::string(&mut s, name);
            s.push_str(": {\"bounds\": [");
            for (j, b) in hist.bounds().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("], \"counts\": [");
            for (j, c) in hist.counts().iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push_str("]}");
        }
        s.push_str("},\n     \"series\": {");
        for (i, (name, points)) in m.all_series().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::string(&mut s, name);
            s.push_str(": [");
            for (j, (at, value)) in points.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{at},");
                json::number(&mut s, *value);
                s.push(']');
            }
            s.push(']');
        }
        s.push_str("}}");
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// The paper's Figure 9 in one line per TCM cell: the average fraction
/// of DRAM bandwidth each cluster consumed, over the run's quanta.
fn print_cluster_summary(cells: &[SweepCell]) {
    for cell in cells {
        let Some(snapshot) = &cell.result.telemetry else {
            continue;
        };
        let latency = snapshot
            .metrics
            .series(&labeled("bw_share", &[("cluster", "latency")]));
        let bandwidth = snapshot
            .metrics
            .series(&labeled("bw_share", &[("cluster", "bandwidth")]));
        let (Some(latency), Some(bandwidth)) = (latency, bandwidth) else {
            continue;
        };
        let avg = |points: &[(u64, f64)]| {
            points.iter().map(|(_, v)| v).sum::<f64>() / points.len().max(1) as f64
        };
        println!(
            "{:>8} | bw share (Fig. 9): latency-cluster {:.1}%, bandwidth-cluster {:.1}% \
             over {} quanta",
            cell.result.policy,
            avg(latency) * 100.0,
            avg(bandwidth) * 100.0,
            latency.len(),
        );
    }
}

fn parse_policy(name: &str, n: usize) -> Result<PolicyKind, String> {
    Ok(match name {
        "fcfs" => PolicyKind::Fcfs,
        "fr-fcfs" | "frfcfs" => PolicyKind::FrFcfs,
        "stfm" => PolicyKind::Stfm(StfmParams::paper_default()),
        "par-bs" | "parbs" => PolicyKind::ParBs(ParBsParams::paper_default()),
        "atlas" => PolicyKind::Atlas(AtlasParams::paper_default()),
        "fqm" => PolicyKind::FairQueueing,
        "tcm" => PolicyKind::Tcm(TcmParams::reproduction_default(n)),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn serve_usage() -> ! {
    eprintln!(
        "usage: tcm-run serve [--socket PATH] [--state-dir DIR] [--workers N]\n\
         \x20                    [--queue-capacity N] [--drain-deadline SECS]\n\
         \x20                    [--log-level debug|info|warn|error] [--log-json]\n\
         \x20                    [--metrics-file FILE]\n\
         Starts the sweep daemon on a Unix-domain socket. State (WAL, per-job\n\
         checkpoints, result files) lives in --state-dir; a restarted daemon\n\
         re-admits unfinished jobs from the WAL and finishes them bit-identically.\n\
         SIGTERM/SIGINT drain gracefully: admission stops, in-flight cells finish\n\
         or checkpoint, and the process exits 0 within --drain-deadline.\n\
         Logs are structured key=value lines on stderr (--log-json switches to one\n\
         JSON object per line); --metrics-file atomically republishes the\n\
         Prometheus text exposition about once a second for file-based scrapes."
    );
    std::process::exit(2)
}

fn serve_main(args: &[String]) -> i32 {
    let mut config = ServerConfig::default();
    let mut log_level = Level::Info;
    let mut log_json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    serve_usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--socket" => config.socket = PathBuf::from(value("--socket")),
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")),
            "--workers" => {
                config.workers = value("--workers").parse().unwrap_or_else(|_| serve_usage())
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|_| serve_usage())
            }
            "--drain-deadline" => {
                let secs: f64 = value("--drain-deadline")
                    .parse()
                    .unwrap_or_else(|_| serve_usage());
                if !secs.is_finite() || secs < 0.0 {
                    serve_usage()
                }
                config.drain_deadline = Duration::from_secs_f64(secs);
            }
            "--log-level" => {
                log_level = Level::parse(&value("--log-level")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    serve_usage()
                })
            }
            "--log-json" => log_json = true,
            "--metrics-file" => config.metrics_file = Some(PathBuf::from(value("--metrics-file"))),
            "--help" | "-h" => serve_usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                serve_usage()
            }
        }
    }
    tcm_serve::log::init(log_level, log_json);
    tcm_serve::signal::install_drain_handler();
    match Server::new(config).and_then(Server::run) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tcm-serve: {e}");
            1
        }
    }
}

fn client_usage() -> ! {
    eprintln!(
        "usage: tcm-run client [--socket PATH] COMMAND\n\
         commands:\n\
         \x20 submit [--priority P] [--deadline SECS] [--max-attempts N]\n\
         \x20        [--policies p1,p2,...] [--workloads A,B|random:SEED:THREADS:INTENSITY]\n\
         \x20        [--seeds 0,1,...] [--cycles C] [--topology T] [--telemetry] [--watch]\n\
         \x20 soak   [--seed S] [--rounds R] [--cycles C] [--priority P] [--watch]\n\
         \x20 status [ID]\n\
         \x20 watch  ID\n\
         \x20 cancel ID\n\
         \x20 drain\n\
         \x20 metrics\n\
         submit enqueues a policy × workload × seed sweep grid; soak enqueues a\n\
         continuous fault-injection job (every class must be detected each round).\n\
         --watch streams per-cell results live and exits with the job's outcome.\n\
         status prints the daemon's self-description plus per-job progress;\n\
         metrics prints the daemon's Prometheus-format text exposition."
    );
    std::process::exit(2)
}

fn print_event(event: &Event) {
    match event {
        Event::CellResult {
            policy,
            workload,
            seed,
            ws_bits,
            hs_bits,
            ms_bits,
            resumed,
            ..
        } => println!(
            "cell {policy} × {workload} seed={seed} WS={:.2} maxSD={:.2} HS={:.3}{}",
            f64::from_bits(*ws_bits),
            f64::from_bits(*ms_bits),
            f64::from_bits(*hs_bits),
            if *resumed { " (resumed)" } else { "" },
        ),
        Event::CellFailure { line, .. } => eprintln!("{line}"),
        Event::Telemetry { counters, gauge_bits, .. } => println!(
            "telemetry: {} counter(s), {} gauge(s)",
            counters.len(),
            gauge_bits.len()
        ),
        Event::SoakRound {
            round,
            detected,
            classes,
            ..
        } => println!("soak round {round}: {detected}/{classes} fault classes detected"),
        Event::JobDone { .. } => {}
    }
}

/// Blocks on a job's event stream; exit code reflects its outcome.
fn watch_job(client: &mut Client, id: u64) -> i32 {
    match client.watch(id, print_event) {
        Ok((state, detail)) => {
            eprintln!("job {id}: {} — {detail}", state.as_str());
            i32::from(state != JobState::Done)
        }
        Err(e) => {
            eprintln!("watch failed: {e}");
            1
        }
    }
}

fn parse_workload_ref(s: &str) -> Result<WorkloadRef, String> {
    let Some(rest) = s.strip_prefix("random:") else {
        return Ok(WorkloadRef::Named(s.to_string()));
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let bad = || format!("bad workload `{s}` (want NAME or random:SEED:THREADS:INTENSITY)");
    if parts.len() != 3 {
        return Err(bad());
    }
    let seed: u64 = parts[0].parse().map_err(|_| bad())?;
    let threads: u64 = parts[1].parse().map_err(|_| bad())?;
    let intensity: f64 = parts[2].parse().map_err(|_| bad())?;
    Ok(WorkloadRef::Random {
        seed,
        threads,
        intensity_bits: intensity.to_bits(),
    })
}

fn client_main(args: &[String]) -> i32 {
    let mut socket = PathBuf::from("tcm-serve.sock");
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(path) => socket = PathBuf::from(path),
                None => client_usage(),
            },
            "--help" | "-h" => client_usage(),
            _ => {
                rest.push(arg.clone());
                rest.extend(it.cloned());
                break;
            }
        }
    }
    let Some(command) = rest.first().cloned() else {
        client_usage()
    };
    let args = &rest[1..];
    let mut client = match Client::connect(&socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", socket.display());
            return 1;
        }
    };
    match command.as_str() {
        "submit" | "soak" => {
            let mut spec = JobSpec {
                priority: 1,
                deadline_ms: None,
                max_attempts: 2,
                kind: JobKind::Sweep(SweepSpec {
                    policies: vec![],
                    workloads: vec![WorkloadRef::Named("B".into())],
                    seeds: vec![],
                    horizon: 1_000_000,
                    topology: None,
                    telemetry: false,
                }),
            };
            let mut soak = SoakSpec {
                seed: 0,
                rounds: 10,
                horizon: 200_000,
            };
            let mut watch = false;
            let is_soak = command == "soak";
            let mut sweep = SweepSpec {
                policies: vec![],
                workloads: vec![WorkloadRef::Named("B".into())],
                seeds: vec![],
                horizon: 1_000_000,
                topology: None,
                telemetry: false,
            };
            let mut it = args.iter();
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("missing value for {name}");
                            client_usage()
                        })
                        .clone()
                };
                match arg.as_str() {
                    "--priority" => {
                        spec.priority = value("--priority").parse().unwrap_or_else(|_| client_usage())
                    }
                    "--deadline" => {
                        let secs: f64 =
                            value("--deadline").parse().unwrap_or_else(|_| client_usage());
                        if !secs.is_finite() || secs < 0.0 {
                            client_usage()
                        }
                        spec.deadline_ms = Some((secs * 1000.0) as u64);
                    }
                    "--max-attempts" => {
                        spec.max_attempts = value("--max-attempts")
                            .parse()
                            .unwrap_or_else(|_| client_usage())
                    }
                    "--policies" if !is_soak => {
                        sweep.policies =
                            value("--policies").split(',').map(String::from).collect()
                    }
                    "--workloads" if !is_soak => {
                        sweep.workloads = value("--workloads")
                            .split(',')
                            .map(|w| {
                                parse_workload_ref(w).unwrap_or_else(|e| {
                                    eprintln!("{e}");
                                    client_usage()
                                })
                            })
                            .collect()
                    }
                    "--seeds" if !is_soak => {
                        sweep.seeds = value("--seeds")
                            .split(',')
                            .map(|s| s.parse().unwrap_or_else(|_| client_usage()))
                            .collect()
                    }
                    "--cycles" => {
                        let cycles = value("--cycles").parse().unwrap_or_else(|_| client_usage());
                        sweep.horizon = cycles;
                        soak.horizon = cycles;
                    }
                    "--topology" if !is_soak => sweep.topology = Some(value("--topology")),
                    "--telemetry" if !is_soak => sweep.telemetry = true,
                    "--seed" if is_soak => {
                        soak.seed = value("--seed").parse().unwrap_or_else(|_| client_usage())
                    }
                    "--rounds" if is_soak => {
                        soak.rounds = value("--rounds").parse().unwrap_or_else(|_| client_usage())
                    }
                    "--watch" => watch = true,
                    other => {
                        eprintln!("unknown argument `{other}`");
                        client_usage()
                    }
                }
            }
            spec.kind = if is_soak {
                JobKind::ChaosSoak(soak)
            } else {
                JobKind::Sweep(sweep)
            };
            match client.submit(spec) {
                Ok(id) => {
                    println!("submitted job {id}");
                    if watch {
                        watch_job(&mut client, id)
                    } else {
                        0
                    }
                }
                Err(e) => {
                    eprintln!("submit failed: {e}");
                    1
                }
            }
        }
        "status" => {
            let id = args.first().map(|s| s.parse().unwrap_or_else(|_| client_usage()));
            match client.status_full(id) {
                Ok((jobs, server)) => {
                    if let Some(info) = server {
                        println!(
                            "daemon v{} pid {}  up {}  socket {}  queue {}/{}  \
                             workers {}/{} busy{}",
                            info.version,
                            info.pid,
                            format_uptime(info.uptime_ms),
                            info.socket,
                            info.queue_depth,
                            info.queue_capacity,
                            info.workers_busy,
                            info.workers,
                            if info.draining { "  DRAINING" } else { "" },
                        );
                    }
                    for job in jobs {
                        let progress = job
                            .progress
                            .map(|p| {
                                format!(
                                    "  [{}] {}/{}",
                                    progress_bar(&p, 20),
                                    p.done + p.failed,
                                    p.total
                                )
                            })
                            .unwrap_or_default();
                        println!(
                            "job {:>4}  prio {}  {:<9}{}  {}",
                            job.id,
                            job.priority,
                            job.state.as_str(),
                            progress,
                            job.detail
                        );
                    }
                    0
                }
                Err(e) => {
                    eprintln!("status failed: {e}");
                    1
                }
            }
        }
        "metrics" => match client.metrics() {
            Ok(text) => {
                print!("{text}");
                0
            }
            Err(e) => {
                eprintln!("metrics failed: {e}");
                1
            }
        },
        "watch" => match args.first().and_then(|s| s.parse().ok()) {
            Some(id) => watch_job(&mut client, id),
            None => client_usage(),
        },
        "cancel" => match args.first().and_then(|s| s.parse().ok()) {
            Some(id) => match client.cancel(id) {
                Ok(found) => {
                    println!(
                        "job {id}: {}",
                        if found { "cancelled" } else { "nothing to cancel" }
                    );
                    0
                }
                Err(e) => {
                    eprintln!("cancel failed: {e}");
                    1
                }
            },
            None => client_usage(),
        },
        "drain" => match client.drain() {
            Ok(()) => {
                println!("daemon draining");
                0
            }
            Err(e) => {
                eprintln!("drain failed: {e}");
                1
            }
        },
        other => {
            eprintln!("unknown client command `{other}`");
            client_usage()
        }
    }
}

// ---------------------------------------------------------------------------
// `tcm-run top` — live daemon dashboard. No dependencies: plain ANSI
// escape codes, Unicode block glyphs, and the daemon's own Status /
// Metrics / Watch requests as the only data sources.
// ---------------------------------------------------------------------------

/// Event lines kept in the dashboard's scrollback pane.
const TOP_EVENT_LINES: usize = 8;
/// Sparkline width: throughput samples retained.
const TOP_SPARK_WIDTH: usize = 40;

fn top_usage() -> ! {
    eprintln!(
        "usage: tcm-run top [--socket PATH] [--interval SECS] [--once]\n\
         Live dashboard for a running tcm-serve daemon: queue/worker/WAL panes\n\
         from the Metrics scrape, per-job progress bars from Status, a rolling\n\
         cells/sec sparkline, and streamed events from the newest active job via\n\
         Watch. Redraws in place every --interval seconds (default 1).\n\
         --once prints a single snapshot without ANSI control codes and exits."
    );
    std::process::exit(2)
}

/// `142s` → `2m22s`-style compact uptime.
fn format_uptime(ms: u64) -> String {
    let secs = ms / 1000;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

/// Renders a job's progress as `width` glyphs: `█` done, `▒` failed,
/// `░` still to run. An empty-total job renders all-empty.
fn progress_bar(p: &tcm_proto::JobProgress, width: usize) -> String {
    let total = p.total.max(1);
    let done_w = (p.done.min(total) as usize * width) / total as usize;
    let fail_w = (p.failed.min(total) as usize * width) / total as usize;
    let fail_w = fail_w.min(width - done_w);
    let mut bar = String::with_capacity(width * 3);
    for _ in 0..done_w {
        bar.push('█');
    }
    for _ in 0..fail_w {
        bar.push('▒');
    }
    for _ in done_w + fail_w..width {
        bar.push('░');
    }
    bar
}

/// One-row sparkline over `history` scaled to its own maximum.
fn sparkline(history: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = history.iter().copied().fold(0.0f64, f64::max);
    history
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Parses Prometheus text exposition into `name{labels} → value`,
/// skipping comments; enough for the dashboard's own daemon scrape.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(name.to_string(), v);
            }
        }
    }
    out
}

/// Formats one streamed Watch event as a scrollback line.
fn event_line(id: u64, event: &Event) -> String {
    match event {
        Event::CellResult {
            policy,
            workload,
            seed,
            ws_bits,
            resumed,
            ..
        } => format!(
            "job {id}: cell {policy} × {workload} seed={seed} WS={:.2}{}",
            f64::from_bits(*ws_bits),
            if *resumed { " (resumed)" } else { "" },
        ),
        Event::CellFailure { line, .. } => format!("job {id}: {line}"),
        Event::Telemetry { counters, gauge_bits, .. } => format!(
            "job {id}: telemetry {} counter(s), {} gauge(s)",
            counters.len(),
            gauge_bits.len()
        ),
        Event::SoakRound {
            round,
            detected,
            classes,
            ..
        } => format!("job {id}: soak round {round}: {detected}/{classes} detected"),
        Event::JobDone { state, .. } => format!("job {id}: {}", state.as_str()),
    }
}

/// Keeps one watcher thread subscribed to the newest non-terminal job,
/// feeding its event stream into the shared scrollback. When the
/// watched job finishes (or the stream drops), the slot clears and the
/// next tick re-subscribes to whatever is active then.
fn maybe_spawn_watcher(
    socket: &Path,
    jobs: &[JobStatusInfo],
    events: &Arc<Mutex<VecDeque<String>>>,
    watching: &Arc<Mutex<Option<u64>>>,
) {
    let candidate = jobs
        .iter()
        .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
        .map(|j| j.id)
        .max();
    let Some(id) = candidate else { return };
    {
        let mut slot = watching.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_some() {
            return;
        }
        *slot = Some(id);
    }
    let socket = socket.to_path_buf();
    let events = Arc::clone(events);
    let watching = Arc::clone(watching);
    std::thread::spawn(move || {
        let push = |line: String| {
            let mut q = events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            q.push_back(line);
            while q.len() > TOP_EVENT_LINES {
                q.pop_front();
            }
        };
        if let Ok(mut client) = Client::connect(&socket) {
            if let Ok((state, _)) = client.watch(id, |event| push(event_line(id, event))) {
                push(format!("job {id}: {}", state.as_str()));
            }
        }
        *watching.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    });
}

/// Assembles one dashboard frame from a Status reply, a Metrics scrape
/// and the Watch scrollback. Pure string building — the caller decides
/// whether to wrap it in cursor-home/clear codes.
fn render_top(
    socket: &Path,
    jobs: &[JobStatusInfo],
    server: Option<&ServerInfo>,
    metrics: &BTreeMap<String, f64>,
    history: &[f64],
    events: &[String],
) -> String {
    let g = |k: &str| metrics.get(k).copied().unwrap_or(0.0);
    let by_state = |state: &str| {
        g(&format!("tcm_serve_jobs_completed_total{{state=\"{state}\"}}"))
    };
    let mut s = String::new();
    let _ = writeln!(s, "tcm-serve top — socket {}", socket.display());
    if let Some(info) = server {
        let _ = writeln!(
            s,
            "server   v{} pid {}  up {}{}",
            info.version,
            info.pid,
            format_uptime(info.uptime_ms),
            if info.draining { "  DRAINING" } else { "" },
        );
        let _ = writeln!(
            s,
            "queue    depth {}/{}  high-water {}  workers {}/{} busy  watchers {}",
            info.queue_depth,
            info.queue_capacity,
            g("tcm_serve_queue_high_water"),
            info.workers_busy,
            info.workers,
            g("tcm_serve_watch_subscribers"),
        );
    } else {
        let _ = writeln!(
            s,
            "queue    depth {}/{}  high-water {}  workers {}/{} busy  watchers {}",
            g("tcm_serve_queue_depth"),
            g("tcm_serve_queue_capacity"),
            g("tcm_serve_queue_high_water"),
            g("tcm_serve_workers_busy"),
            g("tcm_serve_workers"),
            g("tcm_serve_watch_subscribers"),
        );
    }
    let _ = writeln!(
        s,
        "wal      appended {} record(s) / {} B  replayed {} job(s)  truncated {} B",
        g("tcm_serve_wal_appended_records_total"),
        g("tcm_serve_wal_appended_bytes_total"),
        g("tcm_serve_wal_replayed_jobs_total"),
        g("tcm_serve_wal_truncated_bytes_total"),
    );
    let _ = writeln!(
        s,
        "jobs     submitted {}  done {}  failed {}  cancelled {}  retries {}  dropped-ev {}",
        g("tcm_serve_jobs_submitted_total"),
        by_state("done"),
        by_state("failed"),
        by_state("cancelled"),
        g("tcm_serve_cell_retries_total"),
        g("tcm_trace_events_dropped_total"),
    );
    let rate = history.last().copied().unwrap_or(0.0);
    let _ = writeln!(
        s,
        "cells    done {}  resumed {}  failures {}  {:>7.1} cells/s  {}",
        g("tcm_serve_cells_completed_total"),
        g("tcm_serve_cells_resumed_total"),
        g("tcm_serve_cell_failures_total"),
        rate,
        sparkline(history),
    );
    s.push('\n');
    if jobs.is_empty() {
        s.push_str("(no jobs)\n");
    }
    for job in jobs {
        let progress = job
            .progress
            .map(|p| {
                format!(
                    "  [{}] {:>4}/{:<4}",
                    progress_bar(&p, 20),
                    p.done + p.failed,
                    p.total
                )
            })
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "job {:>4}  prio {}  {:<9}{}  {}",
            job.id,
            job.priority,
            job.state.as_str(),
            progress,
            job.detail
        );
    }
    if !events.is_empty() {
        s.push('\n');
        for line in events {
            let _ = writeln!(s, "  {line}");
        }
    }
    s
}

fn top_main(args: &[String]) -> i32 {
    let mut socket = PathBuf::from("tcm-serve.sock");
    let mut interval = Duration::from_secs(1);
    let mut once = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    top_usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(value("--socket")),
            "--interval" => {
                let secs: f64 = value("--interval").parse().unwrap_or_else(|_| top_usage());
                if !secs.is_finite() || secs <= 0.0 {
                    top_usage()
                }
                interval = Duration::from_secs_f64(secs);
            }
            "--once" => once = true,
            "--help" | "-h" => top_usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                top_usage()
            }
        }
    }
    let mut client = match Client::connect(&socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", socket.display());
            return 1;
        }
    };
    let events: Arc<Mutex<VecDeque<String>>> = Arc::new(Mutex::new(VecDeque::new()));
    let watching: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
    let mut history: VecDeque<f64> = VecDeque::new();
    let mut last: Option<(Instant, f64)> = None;
    loop {
        let (jobs, server) = match client.status_full(None) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("status failed: {e}");
                return 1;
            }
        };
        let text = match client.metrics() {
            Ok(text) => text,
            Err(e) => {
                eprintln!("metrics failed: {e}");
                return 1;
            }
        };
        let metrics = parse_exposition(&text);
        let cells = metrics
            .get("tcm_serve_cells_completed_total")
            .copied()
            .unwrap_or(0.0);
        let now = Instant::now();
        if let Some((t0, c0)) = last {
            let dt = now.duration_since(t0).as_secs_f64();
            if dt > 0.0 {
                history.push_back(((cells - c0) / dt).max(0.0));
                while history.len() > TOP_SPARK_WIDTH {
                    history.pop_front();
                }
            }
        }
        last = Some((now, cells));
        if !once {
            maybe_spawn_watcher(&socket, &jobs, &events, &watching);
        }
        let event_lines: Vec<String> = events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect();
        let frame = render_top(
            &socket,
            &jobs,
            server.as_ref(),
            &metrics,
            history.make_contiguous(),
            &event_lines,
        );
        if once {
            print!("{frame}");
            return 0;
        }
        // Home + clear-to-end redraws in place without flicker.
        print!("\x1b[H\x1b[J{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: tcm-run [--threads N] [--intensity F] [--seed S] [--cycles C]\n\
         \x20              [--topology N|CxK|a+b+...] [--intra-hosts H]\n\
         \x20              [--policies p1,p2,...] [--workload A|B|C|D] [--workers W] [--json]\n\
         \x20              [--verify] [--checkpoint FILE] [--resume FILE]\n\
         \x20              [--cell-deadline SECS] [--bench-json FILE] [--chaos-smoke]\n\
         \x20              [--chaos-empty] [--trace FILE] [--trace-format jsonl|chrome]\n\
         \x20              [--metrics-json FILE]\n\
         policies: fcfs fr-fcfs stfm par-bs atlas fqm tcm (default: all but fcfs/fqm)\n\
         --topology picks the memory-system shape: `4` = one controller with 4\n\
         \x20          channels (flat default), `2x2` = 2 controllers x 2 channels,\n\
         \x20          `3+1` = asymmetric per-controller channel counts\n\
         --intra-hosts shards a multi-controller cell over H host threads\n\
         \x20          (bit-identical results; wall-clock only)\n\
         --verify enables the DRAM protocol invariant checker (observation-only)\n\
         --checkpoint records completed sweep cells to FILE (JSONL, atomic updates)\n\
         --resume restores completed cells from FILE, runs the rest, keeps FILE updated\n\
         --cell-deadline cancels (and retries once) any cell exceeding SECS wall-clock\n\
         --bench-json times the fixed paper-lineup sweep and writes the record to FILE\n\
         --chaos-smoke runs the fault-injection smoke campaign and exits (a\n\
         \x20          multi-controller --topology runs it on MultiSystem, honouring\n\
         \x20          --intra-hosts and covering the coordination fault classes)\n\
         --chaos-empty installs an empty fault plan on every run: detectors armed,\n\
         \x20          zero faults (benches use it to prove the inert layer is free)\n\
         --trace writes the telemetry event log to FILE (jsonl by default; chrome is\n\
         \x20       a Chrome-trace array loadable at https://ui.perfetto.dev)\n\
         --metrics-json writes every cell's final metrics registry to FILE\n\
         subcommands: `tcm-run serve` starts the sweep daemon, `tcm-run client`\n\
         \x20       talks to it, `tcm-run top` is a live daemon dashboard (see\n\
         \x20       `tcm-run serve --help` / `client --help` / `top --help`)"
    );
    std::process::exit(2)
}

fn main() {
    {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.first().map(String::as_str) {
            Some("serve") => std::process::exit(serve_main(&args[1..])),
            Some("client") => std::process::exit(client_main(&args[1..])),
            Some("top") => std::process::exit(top_main(&args[1..])),
            _ => {}
        }
    }
    let mut threads = 24usize;
    let mut intensity = 0.5f64;
    let mut seed = 0u64;
    let mut cycles = 5_000_000u64;
    let mut policies: Option<Vec<String>> = None;
    let mut named_workload: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut json = false;
    let mut verify = false;
    let mut bench_json: Option<String> = None;
    let mut cycles_given = false;
    let mut checkpoint: Option<String> = None;
    let mut cell_deadline: Option<Duration> = None;
    let mut chaos_smoke = false;
    let mut chaos_empty = false;
    let mut trace: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut metrics_json: Option<String> = None;
    let mut topology: Option<Topology> = None;
    let mut intra_hosts = 1usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--threads" => threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--intensity" => intensity = value("--intensity").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--cycles" => {
                cycles = value("--cycles").parse().unwrap_or_else(|_| usage());
                cycles_given = true;
            }
            "--policies" => {
                policies = Some(value("--policies").split(',').map(String::from).collect())
            }
            "--workload" => named_workload = Some(value("--workload")),
            "--workers" => workers = Some(value("--workers").parse().unwrap_or_else(|_| usage())),
            "--json" => json = true,
            "--verify" => verify = true,
            "--bench-json" => bench_json = Some(value("--bench-json")),
            "--checkpoint" => checkpoint = Some(value("--checkpoint")),
            "--resume" => checkpoint = Some(value("--resume")),
            "--cell-deadline" => {
                let secs: f64 = value("--cell-deadline").parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs < 0.0 {
                    eprintln!("--cell-deadline must be a non-negative number of seconds");
                    usage()
                }
                cell_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--chaos-smoke" => chaos_smoke = true,
            "--chaos-empty" => chaos_empty = true,
            "--trace" => trace = Some(value("--trace")),
            "--trace-format" => {
                trace_format = match value("--trace-format").as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        eprintln!("unknown trace format `{other}` (expected jsonl or chrome)");
                        usage()
                    }
                }
            }
            "--metrics-json" => metrics_json = Some(value("--metrics-json")),
            "--topology" => {
                topology = Some(Topology::parse(&value("--topology")).unwrap_or_else(|err| {
                    eprintln!("{err}");
                    usage()
                }))
            }
            "--intra-hosts" => {
                intra_hosts = value("--intra-hosts").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }

    if chaos_smoke {
        std::process::exit(run_chaos_smoke(topology.as_ref(), intra_hosts));
    }

    if let Some(path) = bench_json {
        // Benchmark mode uses a fixed sweep; default to a shorter horizon
        // than the exploratory default unless --cycles was given.
        let bench_cycles = if cycles_given { cycles } else { 2_000_000 };
        std::process::exit(run_bench(
            &path,
            bench_cycles,
            workers.unwrap_or(1),
            topology.as_ref(),
            intra_hosts,
            verify,
            chaos_empty,
        ));
    }

    let workload: WorkloadSpec = match named_workload.as_deref() {
        Some(name) => table5_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown workload `{name}` (expected A, B, C or D)");
                usage()
            }),
        None => random_workload(seed, threads, intensity),
    };
    let threads = workload.threads.len();

    let kinds: Vec<PolicyKind> = match policies {
        Some(names) => names
            .iter()
            .map(|name| parse_policy(name, threads).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            }))
            .collect(),
        None => PolicyKind::paper_lineup(threads),
    };

    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = threads;
    if let Some(topology) = topology {
        cfg.topology = topology;
    }
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(cycles)
            .verify(verify)
            .intra_hosts(intra_hosts)
            .chaos(chaos_empty.then(FaultPlan::none))
            .cell_deadline(cell_deadline)
            .telemetry(
                (trace.is_some() || metrics_json.is_some()).then(TelemetryConfig::default),
            )
            .build(),
    );
    let mut sweep = session.sweep().policies(kinds).workloads([workload.clone()]);
    if let Some(path) = checkpoint {
        sweep = sweep.checkpoint(path);
    }
    let result = match workers {
        Some(w) => sweep.run_parallel(w),
        None => sweep.run_auto(),
    };

    let mut output = Output {
        workload: workload.name.clone(),
        threads,
        cycles,
        benchmarks: workload.threads.iter().map(|p| p.name.clone()).collect(),
        results: Vec::new(),
    };
    if !json {
        println!("{workload}");
        println!("{:>8} | {:>8} {:>8} {:>8}", "policy", "WS", "maxSD", "HS");
    }
    for cell in result.cells() {
        let r = &cell.result;
        if !json {
            println!(
                "{:>8} | {:8.2} {:8.2} {:8.3}",
                r.policy,
                r.metrics.weighted_speedup,
                r.metrics.max_slowdown,
                r.metrics.harmonic_speedup
            );
        }
        output.results.push(PolicyOutput {
            policy: r.policy.clone(),
            weighted_speedup: r.metrics.weighted_speedup,
            harmonic_speedup: r.metrics.harmonic_speedup,
            max_slowdown: r.metrics.max_slowdown,
            slowdowns: r.slowdowns.clone(),
        });
    }
    if json {
        println!("{}", output.to_json());
    } else {
        print_cluster_summary(result.cells());
        println!("{}", result.stats().throughput_line());
    }
    if let Some(path) = &trace {
        let body = render_trace(trace_format, result.cells());
        if let Err(err) = std::fs::write(path, body) {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        }
        let label = match trace_format {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Chrome => "chrome (open at https://ui.perfetto.dev)",
        };
        eprintln!("trace [{label}] -> {path}");
    }
    if let Some(path) = &metrics_json {
        if let Err(err) = std::fs::write(path, render_metrics(result.cells())) {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("metrics -> {path}");
    }
    // A full trace ring silently truncates the event log; that must not
    // pass as a clean run. (The daemon surfaces the same signal as the
    // `tcm_trace_events_dropped_total` metric.)
    let dropped: u64 = result
        .cells()
        .iter()
        .filter_map(|c| c.result.telemetry.as_ref())
        .map(|s| s.dropped)
        .sum();
    if dropped > 0 {
        eprintln!(
            "WARNING: telemetry ring buffer overflowed — {dropped} event(s) dropped; \
             the trace is INCOMPLETE (metrics and results are unaffected). \
             Raise the telemetry capacity or shorten the run to capture everything."
        );
    }
    if result.stats().resumed > 0 {
        eprintln!(
            "resumed {} completed cell(s) from the checkpoint",
            result.stats().resumed
        );
    }
    if !result.is_complete() {
        eprintln!("{} cell(s) FAILED:", result.failures().len());
        for failure in result.failures() {
            eprintln!("  {failure}");
        }
        // All-timeout failures are transient by construction: exit 3 so
        // callers know `--resume` with a longer deadline finishes the
        // grid. Any deterministic failure keeps the hard exit 1.
        let only_timeouts = result
            .failures()
            .iter()
            .all(|f| matches!(f.kind, CellFailureKind::Timeout(_)));
        std::process::exit(if only_timeouts { 3 } else { 1 });
    }
}
