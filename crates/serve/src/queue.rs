//! The daemon's bounded priority job queue.
//!
//! Ordering is **total and stable**: jobs are keyed by
//! `(priority, submission sequence)`, so a lower priority number always
//! pops first and jobs within one priority class pop in FIFO submission
//! order — regardless of interleaved submits and cancels. The sequence
//! number is assigned once at first admission and survives daemon
//! restarts via the WAL, so a recovered queue replays in the exact
//! pre-crash order.
//!
//! Capacity is a hard bound: a full queue rejects with the typed
//! [`QueueFull`] error, which the server surfaces to clients as the
//! protocol's backpressure response rather than blocking or dropping.

use std::collections::{BTreeMap, HashMap};

/// Typed backpressure: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Bounded priority queue of job ids (see the module docs for the
/// ordering contract).
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    /// `(priority, seq) -> id`; `BTreeMap` iteration order *is* the
    /// pop order, which makes the ordering contract auditable.
    entries: BTreeMap<(u8, u64), u64>,
    /// Reverse index for O(log n) cancellation by id.
    by_id: HashMap<u64, (u8, u64)>,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            by_id: HashMap::new(),
        }
    }

    /// Admits a job. `seq` must be unique per admission (the server
    /// uses a monotone counter persisted through the WAL).
    pub fn push(&mut self, id: u64, priority: u8, seq: u64) -> Result<(), QueueFull> {
        if self.entries.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        debug_assert!(!self.by_id.contains_key(&id), "job {id} queued twice");
        self.entries.insert((priority, seq), id);
        self.by_id.insert(id, (priority, seq));
        Ok(())
    }

    /// Removes and returns the most urgent job: lowest priority number,
    /// then earliest submission.
    pub fn pop(&mut self) -> Option<u64> {
        let (key, id) = self.entries.pop_first()?;
        self.by_id.remove(&id);
        debug_assert_eq!(self.by_id.len(), self.entries.len());
        let _ = key;
        Some(id)
    }

    /// Cancels a queued job; `false` when it is not queued (unknown,
    /// already popped, or already cancelled).
    pub fn cancel(&mut self, id: u64) -> bool {
        match self.by_id.remove(&id) {
            Some(key) => {
                self.entries.remove(&key);
                true
            }
            None => false,
        }
    }

    /// Whether the job is currently queued.
    pub fn contains(&self, id: u64) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Queued job count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued ids in pop order (for status reports).
    pub fn iter_in_order(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.values().copied()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = JobQueue::new(8);
        q.push(1, 2, 0).unwrap();
        q.push(2, 0, 1).unwrap();
        q.push(3, 2, 2).unwrap();
        q.push(4, 1, 3).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, [2, 4, 1, 3]);
    }

    #[test]
    fn capacity_is_a_hard_typed_bound() {
        let mut q = JobQueue::new(2);
        q.push(1, 0, 0).unwrap();
        q.push(2, 0, 1).unwrap();
        assert_eq!(q.push(3, 0, 2), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        q.push(3, 0, 2).unwrap();
    }

    #[test]
    fn cancel_removes_exactly_the_named_job() {
        let mut q = JobQueue::new(8);
        q.push(1, 0, 0).unwrap();
        q.push(2, 0, 1).unwrap();
        assert!(q.cancel(1));
        assert!(!q.cancel(1), "second cancel is a no-op");
        assert!(!q.cancel(99), "unknown id is a no-op");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
