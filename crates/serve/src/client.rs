//! Blocking client for the `tcm-serve` daemon.
//!
//! One connection carries a sequence of request/response exchanges;
//! [`Client::watch`] switches the connection into streaming mode until
//! the watched job's `JobDone` event arrives.

use std::io::{self, BufReader};
use std::os::unix::net::UnixStream;
use std::path::Path;
use tcm_proto::{read_frame, write_frame, Event, JobSpec, JobState, Request, Response, ServerInfo};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon's Unix-domain socket.
    pub fn connect(socket: impl AsRef<Path>) -> io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// One request/response exchange.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| bad("daemon closed the connection mid-exchange"))?;
        Response::decode(&frame).map_err(|e| bad(e.to_string()))
    }

    /// Submits a job; returns its id, or the daemon's typed refusal
    /// (`QueueFull` backpressure, `Draining`) as an error message.
    pub fn submit(&mut self, spec: JobSpec) -> io::Result<u64> {
        match self.request(&Request::SubmitJob(spec))? {
            Response::Submitted { id } => Ok(id),
            Response::QueueFull { capacity } => Err(bad(format!(
                "queue full (capacity {capacity}); retry after a job finishes"
            ))),
            Response::Draining => Err(bad("daemon is draining; not admitting jobs")),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Fetches status for one job (`Some(id)`) or all jobs (`None`).
    pub fn status(&mut self, id: Option<u64>) -> io::Result<Vec<tcm_proto::JobStatusInfo>> {
        self.status_full(id).map(|(jobs, _)| jobs)
    }

    /// Fetches job status plus the daemon's [`ServerInfo`] block (which
    /// is `None` when talking to a pre-observability daemon).
    pub fn status_full(
        &mut self,
        id: Option<u64>,
    ) -> io::Result<(Vec<tcm_proto::JobStatusInfo>, Option<ServerInfo>)> {
        match self.request(&Request::JobStatus { id })? {
            Response::Status { jobs, server } => Ok((jobs, server)),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Fetches the daemon's metrics in Prometheus text exposition
    /// format.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Cancels a job; `true` when the daemon found something to cancel.
    pub fn cancel(&mut self, id: u64) -> io::Result<bool> {
        match self.request(&Request::CancelJob { id })? {
            Response::Cancelled { found, .. } => Ok(found),
            Response::Error { message } => Err(bad(message)),
            other => Err(bad(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Asks the daemon to drain (finish in-flight work and exit).
    pub fn drain(&mut self) -> io::Result<()> {
        match self.request(&Request::Drain)? {
            Response::Draining => Ok(()),
            other => Err(bad(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Subscribes to a job's event stream and blocks until its
    /// `JobDone`, feeding every intermediate event (cell results,
    /// failures, telemetry, soak rounds) to `on_event`. Returns the
    /// job's terminal state and detail line.
    ///
    /// Watching an already-finished job yields its terminal state
    /// immediately.
    pub fn watch(
        &mut self,
        id: u64,
        mut on_event: impl FnMut(&Event),
    ) -> io::Result<(JobState, String)> {
        match self.request(&Request::Watch { id })? {
            Response::Status { .. } => {}
            Response::Error { message } => return Err(bad(message)),
            other => return Err(bad(format!("unexpected reply: {other:?}"))),
        }
        loop {
            match self.read_response()? {
                Response::Event(Event::JobDone { state, detail, .. }) => {
                    return Ok((state, detail))
                }
                Response::Event(event) => on_event(&event),
                other => return Err(bad(format!("unexpected frame mid-stream: {other:?}"))),
            }
        }
    }
}
