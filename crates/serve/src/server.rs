//! The sweep daemon: Unix-socket listener, durable priority job queue,
//! bounded worker pool, and the drain/recovery state machine.
//!
//! # Lifecycle
//!
//! ```text
//!            ┌── SubmitJob (WAL `submit`, fsync) ──┐
//!            ▼                                     │
//!  Queued ── worker pop (WAL `start`) ──▶ Running ─┤
//!    │                                     │       │
//!    │ CancelJob (WAL `cancel`)            │       │
//!    ▼                                     ▼       ▼
//!  Cancelled                     Done / Failed (WAL `finish`)
//! ```
//!
//! Jobs without a terminal WAL record — queued *or* mid-run when the
//! process died — are re-admitted on restart in their original
//! `(priority, seq)` order; a re-admitted sweep resumes its per-job
//! cell checkpoint, so the merged grid is bit-identical to an
//! uninterrupted run.
//!
//! # Drain
//!
//! SIGTERM/SIGINT (or a client `Drain` request) flips the drain flag:
//! admission stops (`Draining` replies), idle workers exit, and busy
//! workers finish + checkpoint their in-flight cell but start no
//! further ones. A job interrupted this way keeps its WAL entry open
//! and is re-admitted on the next start. If workers outlive the
//! configured drain deadline, their cancellation tokens fire and
//! in-flight cells abort cooperatively; either way [`Server::run`]
//! returns 0 once the pool has parked.
//!
//! # Retry and quarantine
//!
//! Within a sweep, timed-out cells retry under the engine's
//! deterministic seeded backoff ([`RetryPolicy`]) up to the job's
//! `max_attempts`. If retryable failures survive a full pass, the job
//! gets exactly one re-admission pass (resuming the checkpoint, so only
//! failed cells re-run); cells that fail again are quarantined and the
//! job reports `Failed`, naming them.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use tcm_chaos::{Detector, FaultKind, FaultPlan, FaultSpec};
use tcm_core::TcmParams;
use tcm_proto::{
    read_frame, write_frame, Event, JobKind, JobProgress, JobSpec, JobState, JobStatusInfo,
    Request, Response, ServerInfo, SoakSpec, SweepSpec,
};
use tcm_sim::{PolicyKind, RetryPolicy, RunConfig, Session, SweepResult, System};
use tcm_telemetry::TelemetryConfig;
use tcm_types::{CancelToken, SimError, SystemConfig};
use tcm_workload::random_workload;

use crate::job::{render_result, resolve_sweep, write_durable, ResolvedSweep};
use crate::log::{slog, Level};
use crate::metrics::{DaemonMetrics, LiveGauges};
use crate::queue::JobQueue;
use crate::signal;
use crate::wal::Wal;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path to listen on (replaced if stale).
    pub socket: PathBuf,
    /// Directory for the WAL, per-job checkpoints, and result files.
    pub state_dir: PathBuf,
    /// Worker-pool size (jobs run concurrently; cells within one job
    /// run serially so per-job checkpoints stay linear).
    pub workers: usize,
    /// Queue admission bound; a full queue answers `QueueFull`.
    pub queue_capacity: usize,
    /// How long a drain may take before in-flight cells are aborted.
    pub drain_deadline: Duration,
    /// When set, the Prometheus exposition is atomically republished to
    /// this path about once per second (socketless scraping).
    pub metrics_file: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("tcm-serve.sock"),
            state_dir: PathBuf::from("tcm-serve-state"),
            workers: 2,
            queue_capacity: 64,
            drain_deadline: Duration::from_secs(10),
            metrics_file: None,
        }
    }
}

/// One job's in-memory record.
#[derive(Debug, Clone)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    detail: String,
    /// Live work-unit counts, populated once a worker starts the job
    /// (sweep cells, or soak rounds mapped onto the same shape).
    progress: Option<JobProgress>,
}

/// State guarded by the main mutex. Lock order everywhere:
/// `inner` → `wal` → `subscribers` → per-stream mutex (any prefix or
/// suffix is fine; never reversed). Stream writes under these locks are
/// bounded by [`WRITE_TIMEOUT`], so a stalled client cannot wedge them.
struct Inner {
    queue: JobQueue,
    jobs: BTreeMap<u64, JobRecord>,
    /// Cancellation token of every running job.
    active: HashMap<u64, CancelToken>,
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
    wal: Mutex<Wal>,
    /// Server-local drain flag; doubles as every sweep's pause flag.
    /// The process-wide signal flag ([`signal::drain_requested`]) is
    /// polled separately so in-process tests never cross-talk.
    draining: Arc<AtomicBool>,
    subscribers: Mutex<HashMap<u64, Vec<Arc<Mutex<UnixStream>>>>>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    state_dir: PathBuf,
    /// Metric accumulator — a leaf lock, composable anywhere in the
    /// order above.
    metrics: DaemonMetrics,
    /// The socket path and pool size, frozen at startup for
    /// [`ServerInfo`] reporting.
    socket: PathBuf,
    workers_total: usize,
}

/// Recovers a poisoned lock: all guarded state here is kept consistent
/// by construction (no partial updates survive a panic point), so
/// continuing is strictly better than wedging the daemon.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The daemon. Construct with [`Server::new`] (which replays the WAL
/// and binds the socket), then call [`Server::run`].
pub struct Server {
    config: ServerConfig,
    shared: Arc<Shared>,
    listener: UnixListener,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Replays the WAL in `state_dir`, re-admits unfinished jobs, and
    /// binds the listening socket (replacing a stale socket file).
    pub fn new(config: ServerConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.state_dir)?;
        let (wal, replayed) = Wal::open(config.state_dir.join("wal.jsonl"))?;
        let next_id = replayed.iter().map(|j| j.id + 1).max().unwrap_or(1);
        let next_seq = replayed.iter().map(|j| j.seq + 1).max().unwrap_or(0);
        let unfinished = replayed.iter().filter(|j| j.terminal.is_none()).count();
        // Replayed jobs are never bounced for capacity: they were
        // admitted (and acknowledged) before the restart.
        let mut queue = JobQueue::new(config.queue_capacity.max(unfinished));
        let mut jobs = BTreeMap::new();
        for job in &replayed {
            let (state, detail) = match job.terminal {
                Some(state) => (state, "recovered from WAL".to_string()),
                None if job.started => (
                    JobState::Queued,
                    "re-admitted after restart; resumes its checkpoint".to_string(),
                ),
                None => (JobState::Queued, "re-admitted after restart".to_string()),
            };
            if state == JobState::Queued {
                let _ = queue.push(job.id, job.spec.priority, job.seq);
            }
            jobs.insert(
                job.id,
                JobRecord {
                    spec: job.spec.clone(),
                    state,
                    detail,
                    progress: None,
                },
            );
        }
        let metrics = DaemonMetrics::new();
        metrics.raise_queue_high_water(queue.len() as u64);
        if unfinished > 0 {
            metrics.add("tcm_serve_jobs_readmitted_total", unfinished as u64);
            slog!(Level::Info, "server", "re-admitted unfinished jobs from the WAL";
                jobs = unfinished);
        }
        match fs::remove_file(&config.socket) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(&config.socket)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner {
                    queue,
                    jobs,
                    active: HashMap::new(),
                }),
                work: Condvar::new(),
                wal: Mutex::new(wal),
                draining: Arc::new(AtomicBool::new(false)),
                subscribers: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(next_id),
                next_seq: AtomicU64::new(next_seq),
                state_dir: config.state_dir.clone(),
                metrics,
                socket: config.socket.clone(),
                workers_total: config.workers.max(1),
            }),
            config,
            listener,
        })
    }

    /// Serves until a drain is requested (signal or `Drain` frame),
    /// then runs the drain state machine (see the module docs) and
    /// returns the process exit code — 0 for a clean drain.
    pub fn run(self) -> io::Result<i32> {
        let shared = &self.shared;
        let workers: Vec<_> = (0..self.config.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(shared);
                thread::Builder::new()
                    .name(format!("tcm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
            })
            .collect::<io::Result<_>>()?;
        slog!(Level::Info, "server", "listening";
            socket = self.config.socket.display(),
            workers = workers.len(),
            queue_capacity = lock(&shared.inner).queue.capacity(),
            state_dir = self.config.state_dir.display());
        shared.work.notify_all(); // wake workers for re-admitted jobs

        publish_metrics_file(shared, self.config.metrics_file.as_deref());
        let mut last_publish = Instant::now();
        loop {
            if signal::drain_requested() || shared.draining.load(Ordering::SeqCst) {
                break;
            }
            if self.config.metrics_file.is_some()
                && last_publish.elapsed() >= Duration::from_secs(1)
            {
                publish_metrics_file(shared, self.config.metrics_file.as_deref());
                last_publish = Instant::now();
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let sh = Arc::clone(shared);
                    thread::spawn(move || handle_conn(&sh, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    slog!(Level::Error, "server", "accept failed"; error = e);
                    thread::sleep(Duration::from_millis(100));
                }
            }
        }

        shared.draining.store(true, Ordering::SeqCst);
        shared.metrics.add("tcm_serve_drains_total", 1);
        shared.work.notify_all();
        slog!(Level::Info, "server", "draining: admission stopped, in-flight cells finishing";
            deadline_s = format!("{:.1}", self.config.drain_deadline.as_secs_f64()));
        let deadline = Instant::now() + self.config.drain_deadline;
        let mut aborted = false;
        while workers.iter().any(|w| !w.is_finished()) {
            if !aborted && Instant::now() >= deadline {
                aborted = true;
                for token in lock(&shared.inner).active.values() {
                    token.cancel();
                }
                slog!(Level::Warn, "server", "drain deadline hit; aborting in-flight cells");
            }
            thread::sleep(Duration::from_millis(10));
        }
        for worker in workers {
            let _ = worker.join();
        }
        let _ = fs::remove_file(&self.config.socket);
        // Every WAL append is already fsynced; nothing left to flush.
        // One final republish so the scrape file reflects the drain.
        publish_metrics_file(shared, self.config.metrics_file.as_deref());
        slog!(Level::Info, "server", "drained cleanly");
        Ok(0)
    }

    /// The server-local drain flag (for tests and embedders).
    pub fn drain_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.draining)
    }
}

// ---------------------------------------------------------------------
// Metrics scraping
// ---------------------------------------------------------------------

/// Renders the full Prometheus exposition: accumulated counters and
/// histograms plus gauges assembled from live state. Locks are taken
/// sequentially (never nested), so any caller position in the lock
/// order is safe.
fn scrape(shared: &Shared) -> String {
    let (queue_depth, queue_capacity) = {
        let inner = lock(&shared.inner);
        (inner.queue.len() as u64, inner.queue.capacity() as u64)
    };
    let wal = lock(&shared.wal).stats();
    let watch_subscribers = lock(&shared.subscribers)
        .values()
        .map(Vec::len)
        .sum::<usize>() as u64;
    shared.metrics.render(&LiveGauges {
        queue_depth,
        queue_capacity,
        workers: shared.workers_total as u64,
        watch_subscribers,
        draining: shared.draining.load(Ordering::SeqCst),
        wal_appended_records: wal.appended_records,
        wal_appended_bytes: wal.appended_bytes,
        wal_replayed_jobs: wal.replayed_jobs,
        wal_truncated_bytes: wal.truncated_bytes,
    })
}

/// Atomically republishes the exposition to the `--metrics-file` path
/// (temp + fsync + rename, like every other durable publish).
fn publish_metrics_file(shared: &Shared, path: Option<&Path>) {
    let Some(path) = path else { return };
    if let Err(e) = write_durable(path, &scrape(shared)) {
        slog!(Level::Warn, "server", "metrics-file publish failed";
            path = path.display(), error = e);
    }
}

/// The daemon's self-description for `Status` responses. The caller
/// passes its already-held `inner` guard's contents — taking the lock
/// here would deadlock (std mutexes are not reentrant).
fn server_info(shared: &Shared, inner: &Inner) -> ServerInfo {
    ServerInfo {
        version: env!("CARGO_PKG_VERSION").to_string(),
        pid: u64::from(std::process::id()),
        uptime_ms: shared.metrics.uptime_ms(),
        socket: shared.socket.display().to_string(),
        queue_capacity: inner.queue.capacity() as u64,
        queue_depth: inner.queue.len() as u64,
        workers: shared.workers_total as u64,
        workers_busy: shared.metrics.workers_busy(),
        draining: shared.draining.load(Ordering::SeqCst),
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// Upper bound on any single frame write to a client. Event broadcasts
/// happen while the broadcaster holds `inner`; a subscriber that stops
/// reading fills its socket buffer, and without this bound the write
/// would block forever and wedge every thread waiting on `inner`. A
/// timed-out write errs and the slow subscriber is dropped instead.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

fn send(writer: &Arc<Mutex<UnixStream>>, resp: &Response) -> io::Result<()> {
    let mut stream = lock(writer);
    write_frame(&mut *stream, &resp.encode())
}

fn handle_conn(shared: &Arc<Shared>, stream: UnixStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = io::BufReader::new(read_half);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return, // clean EOF or protocol error
        };
        let ok = match Request::decode(&frame) {
            Err(e) => send(
                &writer,
                &Response::Error {
                    message: e.to_string(),
                },
            ),
            Ok(Request::Watch { id }) => handle_watch(shared, &writer, id),
            Ok(req) => send(&writer, &handle_request(shared, req)),
        };
        if ok.is_err() {
            return;
        }
    }
}

/// `Watch` is handled apart from the other requests because it
/// registers the connection as an event subscriber. Holding `inner`
/// across the terminal-state check, the registration, *and the Status
/// reply write* closes the race with a job finishing concurrently:
/// workers broadcast the `JobDone` event while holding `inner` too, so
/// no event can reach the stream ahead of the Status frame. The write
/// under the lock is bounded by [`WRITE_TIMEOUT`].
fn handle_watch(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<UnixStream>>,
    id: u64,
) -> io::Result<()> {
    let inner = lock(&shared.inner);
    let Some(job) = inner.jobs.get(&id) else {
        drop(inner);
        return send(
            writer,
            &Response::Error {
                message: format!("unknown job {id}"),
            },
        );
    };
    let info = status_info(id, job);
    let terminal = matches!(
        job.state,
        JobState::Done | JobState::Failed | JobState::Cancelled
    );
    let done = terminal.then(|| Event::JobDone {
        job: id,
        state: job.state,
        detail: job.detail.clone(),
    });
    if !terminal {
        lock(&shared.subscribers)
            .entry(id)
            .or_default()
            .push(Arc::clone(writer));
        slog!(Level::Debug, "server", "watch subscribed"; job = id);
    }
    let server = Some(server_info(shared, &inner));
    let status_sent = send(writer, &Response::Status { jobs: vec![info], server });
    drop(inner);
    status_sent?;
    match done {
        Some(event) => send(writer, &Response::Event(event)),
        None => Ok(()),
    }
}

fn status_info(id: u64, job: &JobRecord) -> JobStatusInfo {
    JobStatusInfo {
        id,
        priority: job.spec.priority,
        state: job.state,
        detail: job.detail.clone(),
        progress: job.progress,
    }
}

fn validate(spec: &JobSpec) -> Result<(), String> {
    match &spec.kind {
        JobKind::Sweep(sweep) => resolve_sweep(sweep).map(|_| ()),
        JobKind::ChaosSoak(soak) => {
            if soak.rounds == 0 {
                return Err("soak needs at least one round".into());
            }
            if soak.horizon == 0 {
                return Err("soak horizon must be positive".into());
            }
            Ok(())
        }
    }
}

fn handle_request(shared: &Arc<Shared>, req: Request) -> Response {
    match req {
        Request::SubmitJob(spec) => {
            if shared.draining.load(Ordering::SeqCst) || signal::drain_requested() {
                return Response::Draining;
            }
            // Reject malformed specs before they consume a WAL entry.
            if let Err(message) = validate(&spec) {
                return Response::Error { message };
            }
            let mut inner = lock(&shared.inner);
            if inner.queue.len() >= inner.queue.capacity() {
                return Response::QueueFull {
                    capacity: inner.queue.capacity() as u64,
                };
            }
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
            let seq = shared.next_seq.fetch_add(1, Ordering::SeqCst);
            // Durable before acknowledged: the WAL append fsyncs.
            if let Err(e) = lock(&shared.wal).submit(id, seq, &spec) {
                return Response::Error {
                    message: format!("WAL append failed: {e}"),
                };
            }
            let _ = inner.queue.push(id, spec.priority, seq);
            shared.metrics.add("tcm_serve_jobs_submitted_total", 1);
            shared.metrics.raise_queue_high_water(inner.queue.len() as u64);
            let priority = spec.priority;
            inner.jobs.insert(
                id,
                JobRecord {
                    spec,
                    state: JobState::Queued,
                    detail: String::new(),
                    progress: None,
                },
            );
            let depth = inner.queue.len();
            drop(inner);
            shared.work.notify_one();
            slog!(Level::Info, "server", "job admitted";
                job = id, priority = priority, queue_depth = depth);
            Response::Submitted { id }
        }
        Request::JobStatus { id } => {
            let inner = lock(&shared.inner);
            let jobs = match id {
                Some(id) => match inner.jobs.get(&id) {
                    Some(job) => vec![status_info(id, job)],
                    None => {
                        return Response::Error {
                            message: format!("unknown job {id}"),
                        }
                    }
                },
                None => inner
                    .jobs
                    .iter()
                    .map(|(&id, job)| status_info(id, job))
                    .collect(),
            };
            let server = Some(server_info(shared, &inner));
            Response::Status { jobs, server }
        }
        Request::Metrics => Response::Metrics {
            text: scrape(shared),
        },
        Request::CancelJob { id } => {
            let mut inner = lock(&shared.inner);
            let found = if inner.queue.cancel(id) {
                let detail = "cancelled while queued".to_string();
                if let Err(e) = lock(&shared.wal).cancel(id) {
                    slog!(Level::Warn, "server", "WAL cancel failed"; job = id, error = e);
                }
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                    job.detail = detail.clone();
                }
                shared
                    .metrics
                    .add_labeled("tcm_serve_jobs_completed_total", "state", "cancelled", 1);
                slog!(Level::Info, "server", "job cancelled while queued"; job = id);
                let mut subs = lock(&shared.subscribers);
                broadcast_locked(
                    shared,
                    &mut subs,
                    id,
                    Event::JobDone {
                        job: id,
                        state: JobState::Cancelled,
                        detail,
                    },
                );
                subs.remove(&id);
                true
            } else if inner
                .jobs
                .get(&id)
                .is_some_and(|j| j.state == JobState::Running)
            {
                if let Err(e) = lock(&shared.wal).cancel(id) {
                    slog!(Level::Warn, "server", "WAL cancel failed"; job = id, error = e);
                }
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                    job.detail = "cancel requested; aborting in-flight cells".into();
                }
                if let Some(token) = inner.active.get(&id) {
                    token.cancel(); // worker notices and concludes the job
                }
                slog!(Level::Info, "server", "cancel requested for running job"; job = id);
                true
            } else {
                false
            };
            Response::Cancelled { id, found }
        }
        Request::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.work.notify_all();
            Response::Draining
        }
        Request::Watch { .. } => unreachable!("Watch handled by handle_watch"),
    }
}

// ---------------------------------------------------------------------
// Event fan-out
// ---------------------------------------------------------------------

type Subscribers = HashMap<u64, Vec<Arc<Mutex<UnixStream>>>>;

fn broadcast(shared: &Shared, job: u64, event: Event) {
    broadcast_locked(shared, &mut lock(&shared.subscribers), job, event);
}

fn broadcast_locked(shared: &Shared, subs: &mut MutexGuard<'_, Subscribers>, job: u64, event: Event) {
    let Some(streams) = subs.get_mut(&job) else {
        return;
    };
    let payload = Response::Event(event).encode();
    // A dead subscriber (client hung up) or a slow one (write timed out
    // after [`WRITE_TIMEOUT`]) is dropped on write failure.
    let before = streams.len();
    streams.retain(|stream| write_frame(&mut *lock(stream), &payload).is_ok());
    let pruned = before - streams.len();
    if pruned > 0 {
        shared.metrics.add("tcm_serve_watch_pruned_total", pruned as u64);
        slog!(Level::Warn, "server", "pruned dead or stalled watch subscriber(s)";
            job = job, pruned = pruned);
    }
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (id, spec, token) = {
            let mut inner = lock(&shared.inner);
            loop {
                // During a drain, queued jobs stay in the WAL for the
                // next incarnation; only the wait ends.
                if shared.draining.load(Ordering::SeqCst) || signal::drain_requested() {
                    return;
                }
                if let Some(id) = inner.queue.pop() {
                    let Some(job) = inner.jobs.get_mut(&id) else {
                        continue;
                    };
                    job.state = JobState::Running;
                    // The per-job wall-clock deadline starts now.
                    let token = match job.spec.deadline_ms {
                        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
                        None => CancelToken::new(),
                    };
                    let spec = job.spec.clone();
                    inner.active.insert(id, token.clone());
                    if let Err(e) = lock(&shared.wal).start(id) {
                        slog!(Level::Warn, "worker", "WAL start failed"; job = id, error = e);
                    }
                    break (id, spec, token);
                }
                inner = shared
                    .work
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let kind = match &spec.kind {
            JobKind::Sweep(_) => "sweep",
            JobKind::ChaosSoak(_) => "soak",
        };
        slog!(Level::Info, "worker", "job started";
            job = id, kind = kind, priority = spec.priority);
        shared.metrics.set_worker_busy(true);
        run_job(shared, id, &spec, &token, Instant::now());
        shared.metrics.set_worker_busy(false);
    }
}

fn run_job(shared: &Arc<Shared>, id: u64, spec: &JobSpec, token: &CancelToken, started: Instant) {
    // Cell-level panics are already caught inside the sweep engine; this
    // outer guard covers everything else (e.g. checkpoint-file creation
    // failing). An escaped panic would kill the worker thread, leaking
    // its pool slot and leaving the job `Running` forever with no
    // terminal event for watchers — conclude it `Failed` instead.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &spec.kind {
        JobKind::Sweep(sweep) => run_sweep_job(shared, id, spec, sweep, token),
        JobKind::ChaosSoak(soak) => run_soak_job(shared, id, soak, token),
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".into());
        Some((JobState::Failed, format!("job panicked: {msg}")))
    });
    match outcome {
        Some((state, detail)) => conclude(shared, id, state, detail, started),
        // Drained mid-run: the WAL entry stays open so the next
        // incarnation re-admits the job and resumes its checkpoint.
        None => {
            let mut inner = lock(&shared.inner);
            inner.active.remove(&id);
            if let Some(job) = inner.jobs.get_mut(&id) {
                job.detail = "drained mid-run; re-admitted on restart".into();
            }
            drop(inner);
            slog!(Level::Info, "worker", "job drained mid-run; re-admitted on restart";
                job = id);
        }
    }
}

/// Records a terminal state: memory, WAL, then subscribers — all under
/// `inner` so a concurrent `Watch` either sees the terminal state or
/// receives the `JobDone` broadcast, never neither.
fn conclude(shared: &Arc<Shared>, id: u64, state: JobState, detail: String, started: Instant) {
    let mut inner = lock(&shared.inner);
    inner.active.remove(&id);
    // A client cancel that raced the final cells wins: the WAL already
    // holds the `cancel` op.
    let state = if inner.jobs.get(&id).is_some_and(|j| j.state == JobState::Cancelled) {
        JobState::Cancelled
    } else {
        state
    };
    if let Some(job) = inner.jobs.get_mut(&id) {
        job.state = state;
        job.detail = detail.clone();
    }
    if matches!(state, JobState::Done | JobState::Failed) {
        if let Err(e) = lock(&shared.wal).finish(id, state) {
            slog!(Level::Warn, "worker", "WAL finish failed"; job = id, error = e);
        }
    }
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    shared
        .metrics
        .add_labeled("tcm_serve_jobs_completed_total", "state", state.as_str(), 1);
    shared.metrics.observe_job_duration(state, elapsed_ms);
    slog!(Level::Info, "worker", "job concluded";
        job = id, state = state.as_str(), elapsed_ms = elapsed_ms, detail = detail);
    let mut subs = lock(&shared.subscribers);
    broadcast_locked(
        shared,
        &mut subs,
        id,
        Event::JobDone {
            job: id,
            state,
            detail,
        },
    );
    subs.remove(&id);
}

fn job_cancelled(shared: &Shared, id: u64) -> bool {
    lock(&shared.inner)
        .jobs
        .get(&id)
        .is_some_and(|j| j.state == JobState::Cancelled)
}

// ---------------------------------------------------------------------
// Sweep jobs
// ---------------------------------------------------------------------

/// Runs one full sweep pass with streaming hooks. Serial within the
/// job — concurrency comes from the worker pool — so the per-job
/// checkpoint grows linearly.
fn sweep_pass(
    shared: &Arc<Shared>,
    id: u64,
    session: &Session,
    resolved: &ResolvedSweep,
    ckpt: &Path,
    retry: RetryPolicy,
    token: &CancelToken,
) -> SweepResult {
    let seeds = resolved.seeds.clone();
    let cell_shared = Arc::clone(shared);
    let fail_shared = Arc::clone(shared);
    // Each pass rebuilds the progress counts from zero: a checkpoint
    // resume re-fires `on_cell` (with `resumed = true`) for every
    // already-complete cell, so counting from scratch stays exact.
    let total = (resolved.policies.len() * resolved.workloads.len() * resolved.seeds.len()) as u64;
    set_progress(shared, id, |p| *p = JobProgress { total, ..JobProgress::default() });
    session
        .sweep()
        .policies(resolved.policies.iter().cloned())
        .workloads(resolved.workloads.iter().cloned())
        .seeds(resolved.seeds.iter().copied())
        .checkpoint(ckpt)
        .retry(retry)
        .pause_flag(Arc::clone(&shared.draining))
        .cancel_token(token.clone())
        .on_cell(move |cell, resumed| {
            let m = &cell.result.metrics;
            set_progress(&cell_shared, id, |p| {
                p.done += 1;
                p.resumed += u64::from(resumed);
            });
            cell_shared.metrics.add("tcm_serve_cells_completed_total", 1);
            if resumed {
                cell_shared.metrics.add("tcm_serve_cells_resumed_total", 1);
            }
            slog!(Level::Debug, "worker", "cell done";
                job = id,
                cell = format!("{}x{}", cell.result.policy, cell.result.workload),
                seed = seeds.get(cell.seed).copied().unwrap_or(0),
                resumed = u8::from(resumed));
            broadcast(
                &cell_shared,
                id,
                Event::CellResult {
                    job: id,
                    policy: cell.result.policy.clone(),
                    workload: cell.result.workload.clone(),
                    seed: seeds.get(cell.seed).copied().unwrap_or(0),
                    ws_bits: m.weighted_speedup.to_bits(),
                    hs_bits: m.harmonic_speedup.to_bits(),
                    ms_bits: m.max_slowdown.to_bits(),
                    resumed,
                },
            );
            if let Some(snapshot) = &cell.result.telemetry {
                if snapshot.dropped > 0 {
                    cell_shared
                        .metrics
                        .add("tcm_trace_events_dropped_total", snapshot.dropped);
                }
                let summary = snapshot.metrics.summary();
                broadcast(
                    &cell_shared,
                    id,
                    Event::Telemetry {
                        job: id,
                        counters: summary.counters,
                        gauge_bits: summary.gauge_bits,
                    },
                );
            }
        })
        .on_failure(move |err| {
            set_progress(&fail_shared, id, |p| p.failed += 1);
            fail_shared.metrics.add("tcm_serve_cell_failures_total", 1);
            fail_shared
                .metrics
                .add("tcm_serve_cell_retries_total", u64::from(err.attempts.saturating_sub(1)));
            slog!(Level::Warn, "worker", "cell failed";
                job = id,
                cell = format!("{}x{}", err.policy_label, err.workload_name),
                seed = err.seed_value,
                attempts = err.attempts);
            broadcast(
                &fail_shared,
                id,
                Event::CellFailure {
                    job: id,
                    line: err.structured_line(),
                },
            );
        })
        .run()
}

/// Applies `f` to a job's progress counts (creating them zeroed).
fn set_progress(shared: &Shared, id: u64, f: impl FnOnce(&mut JobProgress)) {
    let mut inner = lock(&shared.inner);
    if let Some(job) = inner.jobs.get_mut(&id) {
        f(job.progress.get_or_insert_with(JobProgress::default));
    }
}

fn run_sweep_job(
    shared: &Arc<Shared>,
    id: u64,
    spec: &JobSpec,
    sweep_spec: &SweepSpec,
    token: &CancelToken,
) -> Option<(JobState, String)> {
    let resolved = match resolve_sweep(sweep_spec) {
        Ok(resolved) => resolved,
        Err(e) => return Some((JobState::Failed, e)),
    };
    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = resolved.workloads[0].threads.len();
    if let Some(topology) = resolved.topology.clone() {
        cfg.topology = topology;
    }
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(resolved.horizon)
            .telemetry(resolved.telemetry.then(TelemetryConfig::default))
            .build(),
    );
    let ckpt = shared.state_dir.join(format!("job-{id}.ckpt.jsonl"));
    let retry = RetryPolicy::with_attempts(spec.max_attempts);

    let mut result = sweep_pass(shared, id, &session, &resolved, &ckpt, retry, token);
    if !result.is_complete() {
        if job_cancelled(shared, id) {
            return Some((JobState::Cancelled, "cancelled by client".into()));
        }
        if shared.draining.load(Ordering::SeqCst) || signal::drain_requested() {
            return None;
        }
        if token.is_cancelled() {
            return Some((
                JobState::Failed,
                format!(
                    "job deadline exceeded with {} cell(s) unfinished",
                    result.failures().len() + result.stats().skipped
                ),
            ));
        }
        // Quarantine pass: exactly one re-admission for retryable
        // failures. The checkpoint resume re-runs only the failed
        // cells; completed cells replay bit-identically.
        if result.failures().iter().any(|f| f.kind.is_retryable()) {
            shared.metrics.add("tcm_serve_quarantine_passes_total", 1);
            slog!(Level::Info, "worker", "starting quarantine pass for retryable failures";
                job = id, failures = result.failures().len());
            result = sweep_pass(shared, id, &session, &resolved, &ckpt, retry, token);
            if !result.is_complete() {
                if job_cancelled(shared, id) {
                    return Some((JobState::Cancelled, "cancelled by client".into()));
                }
                if shared.draining.load(Ordering::SeqCst) || signal::drain_requested() {
                    return None;
                }
            }
        }
    }

    if result.is_complete() {
        let path = shared.state_dir.join(format!("job-{id}.result.json"));
        if let Err(e) = write_durable(&path, &render_result(&result)) {
            return Some((
                JobState::Failed,
                format!("result write failed: {e}"),
            ));
        }
        Some((
            JobState::Done,
            format!(
                "{} cell(s) -> {}",
                result.cells().len(),
                path.display()
            ),
        ))
    } else {
        let quarantined: Vec<String> = result
            .failures()
            .iter()
            .map(|f| format!("{}×{}@{}", f.policy_label, f.workload_name, f.seed_value))
            .collect();
        Some((
            JobState::Failed,
            format!(
                "{} cell(s) quarantined after repeated failure: {}",
                quarantined.len(),
                quarantined.join(", ")
            ),
        ))
    }
}

// ---------------------------------------------------------------------
// Chaos-soak jobs
// ---------------------------------------------------------------------

/// One soak round: inject every non-coordination fault class into a
/// fixed-seed flat machine and count the ones caught by exactly their
/// mapped detector. Mirrors `tcm-run --chaos-smoke`, but round-seeded
/// so a long soak walks fresh workloads.
fn soak_round(seed: u64, horizon: u64) -> (u32, u32) {
    let threads = 4;
    let fault_at = (horizon / 10).max(1);
    let Ok(cfg) = SystemConfig::builder()
        .num_threads(threads)
        .num_channels(1)
        .build()
    else {
        return (0, 1);
    };
    let workload = random_workload(seed, threads, 1.0);
    let tcm = PolicyKind::Tcm(TcmParams {
        quantum: 50_000,
        ..TcmParams::paper_default(threads)
    });
    let (mut detected, mut classes) = (0u32, 0u32);
    for kind in FaultKind::ALL {
        if kind.is_coordination_fault() {
            continue; // needs a meta-controller; the smoke leg covers it
        }
        classes += 1;
        let policy = match kind.detector() {
            Detector::Degradation => &tcm,
            _ => &PolicyKind::FrFcfs,
        };
        let mut sys = System::new(&cfg, &workload, policy.build(threads, &cfg), 0);
        sys.install_chaos(&FaultPlan::none().with_fault(FaultSpec::new(kind, fault_at).on_thread(1)));
        let caught = match (kind.detector(), sys.try_run(horizon)) {
            (Detector::Invariant(expected), Err(SimError::InvariantViolation(v))) => {
                v.invariant == expected
            }
            (Detector::Stall, Err(SimError::Stalled(_))) => true,
            (Detector::Degradation, Ok(_)) => !sys.degradation_events().is_empty(),
            _ => false,
        };
        if caught {
            detected += 1;
        }
    }
    (detected, classes)
}

fn run_soak_job(
    shared: &Arc<Shared>,
    id: u64,
    spec: &SoakSpec,
    token: &CancelToken,
) -> Option<(JobState, String)> {
    set_progress(shared, id, |p| {
        *p = JobProgress {
            total: u64::from(spec.rounds),
            ..JobProgress::default()
        }
    });
    for round in 0..spec.rounds {
        // Soak rounds are stateless, so a drained soak simply restarts
        // from round 0 after recovery (documented in DESIGN.md §11).
        if shared.draining.load(Ordering::SeqCst) || signal::drain_requested() {
            return None;
        }
        if job_cancelled(shared, id) {
            return Some((JobState::Cancelled, "cancelled by client".into()));
        }
        if token.is_cancelled() {
            return Some((
                JobState::Failed,
                format!("job deadline exceeded at round {round}/{}", spec.rounds),
            ));
        }
        let (detected, classes) = soak_round(spec.seed ^ u64::from(round), spec.horizon);
        shared.metrics.add("tcm_serve_soak_rounds_total", 1);
        set_progress(shared, id, |p| {
            if detected < classes {
                p.failed += 1;
            } else {
                p.done += 1;
            }
        });
        slog!(Level::Debug, "worker", "soak round finished";
            job = id, round = round, detected = detected, classes = classes);
        broadcast(
            shared,
            id,
            Event::SoakRound {
                job: id,
                round,
                detected,
                classes,
            },
        );
        if detected < classes {
            return Some((
                JobState::Failed,
                format!("round {round}: only {detected}/{classes} fault classes detected"),
            ));
        }
    }
    Some((
        JobState::Done,
        format!("{} round(s), every fault class detected", spec.rounds),
    ))
}
