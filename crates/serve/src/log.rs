//! Leveled structured logging for the daemon — no dependencies, one
//! line per record, machine-parsable in both output shapes.
//!
//! Text format (the default):
//!
//! ```text
//! ts=1754700000.123 level=info target=server msg="listening" socket=/run/tcm.sock workers=2
//! ```
//!
//! `key=value` fields follow the message; values containing spaces,
//! quotes or `=` are double-quoted with `\\`/`\"`/`\n` escapes, so the
//! line grammar is `field (" " field)*` with unambiguous tokenization.
//! With `--log-json` each record is instead one JSON object per line
//! (`{"ts":…,"level":"…","target":"…","msg":"…",…}`), all values as
//! strings.
//!
//! The logger is process-global (the daemon is the only writer to its
//! stderr) and levels filter at the callsite: records below the
//! configured level never format their fields.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Record severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-cell and per-frame detail.
    Debug = 0,
    /// Lifecycle events (startup, job transitions, drain).
    Info = 1,
    /// Recoverable trouble (pruned subscriber, WAL op failure).
    Warn = 2,
    /// Trouble the daemon could not paper over.
    Error = 3,
}

impl Level {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a `--log-level` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            other => return Err(format!("unknown log level `{other}` (debug|info|warn|error)")),
        })
    }
}

static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

/// Configures the process-global logger (idempotent; later wins).
pub fn init(min_level: Level, json: bool) {
    MIN_LEVEL.store(min_level as u8, Ordering::Relaxed);
    JSON.store(json, Ordering::Relaxed);
}

/// Whether a record at `level` would be emitted — callers use this to
/// skip field formatting entirely below the threshold.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
}

/// Quotes a text-format value when it contains whitespace, quotes, `=`
/// or is empty; bare tokens pass through verbatim.
fn push_text_value(out: &mut String, value: &str) {
    let bare = !value.is_empty()
        && value
            .chars()
            .all(|c| !c.is_whitespace() && c != '"' && c != '=' && c != '\\');
    if bare {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one record. Prefer the [`slog!`](crate::slog) macro, which
/// formats fields lazily behind an [`enabled`] check.
pub fn write(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    if !enabled(level) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = String::with_capacity(96);
    if JSON.load(Ordering::Relaxed) {
        line.push_str(&format!(
            "{{\"ts\":{}.{:03},\"level\":\"{}\",\"target\":",
            ts.as_secs(),
            ts.subsec_millis(),
            level.as_str()
        ));
        tcm_proto::json::write_str(&mut line, target);
        line.push_str(",\"msg\":");
        tcm_proto::json::write_str(&mut line, msg);
        for (key, value) in fields {
            line.push(',');
            tcm_proto::json::write_str(&mut line, key);
            line.push(':');
            tcm_proto::json::write_str(&mut line, value);
        }
        line.push('}');
    } else {
        line.push_str(&format!(
            "ts={}.{:03} level={} target={} msg=",
            ts.as_secs(),
            ts.subsec_millis(),
            level.as_str(),
            target
        ));
        push_text_value(&mut line, msg);
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            push_text_value(&mut line, value);
        }
    }
    line.push('\n');
    // One write per record keeps concurrent workers' lines whole.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Emits one structured record: `slog!(Level::Info, "server",
/// "listening"; socket = path.display(), workers = 2)`. Field values
/// take anything `ToString`; they are only formatted when the level is
/// enabled.
macro_rules! slog {
    ($level:expr, $target:expr, $msg:expr $(; $($key:ident = $value:expr),+ $(,)?)?) => {
        if $crate::log::enabled($level) {
            $crate::log::write(
                $level,
                $target,
                &$msg,
                &[$($((stringify!($key), $value.to_string())),+)?],
            );
        }
    };
}
pub(crate) use slog;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("warn"), Ok(Level::Warn));
        assert!(Level::parse("loud").is_err());
        assert_eq!(Level::Error.as_str(), "error");
    }

    #[test]
    fn text_values_quote_only_when_needed() {
        let mut out = String::new();
        push_text_value(&mut out, "plain-token_42");
        assert_eq!(out, "plain-token_42");
        let mut out = String::new();
        push_text_value(&mut out, "two words \"x\"\nnext");
        assert_eq!(out, "\"two words \\\"x\\\"\\nnext\"");
        let mut out = String::new();
        push_text_value(&mut out, "");
        assert_eq!(out, "\"\"");
    }
}
