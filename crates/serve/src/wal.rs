//! The daemon's write-ahead job log (schema `tcm-serve-wal-v1`).
//!
//! An append-only JSONL file in the state directory. The first line
//! names the schema; each further line is one operation:
//!
//! ```text
//! {"op":"submit","id":3,"seq":7,"spec":{…}}   job admitted (spec embedded)
//! {"op":"start","id":3}                        a worker picked it up
//! {"op":"finish","id":3,"state":"done"}        terminal: done | failed
//! {"op":"cancel","id":3}                       terminal: cancelled
//! ```
//!
//! Every append is fsynced **before** the daemon acknowledges the
//! action to a client, so an admitted job survives SIGKILL. Recovery
//! ([`Wal::open`]) folds the log into one [`ReplayedJob`] per id; jobs
//! without a terminal record — queued *or* in-flight at the crash — are
//! re-admitted in their original `(priority, seq)` order, and a
//! re-admitted sweep job resumes from its per-job cell checkpoint, so
//! only the cells that were mid-flight re-run (bit-identically).
//!
//! Loading tolerates a torn tail (a crash mid-append): replay stops at
//! the first unparsable (or unterminated) line and the file is
//! truncated back to the durable prefix before it is reopened for
//! append — otherwise the next record would concatenate onto the torn
//! fragment and everything written after recovery would be lost on the
//! *following* restart. A mismatched schema is a loud error — a WAL can
//! never be silently misread as a different format.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use tcm_proto::json::{self, Value};
use tcm_proto::{JobSpec, JobState};

/// Schema tag on the WAL's first line.
pub const WAL_SCHEMA: &str = "tcm-serve-wal-v1";

/// One job's folded history after replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedJob {
    /// Job id (stable across restarts).
    pub id: u64,
    /// Queue sequence number from first admission.
    pub seq: u64,
    /// The embedded job spec.
    pub spec: JobSpec,
    /// Whether a worker had started it before the crash.
    pub started: bool,
    /// Terminal state, when the job finished or was cancelled.
    pub terminal: Option<JobState>,
}

/// Durability counters the daemon exposes for scraping: what this
/// handle appended this lifetime and what [`Wal::open`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Op records appended (and fsynced) through this handle.
    pub appended_records: u64,
    /// Bytes appended through this handle (records plus newlines).
    pub appended_bytes: u64,
    /// Jobs folded out of the log at open.
    pub replayed_jobs: u64,
    /// Torn-tail bytes truncated back to the durable prefix at open.
    pub truncated_bytes: u64,
}

/// Append handle over the WAL file.
#[derive(Debug)]
pub struct Wal {
    file: fs::File,
    path: PathBuf,
    stats: WalStats,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`, returning the handle plus
    /// every replayed job in first-admission order.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Self, Vec<ReplayedJob>)> {
        let path = path.into();
        let mut truncated_bytes = 0;
        let jobs = match fs::read_to_string(&path) {
            Ok(text) => {
                let (jobs, durable_len) = replay(&text)?;
                // Truncate a torn tail before reopening for append:
                // appending after an unterminated fragment would corrupt
                // the first post-recovery record, silently losing every
                // fsynced op after it on the next replay.
                if durable_len < text.len() as u64 {
                    truncated_bytes = text.len() as u64 - durable_len;
                    let file = fs::OpenOptions::new().write(true).open(&path)?;
                    file.set_len(durable_len)?;
                    file.sync_all()?;
                }
                jobs
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut file = fs::File::create(&path)?;
                writeln!(file, "{{\"schema\":\"{WAL_SCHEMA}\"}}")?;
                file.sync_all()?;
                sync_parent(&path)?;
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        let stats = WalStats {
            replayed_jobs: jobs.len() as u64,
            truncated_bytes,
            ..WalStats::default()
        };
        Ok((Self { file, path, stats }, jobs))
    }

    /// Records an admission; durable before the caller acknowledges it.
    pub fn submit(&mut self, id: u64, seq: u64, spec: &JobSpec) -> io::Result<()> {
        let mut line = format!("{{\"op\":\"submit\",\"id\":{id},\"seq\":{seq},\"spec\":");
        spec.encode_body(&mut line);
        line.push('}');
        self.append(&line)
    }

    /// Records that a worker started the job.
    pub fn start(&mut self, id: u64) -> io::Result<()> {
        self.append(&format!("{{\"op\":\"start\",\"id\":{id}}}"))
    }

    /// Records a terminal state (`Done` or `Failed`).
    pub fn finish(&mut self, id: u64, state: JobState) -> io::Result<()> {
        self.append(&format!(
            "{{\"op\":\"finish\",\"id\":{id},\"state\":\"{}\"}}",
            state.as_str()
        ))
    }

    /// Records a cancellation (terminal).
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.append(&format!("{{\"op\":\"cancel\",\"id\":{id}}}"))
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durability counters for this handle (see [`WalStats`]).
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    fn append(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()?;
        self.stats.appended_records += 1;
        self.stats.appended_bytes += line.len() as u64 + 1;
        Ok(())
    }
}

fn sync_parent(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::File::open(parent)?.sync_all()
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Folds WAL text into per-job histories (see module docs), returning
/// the jobs plus the byte length of the durable prefix: the header and
/// every fully parsed, newline-terminated op line. Bytes past that
/// prefix are a torn tail from a crash mid-append (an unterminated line
/// was never fsync-acknowledged) and must be truncated before the file
/// is reopened for append.
fn replay(text: &str) -> io::Result<(Vec<ReplayedJob>, u64)> {
    let Some(header_end) = text.find('\n').map(|i| i + 1) else {
        return Err(bad("WAL header unterminated"));
    };
    let header =
        json::parse(&text[..header_end - 1]).ok_or_else(|| bad("WAL header unparsable"))?;
    match header.field("schema").and_then(Value::as_str) {
        Some(WAL_SCHEMA) => {}
        Some(other) => return Err(bad(format!("WAL schema `{other}`, expected `{WAL_SCHEMA}`"))),
        None => return Err(bad("WAL header missing schema")),
    }
    let mut jobs: Vec<ReplayedJob> = Vec::new();
    let mut durable = header_end as u64;
    let mut pos = header_end;
    // A torn tail (crash mid-append) ends replay; everything before it
    // was fsynced and is authoritative. `durable` only advances past a
    // line once it has fully parsed *and* carries its newline.
    while let Some(nl) = text[pos..].find('\n') {
        let line = &text[pos..pos + nl];
        pos += nl + 1;
        if line.is_empty() {
            durable = pos as u64;
            continue;
        }
        let Some(v) = json::parse(line) else { break };
        let Some(op) = v.field("op").and_then(Value::as_str) else {
            break;
        };
        let Some(id) = v.field("id").and_then(Value::as_u64) else {
            break;
        };
        match op {
            "submit" => {
                let (Some(seq), Some(spec)) = (
                    v.field("seq").and_then(Value::as_u64),
                    v.field("spec").and_then(|s| JobSpec::from_value(s).ok()),
                ) else {
                    break;
                };
                jobs.push(ReplayedJob {
                    id,
                    seq,
                    spec,
                    started: false,
                    terminal: None,
                });
            }
            "start" => {
                if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
                    job.started = true;
                }
            }
            "finish" => {
                let state = match v.field("state").and_then(Value::as_str) {
                    Some("done") => JobState::Done,
                    Some("failed") => JobState::Failed,
                    _ => break,
                };
                if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
                    job.terminal = Some(state);
                }
            }
            "cancel" => {
                if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
                    job.terminal = Some(JobState::Cancelled);
                }
            }
            _ => break,
        }
        durable = pos as u64;
    }
    Ok((jobs, durable))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_proto::{JobKind, SoakSpec};

    fn spec() -> JobSpec {
        JobSpec {
            priority: 1,
            deadline_ms: None,
            max_attempts: 2,
            kind: JobKind::ChaosSoak(SoakSpec {
                seed: 9,
                rounds: 1,
                horizon: 10_000,
            }),
        }
    }

    fn temp_wal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tcm-wal-test-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn replay_readmits_unfinished_jobs_in_order() {
        let path = temp_wal("order");
        let _ = fs::remove_file(&path);
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(wal.stats(), WalStats::default());
            wal.submit(1, 0, &spec()).unwrap();
            wal.submit(2, 1, &spec()).unwrap();
            wal.submit(3, 2, &spec()).unwrap();
            wal.start(1).unwrap();
            wal.finish(1, JobState::Done).unwrap();
            wal.start(2).unwrap(); // in-flight at the "crash"
            wal.cancel(3).unwrap();
            assert_eq!(wal.stats().appended_records, 7);
            assert!(wal.stats().appended_bytes > 0);
        }
        let (wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(wal.stats().replayed_jobs, 3);
        assert_eq!(wal.stats().appended_records, 0, "appends count per handle");
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0].terminal, Some(JobState::Done));
        assert_eq!(replayed[1].terminal, None, "in-flight job re-admits");
        assert!(replayed[1].started);
        assert_eq!(replayed[2].terminal, Some(JobState::Cancelled));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_but_wrong_schema_is_loud() {
        let path = temp_wal("torn");
        let _ = fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.submit(1, 0, &spec()).unwrap();
        }
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"op\":\"sub"); // torn mid-append
        fs::write(&path, &text).unwrap();
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed.len(), 1, "torn tail dropped, prefix kept");
            assert_eq!(wal.stats().truncated_bytes, "{\"op\":\"sub".len() as u64);
            // Appends after a torn-tail recovery must survive the *next*
            // restart: the torn fragment is truncated, not appended onto.
            wal.submit(2, 1, &spec()).unwrap();
            wal.finish(1, JobState::Done).unwrap();
        }
        let (_wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2, "post-recovery appends replay");
        assert_eq!(replayed[0].terminal, Some(JobState::Done));
        assert_eq!(replayed[1].terminal, None);

        fs::write(&path, "{\"schema\":\"something-else\"}\n").unwrap();
        assert!(Wal::open(&path).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unterminated_final_line_is_truncated_not_replayed() {
        let path = temp_wal("unterm");
        let _ = fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.submit(1, 0, &spec()).unwrap();
        }
        // A parsable line missing its newline (crash between the record
        // write and the newline write) was never acknowledged — it must
        // be dropped, or the next append would corrupt it anyway.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"op\":\"cancel\",\"id\":1}");
        fs::write(&path, &text).unwrap();
        {
            let (mut wal, replayed) = Wal::open(&path).unwrap();
            assert_eq!(replayed.len(), 1);
            assert_eq!(replayed[0].terminal, None, "unterminated cancel dropped");
            wal.start(1).unwrap();
        }
        let (_wal, replayed) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(replayed[0].started);
        fs::remove_file(&path).unwrap();
    }
}
