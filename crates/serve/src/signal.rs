//! Async-signal-safe drain requests.
//!
//! The daemon drains on SIGTERM (and SIGINT, for interactive use). The
//! handler does the only thing a signal handler safely can: set an
//! atomic flag. The accept loop and workers poll
//! [`drain_requested`] cooperatively — the same discipline the
//! simulator uses for its own cancellation tokens.
//!
//! The workspace carries no `libc` dependency; `signal(2)` is declared
//! directly (the symbol is already linked via `std`).

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX `SIGINT`.
pub const SIGINT: i32 = 2;
/// POSIX `SIGTERM`.
pub const SIGTERM: i32 = 15;

static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Installs the drain handler for SIGTERM and SIGINT. Idempotent.
pub fn install_drain_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal(2)` with a handler that only stores to an atomic
    // is async-signal-safe; both arguments are valid by construction.
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a drain signal has been received (process-wide, sticky).
/// In-process `Drain` requests set the server's own flag instead, so
/// tests hosting several servers in one process never cross-talk.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}
