//! `tcm-serve` — the long-running sweep service, completing the
//! workspace's engine/service/client split:
//!
//! * **engine** — `tcm-sim`'s [`Session`](tcm_sim::Session)/`Sweep`
//!   layer runs the actual policy × workload × seed cells;
//! * **service** — this crate's [`server`] wraps the engine in a daemon
//!   listening on a Unix-domain socket: a bounded priority job queue,
//!   a worker pool, per-job wall-clock deadlines, timeout-only retry
//!   with deterministic seeded backoff, and streamed per-cell events;
//! * **client** — [`client`] plus the `tcm-run serve`/`tcm-run client`
//!   subcommands speak `tcm-proto` frames to the daemon.
//!
//! Durability is layered: every admitted job is recorded in a fsynced
//! write-ahead log ([`wal`]) before it is acknowledged, and every sweep
//! job checkpoints completed cells through the engine's crash-
//! consistent JSONL checkpoint. A SIGKILL'd daemon therefore restarts,
//! re-admits queued and in-flight jobs from the WAL, resumes their
//! checkpoints, and produces **bit-identical** merged grids. SIGTERM
//! drains gracefully: admission stops, in-flight cells finish or
//! checkpoint, the WAL is flushed, and the process exits 0 within the
//! configured drain deadline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

pub mod client;
pub mod job;
pub mod log;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;
pub mod wal;

pub use client::Client;
pub use log::Level;
pub use metrics::DaemonMetrics;
pub use queue::{JobQueue, QueueFull};
pub use server::{Server, ServerConfig};
pub use wal::{ReplayedJob, Wal, WalStats};
