//! Job-spec resolution (wire names → engine types) and durable result
//! rendering.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use tcm_core::TcmParams;
use tcm_proto::{SweepSpec, WorkloadRef};
use tcm_sched::{AtlasParams, ParBsParams, StfmParams};
use tcm_sim::{PolicyKind, SweepResult};
use tcm_types::Topology;
use tcm_workload::{random_workload, table5_workloads, WorkloadSpec};

/// Schema tag of the per-job result document.
pub const RESULT_SCHEMA: &str = "tcm-serve-result-v1";

/// Parses a policy name as accepted by `tcm-run --policies` and job
/// specs; `n` sizes the policy's paper-default parameters.
pub fn parse_policy(name: &str, n: usize) -> Result<PolicyKind, String> {
    Ok(match name {
        "fcfs" => PolicyKind::Fcfs,
        "fr-fcfs" | "frfcfs" => PolicyKind::FrFcfs,
        "stfm" => PolicyKind::Stfm(StfmParams::paper_default()),
        "par-bs" | "parbs" => PolicyKind::ParBs(ParBsParams::paper_default()),
        "atlas" => PolicyKind::Atlas(AtlasParams::paper_default()),
        "fqm" => PolicyKind::FairQueueing,
        "tcm" => PolicyKind::Tcm(TcmParams::reproduction_default(n)),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

/// A sweep spec resolved against the engine's types.
#[derive(Debug)]
pub struct ResolvedSweep {
    /// Policy axis.
    pub policies: Vec<PolicyKind>,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// Seed axis values.
    pub seeds: Vec<u64>,
    /// Simulated cycles per cell.
    pub horizon: u64,
    /// Parsed topology override, if any.
    pub topology: Option<Topology>,
    /// Whether to capture telemetry.
    pub telemetry: bool,
}

/// Resolves names in a [`SweepSpec`] to engine types, rejecting
/// malformed specs with a client-facing message.
pub fn resolve_sweep(spec: &SweepSpec) -> Result<ResolvedSweep, String> {
    if spec.workloads.is_empty() {
        return Err("sweep needs at least one workload".into());
    }
    if spec.horizon == 0 {
        return Err("sweep horizon must be positive".into());
    }
    let workloads = spec
        .workloads
        .iter()
        .map(|w| match w {
            WorkloadRef::Named(name) => table5_workloads()
                .into_iter()
                .find(|t| &t.name == name)
                .ok_or_else(|| format!("unknown workload `{name}` (expected A, B, C or D)")),
            WorkloadRef::Random {
                seed,
                threads,
                intensity_bits,
            } => {
                let intensity = f64::from_bits(*intensity_bits);
                if !(0.0..=1.0).contains(&intensity) {
                    return Err(format!("workload intensity {intensity} outside [0, 1]"));
                }
                let threads = usize::try_from(*threads)
                    .ok()
                    .filter(|&t| (1..=1024).contains(&t))
                    .ok_or_else(|| format!("bad workload thread count {threads}"))?;
                Ok(random_workload(*seed, threads, intensity))
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let n = workloads[0].threads.len();
    if workloads.iter().any(|w| w.threads.len() != n) {
        return Err("all workloads on one grid must have the same thread count".into());
    }
    let policies = if spec.policies.is_empty() {
        PolicyKind::paper_lineup(n)
    } else {
        spec.policies
            .iter()
            .map(|name| parse_policy(name, n))
            .collect::<Result<Vec<_>, String>>()?
    };
    let topology = spec
        .topology
        .as_deref()
        .map(Topology::parse)
        .transpose()
        .map_err(|e| e.to_string())?;
    let seeds = if spec.seeds.is_empty() {
        vec![0]
    } else {
        spec.seeds.clone()
    };
    Ok(ResolvedSweep {
        policies,
        workloads,
        seeds,
        horizon: spec.horizon,
        topology,
        telemetry: spec.telemetry,
    })
}

/// Renders a finished sweep as the deterministic per-job result
/// document: grid order, floats as IEEE-754 bit patterns. Two runs of
/// the same job — interrupted or not — produce **byte-identical**
/// documents; the serve-smoke CI leg and the crash-recovery tests
/// compare these bytes directly.
pub fn render_result(result: &SweepResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{{\"schema\":\"{RESULT_SCHEMA}\",\"policies\":[");
    for (i, p) in result.policy_labels().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        tcm_proto::json::write_str(&mut s, p);
    }
    s.push_str("],\"workloads\":[");
    for (i, w) in result.workload_names().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        tcm_proto::json::write_str(&mut s, w);
    }
    s.push_str("],\"seeds\":[");
    for (i, seed) in result.seeds().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{seed}");
    }
    s.push_str("],\"cells\":[");
    for (i, cell) in result.cells().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let m = &cell.result.metrics;
        let _ = write!(
            s,
            "{{\"policy\":{},\"workload\":{},\"seed\":{},\"ws_bits\":{},\"hs_bits\":{},\
             \"ms_bits\":{},\"slowdown_bits\":[",
            cell.policy,
            cell.workload,
            cell.seed,
            m.weighted_speedup.to_bits(),
            m.harmonic_speedup.to_bits(),
            m.max_slowdown.to_bits(),
        );
        for (j, sd) in cell.result.slowdowns.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", sd.to_bits());
        }
        s.push_str("]}");
    }
    s.push_str("],\"failures\":[");
    for (i, failure) in result.failures().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        tcm_proto::json::write_str(&mut s, &failure.structured_line());
    }
    s.push_str("]}\n");
    s
}

/// Writes `contents` to `path` crash-consistently: temp file, fsync,
/// atomic rename, fsync of the parent directory — the same discipline
/// as the engine's checkpoint publish.
pub fn write_durable(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.to_path_buf().into_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::File::open(parent)?.sync_all()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rejects_bad_specs_loudly() {
        let base = SweepSpec {
            policies: vec![],
            workloads: vec![WorkloadRef::Named("B".into())],
            seeds: vec![],
            horizon: 1000,
            topology: None,
            telemetry: false,
        };
        let ok = resolve_sweep(&base).unwrap();
        assert_eq!(ok.policies.len(), 5, "empty policies = paper lineup");
        assert_eq!(ok.seeds, [0], "empty seeds = canonical");

        let mut bad = base.clone();
        bad.policies = vec!["quantum-annealing".into()];
        assert!(resolve_sweep(&bad).unwrap_err().contains("unknown policy"));

        let mut bad = base.clone();
        bad.workloads = vec![WorkloadRef::Random {
            seed: 0,
            threads: 4,
            intensity_bits: 2.0f64.to_bits(),
        }];
        assert!(resolve_sweep(&bad).unwrap_err().contains("intensity"));

        let mut bad = base.clone();
        bad.horizon = 0;
        assert!(resolve_sweep(&bad).is_err());

        let mut bad = base;
        bad.topology = Some("nonsense".into());
        assert!(resolve_sweep(&bad).is_err());
    }
}
