//! Daemon-side metrics: accumulated counters/histograms plus scrape-
//! time gauges, rendered through `tcm_telemetry::prometheus`.
//!
//! [`DaemonMetrics`] is a **leaf lock**: hook points throughout the
//! server take it last (or alone) and never acquire another lock while
//! holding it, so it composes with the server's `inner` → `wal` →
//! `subscribers` order at any position.
//!
//! The full metric catalog lives in DESIGN.md §9; every name is
//! prefixed `tcm_serve_` except `tcm_trace_events_dropped_total`, which
//! matches the one-shot runner's name for the same signal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tcm_proto::JobState;
use tcm_telemetry::{labeled, prometheus, Histogram, MetricsRegistry};

/// Log2 slots for the job wall-clock latency histogram: bucket 21
/// bounds at 2^20−1 ms ≈ 17.5 min, with one overflow slot above.
const JOB_DURATION_SLOTS: usize = 22;

/// Scrape-time values the accumulator cannot know on its own; the
/// server assembles these from its own state under the proper locks.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveGauges {
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_capacity: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Watch subscriber streams currently registered.
    pub watch_subscribers: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// WAL records appended (and fsynced) this daemon lifetime.
    pub wal_appended_records: u64,
    /// WAL bytes appended this daemon lifetime.
    pub wal_appended_bytes: u64,
    /// Jobs folded out of the WAL at startup.
    pub wal_replayed_jobs: u64,
    /// Torn-tail bytes truncated from the WAL at startup.
    pub wal_truncated_bytes: u64,
}

/// The daemon's metric accumulator. Cheap atomics for the hot gauges,
/// one mutexed registry for everything counted or observed.
#[derive(Debug)]
pub struct DaemonMetrics {
    started: Instant,
    registry: Mutex<MetricsRegistry>,
    queue_high_water: AtomicU64,
    workers_busy: AtomicU64,
}

impl DaemonMetrics {
    /// A fresh accumulator; `started` anchors the uptime gauge.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            registry: Mutex::new(MetricsRegistry::new()),
            queue_high_water: AtomicU64::new(0),
            workers_busy: AtomicU64::new(0),
        }
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Workers currently executing a job.
    pub fn workers_busy(&self) -> u64 {
        self.workers_busy.load(Ordering::Relaxed)
    }

    /// Marks a worker busy (`true`) or idle again (`false`).
    pub fn set_worker_busy(&self, busy: bool) {
        if busy {
            self.workers_busy.fetch_add(1, Ordering::Relaxed);
        } else {
            self.workers_busy.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn raise_queue_high_water(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, name: &str, delta: u64) {
        lock(&self.registry).add(name, delta);
    }

    /// Adds `delta` to a counter qualified by one label.
    pub fn add_labeled(&self, name: &str, key: &str, value: &str, delta: u64) {
        lock(&self.registry).add(&labeled(name, &[(key, value)]), delta);
    }

    /// Records one finished job's wall-clock latency under its terminal
    /// state.
    pub fn observe_job_duration(&self, state: JobState, ms: u64) {
        let name = labeled("tcm_serve_job_duration_ms", &[("state", state.as_str())]);
        let mut registry = lock(&self.registry);
        if registry.histogram(&name).is_none() {
            registry.merge_histogram(&name, Histogram::log2(JOB_DURATION_SLOTS));
        }
        registry.observe(&name, ms);
    }

    /// Renders the full exposition: accumulated counters/histograms
    /// plus the supplied live gauges. Deterministic given identical
    /// state.
    pub fn render(&self, live: &LiveGauges) -> String {
        let mut registry = lock(&self.registry).clone();
        registry.set_counter("tcm_serve_wal_appended_records_total", live.wal_appended_records);
        registry.set_counter("tcm_serve_wal_appended_bytes_total", live.wal_appended_bytes);
        registry.set_counter("tcm_serve_wal_replayed_jobs_total", live.wal_replayed_jobs);
        registry.set_counter("tcm_serve_wal_truncated_bytes_total", live.wal_truncated_bytes);
        registry.set_gauge("tcm_serve_queue_depth", live.queue_depth as f64);
        registry.set_gauge("tcm_serve_queue_capacity", live.queue_capacity as f64);
        registry.set_gauge(
            "tcm_serve_queue_high_water",
            self.queue_high_water.load(Ordering::Relaxed) as f64,
        );
        registry.set_gauge("tcm_serve_workers", live.workers as f64);
        registry.set_gauge("tcm_serve_workers_busy", self.workers_busy() as f64);
        registry.set_gauge("tcm_serve_watch_subscribers", live.watch_subscribers as f64);
        registry.set_gauge("tcm_serve_draining", f64::from(u8::from(live.draining)));
        registry.set_gauge(
            "tcm_serve_uptime_seconds",
            self.started.elapsed().as_secs_f64(),
        );
        prometheus::render(&registry)
    }
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}

fn lock(m: &Mutex<MetricsRegistry>) -> std::sync::MutexGuard<'_, MetricsRegistry> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_carries_counters_gauges_and_histograms() {
        let m = DaemonMetrics::new();
        m.add("tcm_serve_jobs_submitted_total", 2);
        m.add_labeled("tcm_serve_jobs_completed_total", "state", "done", 1);
        m.raise_queue_high_water(5);
        m.raise_queue_high_water(3); // high water never regresses
        m.set_worker_busy(true);
        m.observe_job_duration(JobState::Done, 120);
        let text = m.render(&LiveGauges {
            queue_depth: 1,
            queue_capacity: 64,
            workers: 2,
            watch_subscribers: 0,
            draining: false,
            wal_appended_records: 7,
            wal_appended_bytes: 900,
            wal_replayed_jobs: 1,
            wal_truncated_bytes: 0,
        });
        assert!(text.contains("tcm_serve_jobs_submitted_total 2\n"));
        assert!(text.contains("tcm_serve_jobs_completed_total{state=\"done\"} 1\n"));
        assert!(text.contains("tcm_serve_queue_high_water 5\n"));
        assert!(text.contains("tcm_serve_workers_busy 1\n"));
        assert!(text.contains("tcm_serve_wal_appended_records_total 7\n"));
        assert!(text.contains("# TYPE tcm_serve_job_duration_ms histogram"));
        assert!(text.contains("tcm_serve_job_duration_ms_count{state=\"done\"} 1\n"));
        assert!(text.contains("tcm_serve_job_duration_ms_sum{state=\"done\"} 120\n"));
    }
}
