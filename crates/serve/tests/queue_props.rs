//! Property test: the daemon's job-queue ordering is **total and
//! stable** under arbitrary interleavings of submit, cancel and pop.
//!
//! The reference model is a plain `Vec<(priority, seq, id)>`: the queue
//! contract says pop order equals the `(priority, seq)` sort of
//! whatever is queued — lower priority number first, FIFO (by monotone
//! submission sequence) within one priority class. Cancels may remove
//! any queued element at any time without disturbing the relative
//! order of the survivors, and a full queue must refuse with the typed
//! `QueueFull` error rather than dropping or displacing.

use proptest::prelude::*;
use tcm_serve::{JobQueue, QueueFull};

const CAPACITY: usize = 24;

#[derive(Debug, Clone, Copy)]
enum Op {
    Submit { priority: u8 },
    Cancel { nth: usize },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted: 3 parts submit, 2 parts pop, 1 part cancel.
    (0usize..6, 0u8..4, 0usize..64).prop_map(|(select, priority, nth)| match select {
        0..=2 => Op::Submit { priority },
        3..=4 => Op::Pop,
        _ => Op::Cancel { nth },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// After every operation the queue's full iteration order equals
    /// the model's `(priority, seq)` sort — i.e. the ordering is total,
    /// stable under interleaved submits/cancels, and FIFO within each
    /// priority class (seq is strictly monotone across submissions).
    #[test]
    fn ordering_is_total_stable_and_fifo_within_class(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut queue = JobQueue::new(CAPACITY);
        let mut model: Vec<(u8, u64, u64)> = Vec::new(); // (priority, seq, id)
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Submit { priority } => {
                    let (id, seq) = (next + 1, next);
                    next += 1;
                    let pushed = queue.push(id, priority, seq);
                    if model.len() >= CAPACITY {
                        prop_assert_eq!(
                            pushed,
                            Err(QueueFull { capacity: CAPACITY }),
                            "a full queue must refuse with typed backpressure"
                        );
                    } else {
                        prop_assert!(pushed.is_ok());
                        model.push((priority, seq, id));
                    }
                }
                Op::Cancel { nth } => {
                    if model.is_empty() {
                        prop_assert!(!queue.cancel(u64::MAX), "cancel on empty is a no-op");
                    } else {
                        let idx = nth % model.len();
                        let id = model.remove(idx).2;
                        prop_assert!(queue.cancel(id));
                        prop_assert!(!queue.cancel(id), "double cancel must be a no-op");
                    }
                }
                Op::Pop => {
                    // The contract: pop returns exactly the model's
                    // (priority, seq) minimum.
                    match model.iter().min().copied() {
                        Some(entry) => {
                            prop_assert_eq!(queue.pop(), Some(entry.2));
                            model.retain(|e| e.2 != entry.2);
                        }
                        None => prop_assert_eq!(queue.pop(), None),
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
            let mut sorted = model.clone();
            sorted.sort_unstable();
            prop_assert_eq!(
                queue.iter_in_order().collect::<Vec<_>>(),
                sorted.iter().map(|e| e.2).collect::<Vec<_>>(),
                "iteration order must equal the (priority, seq) sort at every step"
            );
        }
        // Draining what's left pops in total order: priority classes
        // ascending, FIFO within each class.
        let mut sorted = model;
        sorted.sort_unstable();
        let drained: Vec<u64> = std::iter::from_fn(|| queue.pop()).collect();
        prop_assert_eq!(drained, sorted.into_iter().map(|e| e.2).collect::<Vec<_>>());
    }
}
