//! End-to-end daemon tests over a real Unix-domain socket: WAL
//! recovery with bit-identical results, streamed watch events, typed
//! backpressure, and the graceful-drain exit contract.
//!
//! The crash in the recovery test is staged rather than delivered with
//! a real `kill -9` (that lives in `scripts/check.sh`'s `serve-smoke`
//! leg): the state directory is pre-seeded with exactly what a killed
//! daemon leaves behind — a WAL whose job has `submit` + `start` but no
//! terminal record, and a cell checkpoint truncated mid-line.

use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;
use tcm_proto::{Event, JobKind, JobSpec, JobState, SweepSpec, WorkloadRef};
use tcm_serve::{Client, Server, ServerConfig, Wal};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcm-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config(dir: &Path) -> ServerConfig {
    ServerConfig {
        socket: dir.join("sock"),
        state_dir: dir.join("state"),
        workers: 2,
        queue_capacity: 8,
        drain_deadline: Duration::from_secs(20),
        metrics_file: None,
    }
}

/// Pulls one sample out of a Prometheus text exposition; `name`
/// includes any label set, e.g. `foo_total{state="done"}`.
fn metric(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse().ok())
}

fn sweep_spec() -> JobSpec {
    JobSpec {
        priority: 1,
        deadline_ms: None,
        max_attempts: 2,
        kind: JobKind::Sweep(SweepSpec {
            policies: vec!["fr-fcfs".into(), "fqm".into()],
            workloads: vec![WorkloadRef::Random {
                seed: 5,
                threads: 4,
                intensity_bits: 0.8f64.to_bits(),
            }],
            seeds: vec![0, 17],
            horizon: 30_000,
            topology: None,
            telemetry: false,
        }),
    }
}

/// Starts a daemon, waits for its socket, returns the exit-code handle.
fn start(config: ServerConfig) -> (thread::JoinHandle<i32>, PathBuf) {
    let socket = config.socket.clone();
    let server = Server::new(config).expect("server starts");
    let handle = thread::spawn(move || server.run().expect("run returns"));
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    (handle, socket)
}

#[test]
fn restarted_daemon_readmits_wal_jobs_and_finishes_bit_identically() {
    // Reference: an uninterrupted daemon runs the job to completion.
    let ref_dir = scratch_dir("ref");
    let (handle, socket) = start(config(&ref_dir));
    let mut client = Client::connect(&socket).expect("connect");
    let id = client.submit(sweep_spec()).expect("submit");
    assert_eq!(id, 1);
    let (state, detail) = client.watch(id, |_| {}).expect("watch");
    assert_eq!(state, JobState::Done, "{detail}");
    client.drain().expect("drain");
    assert_eq!(handle.join().expect("join"), 0, "clean drain exits 0");
    let reference = std::fs::read(ref_dir.join("state/job-1.result.json")).expect("result file");

    // The crash scene: a WAL with submit+start but no terminal record,
    // plus the reference checkpoint truncated mid-line — exactly what a
    // SIGKILL between two atomic publishes leaves behind.
    let crash_dir = scratch_dir("crash");
    let state_dir = crash_dir.join("state");
    std::fs::create_dir_all(&state_dir).expect("state dir");
    {
        let (mut wal, replayed) = Wal::open(state_dir.join("wal.jsonl")).expect("fresh WAL");
        assert!(replayed.is_empty());
        wal.submit(1, 0, &sweep_spec()).expect("wal submit");
        wal.start(1).expect("wal start");
    }
    let full = std::fs::read_to_string(ref_dir.join("state/job-1.ckpt.jsonl")).expect("ckpt");
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 cells");
    let torn = &lines[2][..lines[2].len() / 2];
    std::fs::write(
        state_dir.join("job-1.ckpt.jsonl"),
        format!("{}\n{torn}", lines[..2].join("\n")),
    )
    .expect("truncated ckpt");

    // Restart: the WAL re-admits job 1, the checkpoint restores the one
    // intact cell, the rest re-run — and the merged result file is
    // byte-identical to the uninterrupted daemon's.
    let (handle, socket) = start(ServerConfig {
        socket: crash_dir.join("sock"),
        state_dir: state_dir.clone(),
        ..config(&crash_dir)
    });
    let mut client = Client::connect(&socket).expect("reconnect");
    let (state, detail) = client.watch(1, |_| {}).expect("watch recovered job");
    assert_eq!(state, JobState::Done, "{detail}");
    let recovered = std::fs::read(state_dir.join("job-1.result.json")).expect("result file");
    assert_eq!(recovered, reference, "recovery is byte-identical");
    let republished =
        std::fs::read_to_string(state_dir.join("job-1.ckpt.jsonl")).expect("ckpt republished");
    assert_eq!(republished.lines().count(), 5, "checkpoint is whole again");

    // The restarted daemon's scrape must carry the recovery story: the
    // job folded out of the WAL and the checkpoint cell it replayed.
    let text = client.metrics().expect("metrics after recovery");
    assert_eq!(metric(&text, "tcm_serve_wal_replayed_jobs_total"), Some(1.0), "{text}");
    assert_eq!(metric(&text, "tcm_serve_jobs_readmitted_total"), Some(1.0), "{text}");
    assert_eq!(metric(&text, "tcm_serve_cells_resumed_total"), Some(1.0), "{text}");

    client.drain().expect("drain");
    assert_eq!(handle.join().expect("join"), 0);
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn drain_refuses_admission_with_typed_status_and_exits_zero() {
    let dir = scratch_dir("drain");
    let (handle, socket) = start(config(&dir));
    let mut client = Client::connect(&socket).expect("connect");

    client.drain().expect("drain acknowledged");
    // The same connection stays serviceable: submission is refused with
    // the typed Draining status, not a hangup or a generic error.
    let err = client.submit(sweep_spec()).expect_err("admission stopped");
    assert!(err.to_string().contains("draining"), "{err}");

    assert_eq!(handle.join().expect("join"), 0, "graceful drain exits 0");
    assert!(!socket.exists(), "socket file removed on exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_cancel_and_streaming_roundtrip() {
    let dir = scratch_dir("queue");
    let mut cfg = config(&dir);
    // A single worker, so one long-horizon job jams the pool and the
    // rest of the test runs against a deterministically busy daemon.
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    let (handle, socket) = start(cfg);
    let mut client = Client::connect(&socket).expect("connect");

    let mut long_spec = sweep_spec();
    if let JobKind::Sweep(sweep) = &mut long_spec.kind {
        sweep.horizon = 50_000_000;
        sweep.seeds = vec![0];
    }
    let running = client.submit(long_spec).expect("submit long job");
    for _ in 0..1_000 {
        if client.status(Some(running)).expect("status")[0].state == JobState::Running {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    let a = client.submit(sweep_spec()).expect("queued job a");
    let b = client.submit(sweep_spec()).expect("queued job b");
    let err = client.submit(sweep_spec()).expect_err("third must bounce");
    assert!(err.to_string().contains("queue full"), "{err}");

    assert!(client.cancel(a).expect("cancel queued"), "queued job found");
    assert!(!client.cancel(a).expect("re-cancel"), "second cancel is a no-op");
    let jobs = client.status(None).expect("status");
    let find = |id: u64| jobs.iter().find(|j| j.id == id).expect("listed").state;
    assert_eq!(find(a), JobState::Cancelled);
    assert_eq!(find(b), JobState::Queued);

    // Register a watcher for `b` while it is still queued behind the
    // busy worker: every one of its cell events must then stream.
    let mut watcher = Client::connect(&socket).expect("watcher connection");
    let streamer = thread::spawn(move || {
        let mut cells = 0;
        let outcome = watcher
            .watch(b, |event| {
                if let Event::CellResult { resumed, .. } = event {
                    assert!(!resumed, "fresh run replays nothing");
                    cells += 1;
                }
            })
            .expect("watch b");
        (outcome.0, cells)
    });
    thread::sleep(Duration::from_millis(300)); // let the Watch register

    // Hard-cancel the running job: its cells abort mid-simulation and
    // the worker moves on to `b`.
    assert!(client.cancel(running).expect("cancel running"), "running job found");
    let (state, _) = client.watch(running, |_| {}).expect("watch cancelled");
    assert_eq!(state, JobState::Cancelled, "hard cancel aborts in-flight cells");

    let (state, cells) = streamer.join().expect("streamer");
    assert_eq!(state, JobState::Done);
    assert_eq!(cells, 4, "2 policies × 2 seeds streamed to the watcher");

    client.drain().expect("drain");
    assert_eq!(handle.join().expect("join"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_and_progress_track_the_job_lifecycle() {
    let dir = scratch_dir("metrics");
    let (handle, socket) = start(config(&dir));
    let mut client = Client::connect(&socket).expect("connect");

    // Baseline scrape: gauges reflect the configuration before any job.
    let text = client.metrics().expect("baseline scrape");
    assert_eq!(metric(&text, "tcm_serve_queue_capacity"), Some(8.0), "{text}");
    assert_eq!(metric(&text, "tcm_serve_workers"), Some(2.0), "{text}");
    assert_eq!(metric(&text, "tcm_serve_queue_depth"), Some(0.0), "{text}");
    assert!(metric(&text, "tcm_serve_jobs_submitted_total").is_none(), "{text}");

    // One clean job: every submit/run/done stage must move its metric.
    let id = client.submit(sweep_spec()).expect("submit");
    let (state, detail) = client.watch(id, |_| {}).expect("watch");
    assert_eq!(state, JobState::Done, "{detail}");

    let (jobs, server) = client.status_full(Some(id)).expect("status");
    let info = server.expect("daemon sends ServerInfo");
    assert!(!info.version.is_empty());
    assert_eq!(info.queue_capacity, 8);
    assert_eq!(info.workers, 2);
    assert!(!info.draining);
    let progress = jobs[0].progress.expect("done job reports progress");
    assert_eq!(progress.total, 4, "2 policies × 2 seeds");
    assert_eq!(progress.done, 4);
    assert_eq!(progress.failed, 0);

    let text = client.metrics().expect("post-job scrape");
    assert_eq!(metric(&text, "tcm_serve_jobs_submitted_total"), Some(1.0), "{text}");
    assert_eq!(
        metric(&text, "tcm_serve_jobs_completed_total{state=\"done\"}"),
        Some(1.0),
        "{text}"
    );
    assert_eq!(metric(&text, "tcm_serve_cells_completed_total"), Some(4.0), "{text}");
    assert_eq!(
        metric(&text, "tcm_serve_job_duration_ms_count{state=\"done\"}"),
        Some(1.0),
        "{text}"
    );
    assert!(
        metric(&text, "tcm_serve_job_duration_ms_sum{state=\"done\"}").is_some(),
        "{text}"
    );
    // submit + start + finish reached the WAL before the scrape.
    assert!(
        metric(&text, "tcm_serve_wal_appended_records_total") >= Some(3.0),
        "{text}"
    );
    assert!(metric(&text, "tcm_serve_wal_appended_bytes_total") > Some(0.0), "{text}");

    // A job that blows its wall-clock deadline lands in the failed
    // family of the same counters and histogram.
    let mut doomed = sweep_spec();
    doomed.deadline_ms = Some(1);
    if let JobKind::Sweep(sweep) = &mut doomed.kind {
        sweep.horizon = 50_000_000;
    }
    let id = client.submit(doomed).expect("submit doomed");
    let (state, detail) = client.watch(id, |_| {}).expect("watch doomed");
    assert_eq!(state, JobState::Failed, "{detail}");
    let text = client.metrics().expect("post-failure scrape");
    assert_eq!(
        metric(&text, "tcm_serve_jobs_completed_total{state=\"failed\"}"),
        Some(1.0),
        "{text}"
    );
    assert_eq!(
        metric(&text, "tcm_serve_job_duration_ms_count{state=\"failed\"}"),
        Some(1.0),
        "{text}"
    );

    client.drain().expect("drain");
    assert_eq!(handle.join().expect("join"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
