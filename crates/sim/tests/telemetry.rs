//! Telemetry integration: the observation-only guarantee plus
//! end-to-end trace and metric content from real simulations.
//!
//! The golden-fingerprint gate (`tests/golden_fingerprints.rs` at the
//! workspace root) already proves the full paper lineup is bit-identical
//! with telemetry on; these tests exercise the snapshot's *content* —
//! events round-trip through JSONL, and the metrics registry agrees
//! with the `RunResult` it observed.

use tcm_core::TcmParams;
use tcm_sim::{CellError, CellFailureKind, EvalResult, PolicyKind, RunConfig, Session};
use tcm_telemetry::{
    event_to_jsonl, events_to_jsonl, labeled, parse_jsonl, TelemetryConfig, TraceEvent,
};
use tcm_types::SystemConfig;
use tcm_workload::random_workload;

/// One TCM cell on an 8-thread machine, with a quantum short enough
/// that clustering engages several times within the horizon.
fn eval(telemetry: Option<TelemetryConfig>) -> EvalResult {
    let cfg = SystemConfig::builder()
        .num_threads(8)
        .build()
        .expect("test config is valid");
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(600_000)
            .telemetry(telemetry)
            .build(),
    );
    let policy = PolicyKind::Tcm(TcmParams {
        quantum: 100_000,
        ..TcmParams::paper_default(8)
    });
    let result = session
        .sweep()
        .policies([policy])
        .workloads([random_workload(3, 8, 0.75)])
        .run();
    assert!(result.is_complete(), "telemetry cell must not fail");
    result.cells()[0].result.clone()
}

#[test]
fn results_are_bit_identical_with_telemetry_enabled() {
    if tcm_telemetry::TELEMETRY_IMPL == "off" {
        return; // hooks compiled out: no snapshots to inspect
    }
    let off = eval(None);
    let on = eval(Some(TelemetryConfig::default()));
    assert!(off.telemetry.is_none(), "disabled run carries no snapshot");
    assert!(on.telemetry.is_some(), "enabled run returns a snapshot");
    assert_eq!(off.run, on.run, "telemetry must be observation-only");
    assert_eq!(off.slowdowns, on.slowdowns);
    assert_eq!(off.speedups, on.speedups);
}

#[test]
fn real_run_events_round_trip_through_jsonl() {
    if tcm_telemetry::TELEMETRY_IMPL == "off" {
        return; // hooks compiled out: no snapshots to inspect
    }
    let snapshot = eval(Some(TelemetryConfig::default()))
        .telemetry
        .expect("enabled run returns a snapshot");
    assert!(!snapshot.events.is_empty(), "a real run emits events");
    assert!(
        snapshot
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::QuantumBoundary { .. })),
        "six quanta elapsed, so boundaries must be traced"
    );
    let text = events_to_jsonl(&snapshot.events);
    let parsed = parse_jsonl(&text);
    assert_eq!(parsed.len(), snapshot.events.len(), "no event lost");
    for (p, e) in parsed.iter().zip(&snapshot.events) {
        // Serialized comparison is bit-exact even for NaN floats.
        assert_eq!(event_to_jsonl(p), event_to_jsonl(e));
    }
}

#[test]
fn metrics_registry_agrees_with_the_run_result() {
    if tcm_telemetry::TELEMETRY_IMPL == "off" {
        return; // hooks compiled out: no snapshots to inspect
    }
    let result = eval(Some(TelemetryConfig::default()));
    let metrics = &result.telemetry.as_ref().expect("snapshot").metrics;
    let run = &result.run;

    assert_eq!(metrics.counter("requests_serviced"), Some(run.total_serviced));
    assert_eq!(metrics.counter("requests_spilled"), Some(run.spilled));
    assert_eq!(
        metrics.gauge("row_hit_rate").map(f64::to_bits),
        Some(run.row_hit_rate.to_bits()),
        "gauge is bit-equal to the RunResult's rate"
    );
    let depth = metrics.histogram("queue_depth").expect("depth histogram");
    assert!(depth.total() > 0, "every serviced request was observed");

    // Sampled series: queue depth and bus utilization per channel.
    assert!(metrics
        .series(&labeled("queue_depth", &[("channel", "0")]))
        .is_some_and(|s| !s.is_empty()));
    assert!(metrics
        .series(&labeled("bus_utilization", &[("channel", "0")]))
        .is_some_and(|s| !s.is_empty()));
}

#[test]
fn tcm_cluster_bandwidth_shares_partition_the_bus() {
    if tcm_telemetry::TELEMETRY_IMPL == "off" {
        return; // hooks compiled out: no snapshots to inspect
    }
    let snapshot = eval(Some(TelemetryConfig::default()))
        .telemetry
        .expect("snapshot");
    let metrics = &snapshot.metrics;
    let latency = metrics
        .series(&labeled("bw_share", &[("cluster", "latency")]))
        .expect("latency-cluster share series");
    let bandwidth = metrics
        .series(&labeled("bw_share", &[("cluster", "bandwidth")]))
        .expect("bandwidth-cluster share series");
    assert!(!latency.is_empty(), "at least one quantum elapsed");
    assert_eq!(latency.len(), bandwidth.len(), "shares sampled together");
    for ((at_l, share_l), (at_b, share_b)) in latency.iter().zip(bandwidth) {
        assert_eq!(at_l, at_b, "both clusters sampled at the same boundary");
        assert!(
            (share_l + share_b - 1.0).abs() < 1e-9,
            "the two clusters partition total bandwidth: {share_l} + {share_b}"
        );
    }
}

#[test]
fn structured_failure_line_is_stable_and_greppable() {
    let err = CellError {
        policy: 0,
        workload: 1,
        seed: 2,
        policy_label: "TCM".into(),
        workload_name: "mix3".into(),
        seed_value: 7,
        attempts: 2,
        max_attempts: 2,
        elapsed: std::time::Duration::from_millis(450),
        kind: CellFailureKind::Timeout(123_456),
        controller: None,
    };
    let line = err.structured_line();
    assert!(
        line.starts_with(
            "cell-failure policy=\"TCM\" workload=\"mix3\" seed=7 kind=timeout \
             attempt=2 max_attempts=2 elapsed_ms=450 detail=\""
        ),
        "unexpected shape: {line}"
    );

    // Quotes inside the detail are flattened so the line stays
    // splittable on `"`-delimited fields.
    let panicked = CellError {
        kind: CellFailureKind::Panic("boom \"inner\" quote".into()),
        attempts: 1,
        ..err
    };
    let line = panicked.structured_line();
    assert!(line.contains("kind=panic"), "{line}");
    assert!(line.contains("'inner'"), "{line}");
    assert_eq!(
        line.matches('"').count(),
        6,
        "exactly the three quoted fields: {line}"
    );

    // An attributed failure appends the controller as a trailing field.
    let attributed = CellError {
        controller: Some(tcm_types::ControllerId::new(1)),
        ..panicked
    };
    let line = attributed.structured_line();
    assert!(line.ends_with(" controller=mc1"), "{line}");
}
