//! Robustness-layer integration tests: the forward-progress watchdog,
//! the DRAM protocol checker's transparency, and panic isolation in
//! sweeps.

use tcm_core::TcmParams;
use tcm_sched::{FrFcfs, PickContext, Scheduler};
use tcm_sim::{PolicyKind, RunConfig, Session, System};
use tcm_types::{Cycle, Request, SimError, SystemConfig};
use tcm_workload::random_workload;

fn cfg(threads: usize) -> SystemConfig {
    SystemConfig::builder()
        .num_threads(threads)
        .build()
        .expect("config is valid")
}

/// A deliberately broken policy: its `next_tick` violates the trait's
/// "strictly after `now`" contract, so the event loop would re-process
/// scheduler ticks at a frozen cycle forever.
#[derive(Debug)]
struct SpinningScheduler;

impl Scheduler for SpinningScheduler {
    fn name(&self) -> &'static str {
        "spin"
    }

    fn pick(&mut self, _pending: &[Request], _ctx: &PickContext) -> usize {
        0
    }

    fn next_tick(&self, now: Cycle) -> Option<Cycle> {
        Some(now) // broken: must be strictly after `now`
    }
}

#[test]
fn watchdog_catches_a_same_cycle_livelock() {
    let c = cfg(2);
    let w = random_workload(0, 2, 0.75);
    let mut sys = System::new(&c, &w, Box::new(SpinningScheduler), 0);
    let err = sys
        .try_run(100_000)
        .expect_err("a spinning scheduler must be caught");
    match err {
        SimError::Stalled(report) => {
            assert!(!report.summary().is_empty(), "diagnostic must not be empty");
            assert!(
                report.events_since_retire > 0,
                "the spin shows up as events without retirement"
            );
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

#[test]
fn watchdog_reports_missing_forward_progress() {
    // A healthy run with an absurdly tight stall limit: the first
    // hundreds-of-cycles DRAM round trip exceeds it, which exercises the
    // cycle-gap detection path and the diagnostic snapshot.
    let c = cfg(2);
    let w = random_workload(1, 2, 1.0);
    let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
    sys.set_watchdog(Some(10));
    let err = sys.try_run(100_000).expect_err("limit 10 must trip");
    match err {
        SimError::Stalled(report) => {
            assert!(report.total_outstanding() > 0, "requests were in flight");
            assert!(report.now.saturating_sub(report.last_retire) > 10);
            let summary = report.summary();
            assert!(summary.contains("outstanding"), "summary: {summary}");
        }
        other => panic!("expected Stalled, got {other}"),
    }
    // The same run with the watchdog disabled finishes.
    let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
    sys.set_watchdog(None);
    assert!(sys.try_run(100_000).is_ok());
}

#[test]
fn protocol_checker_is_observation_only() {
    let c = cfg(4);
    let w = random_workload(2, 4, 0.75);
    let mut with_checker = System::new(&c, &w, Box::new(FrFcfs::new()), 3);
    with_checker.set_verification(true);
    assert!(with_checker.verification_enabled());
    let mut without = System::new(&c, &w, Box::new(FrFcfs::new()), 3);
    without.set_verification(false);
    assert!(!without.verification_enabled());
    let checked = with_checker
        .try_run(150_000)
        .expect("the real channel obeys its own protocol");
    let unchecked = without.try_run(150_000).expect("healthy run");
    assert_eq!(checked, unchecked, "checker must not perturb results");
}

#[test]
fn paper_lineup_passes_verification() {
    let c = cfg(4);
    let w = random_workload(4, 4, 1.0);
    for policy in PolicyKind::paper_lineup(4) {
        let mut sys = System::new(&c, &w, policy.build(4, &c), 11);
        sys.set_verification(true);
        sys.try_run(120_000)
            .unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
    }
}

/// `cluster_thresh` 0.0 fails `TcmParams::validate`, so building the
/// policy panics inside the sweep cell — a deterministic stand-in for
/// any mid-cell panic.
fn panicking_policy() -> PolicyKind {
    PolicyKind::Tcm(TcmParams {
        cluster_thresh: 0.0,
        ..TcmParams::paper_default(4)
    })
}

#[test]
fn sweep_isolates_a_panicking_cell() {
    let rc = RunConfig::builder()
        .system(cfg(4))
        .horizon(60_000)
        .build();
    let workloads = || (0..2).map(|s| random_workload(s, 4, 0.75));

    let session = Session::new(rc.clone());
    let mixed = session
        .sweep()
        .policies([PolicyKind::FrFcfs, panicking_policy(), PolicyKind::Fcfs])
        .workloads(workloads())
        .run_parallel(3);

    assert!(!mixed.is_complete());
    assert_eq!(mixed.failures().len(), 2, "one failure per workload");
    assert_eq!(mixed.stats().failed, 2);
    assert_eq!(mixed.cells().len(), 4, "healthy cells all survive");
    for failure in mixed.failures() {
        assert_eq!(failure.policy, 1);
        assert_eq!(failure.attempts, 1, "panics are deterministic: no retry");
        let text = failure.to_string();
        assert!(text.contains("panicked"), "failure text: {text}");
        assert!(
            text.contains("seed"),
            "failure text names the seed: {text}"
        );
        assert!(mixed.try_get(failure.policy, failure.workload, failure.seed).is_none());
    }

    // The surviving cells are bit-identical to a sweep that never
    // contained the poisoned policy.
    let clean = Session::new(rc)
        .sweep()
        .policies([PolicyKind::FrFcfs, PolicyKind::Fcfs])
        .workloads(workloads())
        .run();
    assert!(clean.is_complete());
    for w in 0..2 {
        assert_eq!(mixed.get(0, w, 0), clean.get(0, w, 0), "FR-FCFS");
        assert_eq!(mixed.get(2, w, 0), clean.get(1, w, 0), "FCFS");
    }
}

#[test]
fn sweep_surfaces_typed_sim_errors() {
    // An impossible watchdog limit turns every cell into a typed
    // `Stalled` failure rather than a panic.
    let rc = RunConfig::builder()
        .system(cfg(4))
        .horizon(60_000)
        .watchdog(Some(1))
        .build();
    let session = Session::new(rc);
    let result = session
        .sweep()
        .policies([PolicyKind::FrFcfs])
        .workloads([random_workload(0, 4, 1.0)])
        .run();
    assert_eq!(result.failures().len(), 1);
    let text = result.failures()[0].to_string();
    assert!(text.contains("stalled"), "failure text: {text}");
}
