//! Fault injection on the multi-controller engine: chaos plans route
//! through `Topology::partition` to the owning shard, coordination
//! faults quarantine exactly the controller they strike, sharded
//! execution stays bit-identical across host counts under any plan,
//! and durable sweeps (checkpoint/resume, deadlines) now cover
//! multi-controller cells too.

use std::path::PathBuf;
use tcm_chaos::{FaultKind, FaultPlan, FaultSpec};
use tcm_core::TcmParams;
use tcm_sim::{
    CellFailureKind, MultiSystem, PolicyKind, RunConfig, Session, SweepResult,
};
use tcm_telemetry::{DegradationAnomaly, QuarantineReason};
use tcm_types::{ControllerId, SimError, SystemConfig, Topology};
use tcm_workload::{random_workload, WorkloadSpec};

const HORIZON: u64 = 120_000;

fn cfg(threads: usize, topology: &str) -> SystemConfig {
    SystemConfig::builder()
        .num_threads(threads)
        .topology(Topology::parse(topology).expect("topology parses"))
        .build()
        .expect("config is valid")
}

/// TCM with quanta short enough that a test-sized horizon crosses
/// several meta-controller exchanges (and a quarantine round-trip).
fn fast_tcm(threads: usize) -> PolicyKind {
    PolicyKind::Tcm(TcmParams {
        quantum: 20_000,
        ..TcmParams::paper_default(threads)
    })
}

fn build(cfg: &SystemConfig, policy: &PolicyKind, workload: &WorkloadSpec) -> MultiSystem {
    let n = cfg.num_threads;
    let controllers = (0..cfg.topology.num_controllers())
        .map(|_| policy.build_controller(n, cfg))
        .collect();
    MultiSystem::new(cfg, workload, controllers, policy.build_meta(n, cfg), 7)
}

/// A blackout that lands *after* the target controller's first clean
/// exchange (first boundary at 20k), so staleness is attributable.
fn blackout_on(controller: usize) -> FaultPlan {
    FaultPlan::none().with_fault(
        FaultSpec::new(FaultKind::ControllerBlackout, 30_000).on_controller(controller),
    )
}

#[test]
fn chaos_outcomes_are_bit_identical_across_host_counts() {
    let cfg = cfg(4, "2x2");
    let workload = random_workload(11, 4, 0.75);

    // Ok outcome: a quarantine round-trip must not disturb host-count
    // invariance — the fault fires at a barrier, never inside a window.
    let run_ok = |hosts: usize| {
        let mut sys = build(&cfg, &fast_tcm(4), &workload);
        sys.set_hosts(hosts);
        sys.install_chaos(&blackout_on(1));
        let result = sys.try_run(HORIZON).expect("quarantine is graceful");
        let events: Vec<String> = sys.degradation_events().iter().map(|a| a.to_string()).collect();
        (result, events)
    };
    let (base_result, base_events) = run_ok(1);
    assert!(!base_events.is_empty(), "the blackout must be detected");
    for hosts in [2, 3] {
        let (result, events) = run_ok(hosts);
        assert_eq!(result, base_result, "diverged at {hosts} hosts");
        assert_eq!(events, base_events, "event log diverged at {hosts} hosts");
    }

    // Err outcome: a channel fault on the *last* global channel is
    // detected identically — same violation, same site — at any count.
    let run_err = |hosts: usize| {
        let mut sys = build(&cfg, &PolicyKind::FrFcfs, &workload);
        sys.set_hosts(hosts);
        sys.install_chaos(&FaultPlan::none().with_fault(
            FaultSpec::new(FaultKind::TimingViolation, 30_000).on_channel(3),
        ));
        sys.try_run(HORIZON).expect_err("the fault must be detected")
    };
    let base_err = run_err(1);
    match &base_err {
        SimError::InvariantViolation(v) => assert_eq!(v.channel.index(), 3, "wrong site"),
        other => panic!("expected an invariant violation, got {other}"),
    }
    for hosts in [2, 3] {
        assert_eq!(run_err(hosts), base_err, "error diverged at {hosts} hosts");
    }
}

#[test]
fn zero_fault_plan_is_a_no_op_on_the_multi_engine() {
    let cfg = cfg(4, "2x2");
    let workload = random_workload(3, 4, 0.75);
    let mut bare = build(&cfg, &fast_tcm(4), &workload);
    bare.enable_verification();
    let baseline = bare.try_run(HORIZON).expect("clean run");

    let mut chaos = build(&cfg, &fast_tcm(4), &workload);
    chaos.set_hosts(3);
    chaos.install_chaos(&FaultPlan::none());
    let with_plan = chaos.try_run(HORIZON).expect("clean run");
    assert_eq!(baseline, with_plan, "empty plan must be a strict no-op");
    assert!(
        chaos.degradation_events().is_empty(),
        "no false quarantines on a clean run"
    );
}

/// The headline scenario: a blackout on one controller of a 2x2 machine
/// quarantines that controller alone — typed events name it, the run
/// completes, and after the configured clean quanta it is re-admitted.
#[test]
fn blackout_quarantines_only_the_struck_controller() {
    let cfg = cfg(4, "2x2");
    let workload = random_workload(5, 4, 0.75);
    let mut sys = build(&cfg, &fast_tcm(4), &workload);
    sys.install_chaos(&blackout_on(1));
    let run = sys.try_run(HORIZON).expect("quarantine must not kill the run");
    assert!(run.total_serviced > 0, "the system kept serving memory");

    let events = sys.degradation_events();
    let mut quarantined = 0;
    let mut readmitted = 0;
    for event in events {
        match event {
            DegradationAnomaly::ControllerQuarantined { cycle, controller, reason } => {
                assert_eq!(*controller, 1, "only the struck controller is quarantined");
                assert_eq!(*reason, QuarantineReason::StaleSample);
                assert_eq!(*cycle, 40_000, "detected at the first boundary after the fault");
                quarantined += 1;
            }
            DegradationAnomaly::ControllerReadmitted { controller, clean_quanta, .. } => {
                assert_eq!(*controller, 1, "only the struck controller re-admits");
                assert_eq!(*clean_quanta, 2, "after the configured clean streak");
                readmitted += 1;
            }
            other => panic!("unexpected anomaly: {other}"),
        }
    }
    assert_eq!(quarantined, 1, "exactly one quarantine: {events:?}");
    assert_eq!(readmitted, 1, "exactly one re-admission: {events:?}");

    // The other three controllers never degraded: a run struck on mc1
    // differs from a clean run (mc1's quanta fell back to FR-FCFS), but
    // still completes with every request conserved.
    let mut clean = build(&cfg, &fast_tcm(4), &workload);
    clean.enable_verification();
    let clean_run = clean.try_run(HORIZON).expect("clean run");
    assert_eq!(run.retired.len(), clean_run.retired.len());
}

#[test]
fn scheduler_spin_stall_names_the_frozen_controller() {
    let cfg = cfg(4, "2x2");
    let workload = random_workload(1, 4, 1.0);
    let mut sys = build(&cfg, &PolicyKind::FrFcfs, &workload);
    sys.set_hosts(2);
    sys.install_chaos(&FaultPlan::none().with_fault(
        FaultSpec::new(FaultKind::SchedulerSpin, 30_000).on_controller(1),
    ));
    match sys.try_run(HORIZON).expect_err("a spinning shard must be caught") {
        SimError::Stalled(report) => {
            assert_eq!(
                report.controller,
                Some(ControllerId::new(1)),
                "the stall is attributed to the spinning controller: {}",
                report.summary()
            );
            assert!(report.summary().contains("mc1"), "summary names the controller");
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

#[test]
fn out_of_range_chaos_targets_are_rejected_up_front() {
    let topo = Topology::parse("2x2").expect("topology parses");

    // Channel index past the topology: typed error, field `chaos`.
    let plan = FaultPlan::none().with_fault(
        FaultSpec::new(FaultKind::TimingViolation, 1_000).on_channel(4),
    );
    let err = plan.validate(&topo).expect_err("channel 4 of 4 is out of range");
    assert_eq!(err.field(), "chaos", "typed as a chaos-plan config error: {err}");

    // Controller index past the topology — including on a flat machine,
    // where anything but controller 0 is meaningless.
    let plan = FaultPlan::none().with_fault(
        FaultSpec::new(FaultKind::SchedulerSpin, 1_000).on_controller(2),
    );
    assert!(plan.validate(&topo).is_err(), "controller 2 of 2 is out of range");
    let flat = Topology::parse("4").expect("topology parses");
    assert!(plan.validate(&flat).is_err(), "a flat machine has only mc0");

    // End to end: a sweep refuses the cell with a typed failure instead
    // of silently clamping the target.
    let rc = RunConfig::builder()
        .system(cfg(4, "2x2"))
        .horizon(40_000)
        .chaos(Some(FaultPlan::none().with_fault(
            FaultSpec::new(FaultKind::TimingViolation, 1_000).on_channel(99),
        )))
        .build();
    let result = Session::new(rc)
        .sweep()
        .policies([PolicyKind::FrFcfs])
        .workloads([random_workload(0, 4, 0.75)])
        .run();
    assert!(!result.is_complete(), "the invalid plan must fail the cell");
    let failure = &result.failures()[0];
    assert!(
        matches!(&failure.kind, CellFailureKind::Sim(SimError::Config(_))),
        "typed rejection, not a crash: {failure}"
    );
}

/// Unique scratch path per test (the suite runs tests concurrently).
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tcm-ckpt-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn chaotic_multi_sweep_resumes_bit_identically() {
    // Multi-controller cells now flow through the same durability path
    // as flat ones: checkpoint a chaos-bearing 2x2 sweep, emulate a kill
    // by truncating to a prefix, and resume into a fresh session.
    let run_config = || {
        RunConfig::builder()
            .system(cfg(4, "2x2"))
            .horizon(HORIZON)
            .intra_hosts(2)
            .chaos(Some(blackout_on(1)))
            .build()
    };
    let sweep_with = |session: &Session, checkpoint: Option<&PathBuf>| -> SweepResult {
        let mut sweep = session
            .sweep()
            .policies([fast_tcm(4), PolicyKind::FrFcfs])
            .workloads((0..2).map(|s| random_workload(s, 4, 0.75)))
            .seeds([0, 17]);
        if let Some(path) = checkpoint {
            sweep = sweep.checkpoint(path.clone());
        }
        sweep.run_parallel(2)
    };
    let path = scratch("chaos-multi");
    let _ = std::fs::remove_file(&path);

    let reference = sweep_with(&Session::new(run_config()), None);
    assert!(reference.is_complete(), "quarantine is graceful in every cell");

    let first = sweep_with(&Session::new(run_config()), Some(&path));
    assert!(first.is_complete());
    let full = std::fs::read_to_string(&path).expect("checkpoint exists");
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 1 + reference.cells().len());
    std::fs::write(&path, format!("{}\n", lines[..1 + 3].join("\n")))
        .expect("truncate checkpoint");

    let resumed = sweep_with(&Session::new(run_config()), Some(&path));
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats().resumed, 3, "restored the surviving prefix");
    assert_eq!(
        resumed.cells(),
        reference.cells(),
        "merged result is bit-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_file(&path);
}
