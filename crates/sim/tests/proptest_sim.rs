//! Property tests for the simulator layer: event-queue ordering against a
//! reference model, metric identities, and whole-system robustness over
//! random workloads.

use proptest::prelude::*;
use tcm_sim::{workload_metrics, Event, EventQueue, IpcPair, MultiSystem, PolicyKind, System};
use tcm_types::{SystemConfig, Topology};
use tcm_workload::{BenchmarkProfile, WorkloadSpec};

/// The full policy lineup used by the whole-system properties.
fn policy_lineup(n: usize) -> [PolicyKind; 6] {
    [
        PolicyKind::Fcfs,
        PolicyKind::FrFcfs,
        PolicyKind::Stfm(Default::default()),
        PolicyKind::ParBs(Default::default()),
        PolicyKind::Atlas(Default::default()),
        PolicyKind::Tcm(tcm_core::TcmParams::reproduction_default(n)),
    ]
}

/// Builds a random workload from proptest-drawn `(mpki, rbl, blp)`
/// profile triples.
fn workload_from(profiles: &[(f64, f64, f64)]) -> WorkloadSpec {
    let threads: Vec<BenchmarkProfile> = profiles
        .iter()
        .enumerate()
        .map(|(i, &(mpki, rbl, blp))| BenchmarkProfile::new(format!("p{i}"), mpki, rbl, blp))
        .collect();
    WorkloadSpec::new("prop", threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue pops in (cycle, insertion) order — checked against
    /// a sorted reference model.
    #[test]
    fn event_queue_matches_reference_sort(cycles in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for &c in &cycles {
            q.push(c, Event::SchedTick);
        }
        let mut reference: Vec<(u64, usize)> = cycles.iter().copied().zip(0..).collect();
        reference.sort_by_key(|&(c, i)| (c, i));
        let mut popped = Vec::new();
        while let Some((c, _)) = q.pop() {
            popped.push(c);
        }
        let expected: Vec<u64> = reference.into_iter().map(|(c, _)| c).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Metric identities hold for arbitrary IPC pairs: WS <= N,
    /// HS <= min speedup... HS <= 1 when nothing speeds up, and
    /// maxSD >= every individual slowdown's lower bound.
    #[test]
    fn metric_identities(
        pairs in proptest::collection::vec((0.001..3.0f64, 0.001..3.0f64), 1..32),
    ) {
        let ipc: Vec<IpcPair> = pairs
            .iter()
            .map(|&(shared, alone)| IpcPair { shared: shared.min(alone), alone })
            .collect();
        let m = workload_metrics(&ipc);
        prop_assert!(m.weighted_speedup <= ipc.len() as f64 + 1e-9);
        prop_assert!(m.weighted_speedup >= 0.0);
        prop_assert!(m.max_slowdown >= 1.0 - 1e-9, "shared <= alone => slowdown >= 1");
        prop_assert!(m.harmonic_speedup <= 1.0 + 1e-9);
        // HS <= WS/N <= max speedup.
        prop_assert!(m.harmonic_speedup <= m.weighted_speedup / ipc.len() as f64 + 1e-9);
    }

    /// The full system never panics, never loses requests, and always
    /// makes progress for arbitrary small workloads under every policy.
    #[test]
    fn system_robustness(
        profiles in proptest::collection::vec(
            (0.0..80.0f64, 0.0..1.0f64, 1.0..8.0f64),
            1..6,
        ),
        policy_index in 0usize..6,
        seed in any::<u64>(),
    ) {
        let n = profiles.len();
        let cfg = SystemConfig::builder().num_threads(n).build().unwrap();
        let workload = workload_from(&profiles);
        let kinds = policy_lineup(n);
        let kind = &kinds[policy_index % kinds.len()];
        let mut sys = System::new(&cfg, &workload, kind.build(n, &cfg), seed);
        let horizon = 120_000;
        let r = sys.run(horizon);
        prop_assert_eq!(r.cycles, horizon);
        let injected: u64 = r.misses.iter().sum();
        prop_assert!(r.total_serviced <= injected);
        for (i, &retired) in r.retired.iter().enumerate() {
            prop_assert!(retired > 0, "thread {i} made no progress");
            prop_assert!(retired <= horizon * cfg.issue_width as u64);
        }
        prop_assert!((0.0..=1.0).contains(&r.row_hit_rate));
    }

    /// Skip-ahead stepping is bit-identical to the per-event reference
    /// path: the lane-based event queue plus strided probe checks must
    /// produce exactly the same `RunResult` (every counter, every float
    /// bit) as the plain binary-heap ordering on random workloads under
    /// every policy. This is the property the SoA/skip-ahead hot path is
    /// allowed to assume.
    #[test]
    fn skip_ahead_matches_per_event_reference(
        profiles in proptest::collection::vec(
            (0.0..80.0f64, 0.0..1.0f64, 1.0..8.0f64),
            2..6,
        ),
        policy_index in 0usize..6,
        seed in any::<u64>(),
    ) {
        let n = profiles.len();
        let cfg = SystemConfig::builder().num_threads(n).build().unwrap();
        let workload = workload_from(&profiles);
        let kinds = policy_lineup(n);
        let kind = &kinds[policy_index % kinds.len()];
        let horizon = 150_000;

        let mut fast = System::new(&cfg, &workload, kind.build(n, &cfg), seed);
        let fast_result = fast.run(horizon);

        let mut reference = System::new(&cfg, &workload, kind.build(n, &cfg), seed);
        reference.set_reference_event_order(true);
        let reference_result = reference.run(horizon);

        prop_assert_eq!(fast_result, reference_result);
    }

    /// The multi-controller window loop's fast paths (empty-window
    /// skip-ahead, adaptive inline stepping, reused merge scratch) keep
    /// the determinism contract: results are bit-identical whichever
    /// host count partitions the shards.
    #[test]
    fn multi_window_skip_is_host_count_invariant(
        profiles in proptest::collection::vec(
            (0.0..60.0f64, 0.0..1.0f64, 1.0..8.0f64),
            2..6,
        ),
        policy_index in 0usize..6,
        hosts in 2usize..5,
        seed in any::<u64>(),
    ) {
        let n = profiles.len();
        let cfg = SystemConfig::builder()
            .num_threads(n)
            .topology(Topology::uniform(2, 2))
            .build()
            .unwrap();
        let workload = workload_from(&profiles);
        let kinds = policy_lineup(n);
        let kind = &kinds[policy_index % kinds.len()];
        let horizon = 100_000;

        let build = |kind: &PolicyKind| {
            let controllers = (0..cfg.topology.num_controllers())
                .map(|_| kind.build_controller(n, &cfg))
                .collect();
            MultiSystem::new(&cfg, &workload, controllers, kind.build_meta(n, &cfg), seed)
        };
        let mut sequential = build(kind);
        sequential.set_hosts(1);
        let baseline = sequential.run(horizon);

        let mut sharded = build(kind);
        sharded.set_hosts(hosts);
        prop_assert_eq!(sharded.run(horizon), baseline);
    }
}
