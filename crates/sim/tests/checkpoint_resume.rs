//! Durable-sweep integration tests: incremental checkpointing, resume
//! after an interrupted run, and per-cell wall-clock deadlines.
//!
//! The kill-mid-flight scenario is emulated by truncating the
//! checkpoint file to the header plus a prefix of completed cells —
//! exactly what a process killed between two atomic publishes leaves
//! behind — then resuming into a fresh `Session`.

use std::path::PathBuf;
use std::time::Duration;
use tcm_sim::{CellFailureKind, PolicyKind, RunConfig, Session, SweepResult};
use tcm_types::SystemConfig;
use tcm_workload::random_workload;

fn cfg(threads: usize) -> SystemConfig {
    SystemConfig::builder()
        .num_threads(threads)
        .build()
        .expect("config is valid")
}

fn run_config() -> RunConfig {
    RunConfig::builder().system(cfg(4)).horizon(60_000).build()
}

fn policies() -> [PolicyKind; 3] {
    [PolicyKind::Fcfs, PolicyKind::FrFcfs, PolicyKind::FairQueueing]
}

fn sweep_with(session: &Session, checkpoint: Option<&PathBuf>) -> SweepResult {
    let mut sweep = session
        .sweep()
        .policies(policies())
        .workloads((0..2).map(|s| random_workload(s, 4, 0.75)))
        .seeds([0, 17]);
    if let Some(path) = checkpoint {
        sweep = sweep.checkpoint(path.clone());
    }
    sweep.run_parallel(2)
}

/// Unique scratch path per test (the suite runs tests concurrently).
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tcm-ckpt-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let path = scratch("resume");
    let _ = std::fs::remove_file(&path);

    // Reference: the uninterrupted run, no checkpointing involved.
    let reference = sweep_with(&Session::new(run_config()), None);
    assert!(reference.is_complete());

    // First attempt, checkpointed. Then emulate a kill between two
    // atomic publishes: keep the header plus the first three cells.
    let first = sweep_with(&Session::new(run_config()), Some(&path));
    assert!(first.is_complete());
    let full = std::fs::read_to_string(&path).expect("checkpoint exists");
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(
        lines.len(),
        1 + reference.cells().len(),
        "header + one line per completed cell"
    );
    let kept = 1 + 3;
    std::fs::write(&path, format!("{}\n", lines[..kept].join("\n")))
        .expect("truncate checkpoint");

    // Resume into a fresh session: three cells restore, nine re-run.
    let resumed = sweep_with(&Session::new(run_config()), Some(&path));
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats().resumed, 3, "restored the surviving prefix");
    assert_eq!(
        resumed.cells(),
        reference.cells(),
        "merged result is bit-identical to the uninterrupted run"
    );
    assert_eq!(resumed.stats().cells, reference.stats().cells);

    // The republished checkpoint is whole again: a second resume
    // restores everything and simulates nothing.
    let replayed = sweep_with(&Session::new(run_config()), Some(&path));
    assert_eq!(replayed.stats().resumed, reference.cells().len());
    assert_eq!(replayed.cells(), reference.cells());

    let _ = std::fs::remove_file(&path);
}

/// `kill -9` lands **mid-republish**: the `.tmp` sibling holds a
/// half-written rewrite (never renamed into place) and the published
/// file itself ends in a torn line (the tail of an older, interrupted
/// append-era write). Resume must ignore both artifacts, restore the
/// intact prefix, and merge bit-identically — and the next publish must
/// clobber the stale `.tmp` rather than trip over it.
#[test]
fn kill_nine_mid_republish_leaves_a_resumable_checkpoint() {
    let path = scratch("midpublish");
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&tmp);

    let reference = sweep_with(&Session::new(run_config()), None);
    assert!(reference.is_complete());

    let first = sweep_with(&Session::new(run_config()), Some(&path));
    assert!(first.is_complete());
    let full = std::fs::read_to_string(&path).expect("checkpoint exists");
    let lines: Vec<&str> = full.lines().collect();

    // The crash scene: two intact cells, a torn third line in the
    // published file, and a half-written rewrite in the `.tmp` sibling.
    let torn = &lines[3][..lines[3].len() / 2];
    std::fs::write(&path, format!("{}\n{torn}", lines[..3].join("\n")))
        .expect("truncate checkpoint mid-line");
    std::fs::write(&tmp, &full[..full.len() / 3]).expect("stale tmp");

    let resumed = sweep_with(&Session::new(run_config()), Some(&path));
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats().resumed, 2, "torn tail dropped, prefix kept");
    assert_eq!(
        resumed.cells(),
        reference.cells(),
        "merged result is bit-identical to the uninterrupted run"
    );

    // The republish overwrote the stale tmp and renamed it away.
    assert!(!tmp.exists(), "publish must consume (not trip over) the stale .tmp");
    let republished = std::fs::read_to_string(&path).expect("checkpoint republished");
    assert_eq!(
        republished.lines().count(),
        1 + reference.cells().len(),
        "checkpoint is whole again after resume"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_from_a_different_grid_is_refused() {
    let path = scratch("mismatch");
    let _ = std::fs::remove_file(&path);

    // Checkpoint a *different* sweep (other policy axis) to the path.
    let session = Session::new(run_config());
    let other = session
        .sweep()
        .policies([PolicyKind::Fcfs])
        .workloads([random_workload(0, 4, 0.75)])
        .checkpoint(path.clone())
        .run();
    assert!(other.is_complete());

    // The real sweep must not adopt the foreign cells: everything
    // re-runs and the result matches a checkpoint-free reference.
    let resumed = sweep_with(&Session::new(run_config()), Some(&path));
    assert_eq!(resumed.stats().resumed, 0, "foreign grid: start fresh");
    let reference = sweep_with(&Session::new(run_config()), None);
    assert_eq!(resumed.cells(), reference.cells());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn expired_deadline_surfaces_as_timeout_without_poisoning_the_sweep() {
    // A zero deadline cancels every cell at its first stride check; the
    // failure is typed `Timeout`, labeled, and retried exactly once.
    let rc = RunConfig::builder()
        .system(cfg(4))
        .horizon(60_000)
        .cell_deadline(Some(Duration::ZERO))
        .build();
    let result = Session::new(rc)
        .sweep()
        .policies([PolicyKind::FrFcfs])
        .workloads([random_workload(0, 4, 0.75)])
        .run();
    assert!(!result.is_complete());
    assert_eq!(result.failures().len(), 1);
    let failure = &result.failures()[0];
    assert!(matches!(failure.kind, CellFailureKind::Timeout(_)));
    assert_eq!(failure.attempts, 2, "timeouts are retried once");
    let text = failure.to_string();
    assert!(text.contains("fr-fcfs") || text.contains("FR-FCFS"), "{text}");
    assert!(text.contains("seed"), "{text}");
    assert!(text.contains("deadline"), "{text}");

    // A generous deadline changes nothing: the sweep completes and is
    // bit-identical to one with no deadline at all.
    let timed = RunConfig::builder()
        .system(cfg(4))
        .horizon(60_000)
        .cell_deadline(Some(Duration::from_secs(3600)))
        .build();
    let with_deadline = sweep_with(&Session::new(timed), None);
    let without = sweep_with(&Session::new(run_config()), None);
    assert!(with_deadline.is_complete());
    assert_eq!(with_deadline.cells(), without.cells());
}
