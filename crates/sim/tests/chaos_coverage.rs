//! Detector-coverage matrix for the fault-injection layer: every
//! `tcm-chaos` fault class, injected end-to-end through a full
//! simulation, provokes exactly the detector it is mapped to — with the
//! correct invariant class and site — and a clean control run with the
//! detectors armed reports nothing.
//!
//! The zero-fault property is checked twice: once deterministically
//! against an explicit baseline, and once property-style across random
//! workloads (an installed-but-empty `FaultPlan` must be a strict
//! no-op, bit for bit).

use proptest::prelude::*;
use tcm_chaos::{FaultKind, FaultPlan, FaultSpec};
use tcm_core::TcmParams;
use tcm_sched::FrFcfs;
use tcm_sim::{PolicyKind, RunResult, System};
use tcm_types::{Cycle, Invariant, SimError, SystemConfig};
use tcm_workload::random_workload;

/// Single-channel pressure cooker: all traffic fights over one data
/// bus, so every channel-level fault has an eligible operation to
/// strike soon after it arms.
fn single_channel_cfg(threads: usize) -> SystemConfig {
    SystemConfig::builder()
        .num_threads(threads)
        .num_channels(1)
        .build()
        .expect("config is valid")
}

const FAULT_AT: Cycle = 20_000;
const HORIZON: Cycle = 200_000;

/// Runs a 4-thread, single-channel simulation under FR-FCFS with `plan`
/// installed (which also arms the protocol checker).
fn run_with_plan(plan: &FaultPlan) -> Result<RunResult, SimError> {
    let cfg = single_channel_cfg(4);
    let workload = random_workload(1, 4, 1.0);
    let mut sys = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
    sys.install_chaos(plan);
    sys.try_run(HORIZON)
}

/// Asserts that injecting `kind` surfaces an invariant violation of
/// class `expected` on the targeted channel, at or after the arm cycle.
fn assert_invariant_caught(kind: FaultKind, expected: Invariant) {
    let err = run_with_plan(&FaultPlan::single(kind, FAULT_AT))
        .expect_err("the injected fault must be detected");
    match err {
        SimError::InvariantViolation(v) => {
            assert_eq!(v.invariant, expected, "wrong detector class for {kind}");
            assert_eq!(v.channel.index(), 0, "wrong site for {kind}");
            assert!(
                v.cycle >= FAULT_AT,
                "{kind} detected at cycle {} before it armed at {FAULT_AT}",
                v.cycle
            );
            assert!(!v.detail.is_empty(), "violation must carry specifics");
        }
        other => panic!("expected an invariant violation for {kind}, got {other}"),
    }
}

#[test]
fn timing_violation_is_caught_by_the_bank_timing_invariant() {
    assert_invariant_caught(FaultKind::TimingViolation, Invariant::BankTiming);
}

#[test]
fn row_corruption_is_caught_by_the_row_state_invariant() {
    assert_invariant_caught(FaultKind::RowCorruption, Invariant::RowState);
}

#[test]
fn bus_overlap_is_caught_by_the_bus_overlap_invariant() {
    assert_invariant_caught(FaultKind::BusOverlap, Invariant::BusOverlap);
}

#[test]
fn duplicate_request_is_caught_by_the_conservation_invariant() {
    assert_invariant_caught(FaultKind::DuplicateRequest, Invariant::Conservation);
}

#[test]
fn dropped_request_is_caught_by_the_conservation_invariant() {
    assert_invariant_caught(FaultKind::DropRequest, Invariant::Conservation);
}

#[test]
fn spill_flood_is_caught_by_the_resource_bound_invariant() {
    assert_invariant_caught(FaultKind::SpillFlood, Invariant::ResourceBound);
}

#[test]
fn scheduler_spin_is_caught_by_the_livelock_watchdog() {
    let err = run_with_plan(&FaultPlan::single(FaultKind::SchedulerSpin, FAULT_AT))
        .expect_err("a spinning scheduler must be caught");
    match err {
        SimError::Stalled(report) => {
            assert!(!report.summary().is_empty(), "stall report must diagnose");
        }
        other => panic!("expected Stalled, got {other}"),
    }
}

#[test]
fn monitor_corruption_degrades_tcm_instead_of_failing_the_run() {
    // Short quantum so the corrupted counters reach a plausibility check
    // within a test-sized horizon.
    let params = TcmParams {
        quantum: 50_000,
        ..TcmParams::paper_default(4)
    };
    let cfg = single_channel_cfg(4);
    let workload = random_workload(1, 4, 1.0);
    let build = |chaos: bool| {
        let mut sys = System::new(
            &cfg,
            &workload,
            PolicyKind::Tcm(params).build(4, &cfg),
            0,
        );
        if chaos {
            sys.install_chaos(&FaultPlan::none().with_fault(
                FaultSpec::new(FaultKind::MonitorCorruption, 10_000).on_thread(1),
            ));
        } else {
            sys.enable_verification();
        }
        sys
    };

    let mut corrupted = build(true);
    let run = corrupted
        .try_run(HORIZON)
        .expect("degradation is graceful: the run itself completes");
    assert!(run.total_serviced > 0, "the system kept serving memory");
    let anomalies = corrupted.degradation_events();
    assert!(
        !anomalies.is_empty(),
        "the plausibility guard must log the anomaly"
    );
    assert!(
        anomalies[0].to_string().contains("implausible monitor data"),
        "anomaly names the cause: {}",
        anomalies[0]
    );

    let mut clean = build(false);
    clean.try_run(HORIZON).expect("control run is clean");
    assert!(
        clean.degradation_events().is_empty(),
        "no false positives on the clean control"
    );
}

#[test]
fn coordination_faults_are_inert_on_a_flat_machine() {
    // Blackout and skew strike the controller↔meta-controller exchange
    // at a quantum barrier; a flat single-controller machine has no such
    // exchange, so the two kinds must pass through a flat run without
    // detection — and without perturbing a single bit. Their detection
    // is covered end-to-end in `chaos_multi.rs`.
    let workload = random_workload(3, 4, 1.0);
    let cfg = single_channel_cfg(4);
    let mut bare = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
    bare.enable_verification();
    let baseline = bare.try_run(HORIZON).expect("clean run");
    for kind in FaultKind::ALL.into_iter().filter(|k| k.is_coordination_fault()) {
        let run = run_with_plan_seeded(&FaultPlan::single(kind, FAULT_AT), &workload);
        assert_eq!(baseline, run, "{kind} must be a no-op on a flat machine");
    }
}

#[test]
fn clean_control_run_reports_no_detections() {
    // Detectors armed, zero faults: the run must succeed.
    let run = run_with_plan(&FaultPlan::none()).expect("no false positives");
    assert!(run.total_serviced > 0);
}

#[test]
fn zero_fault_plan_is_bit_identical_to_no_chaos_layer() {
    let cfg = single_channel_cfg(4);
    let workload = random_workload(3, 4, 1.0);
    let mut bare = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
    bare.enable_verification();
    let baseline = bare.try_run(HORIZON).expect("clean run");
    let chaos = run_with_plan_seeded(&FaultPlan::none(), &workload);
    assert_eq!(baseline, chaos, "empty plan must be a strict no-op");
}

fn run_with_plan_seeded(plan: &FaultPlan, workload: &tcm_workload::WorkloadSpec) -> RunResult {
    let cfg = single_channel_cfg(workload.threads.len());
    let mut sys = System::new(&cfg, workload, Box::new(FrFcfs::new()), 0);
    sys.install_chaos(plan);
    sys.try_run(HORIZON).expect("clean run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form of the zero-fault guarantee, across workloads.
    #[test]
    fn zero_fault_plan_is_a_no_op_for_any_workload(seed in 0u64..64, tenths in 3u64..11) {
        let intensity = tenths as f64 / 10.0;
        let cfg = single_channel_cfg(4);
        let workload = random_workload(seed, 4, intensity);
        let mut bare = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
        bare.enable_verification();
        let baseline = bare.try_run(60_000).expect("clean run");
        let mut chaos = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
        chaos.install_chaos(&FaultPlan::none());
        let with_plan = chaos.try_run(60_000).expect("clean run");
        prop_assert_eq!(baseline, with_plan);
    }
}

#[test]
fn seeded_campaign_is_detected_and_replays_identically() {
    // A full campaign schedules every class at once; whichever detector
    // trips first wins, and equal seeds must reproduce the exact error.
    let cfg = single_channel_cfg(4);
    let workload = random_workload(1, 4, 1.0);
    let run = |plan: &FaultPlan| {
        let mut sys = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
        sys.install_chaos(plan);
        sys.try_run(HORIZON)
    };
    let plan = FaultPlan::campaign(7, HORIZON, 1, 4);
    let a = run(&plan).expect_err("a full campaign cannot pass unnoticed");
    let b = run(&FaultPlan::campaign(7, HORIZON, 1, 4))
        .expect_err("same seed, same campaign");
    assert_eq!(a, b, "campaign replay must be bit-identical");
}
