//! `tcm-run` — command-line front end for the simulator: run one
//! workload under one or more scheduling policies and print the paper's
//! metrics (optionally as JSON).
//!
//! ```text
//! tcm-run [--threads N] [--intensity F] [--seed S] [--cycles C]
//!         [--policies fr-fcfs,stfm,par-bs,atlas,fqm,tcm] [--json]
//!         [--workload A|B|C|D] [--workers W] [--verify]
//! ```
//!
//! Exit codes: 0 on success, 1 if any sweep cell failed (the failures
//! are reported on stderr; successful cells are still printed), 2 on
//! usage errors.
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p tcm-sim --bin tcm-run -- --intensity 1.0 --cycles 5000000
//! cargo run --release -p tcm-sim --bin tcm-run -- --workload B --json
//! ```

use std::fmt::Write as _;
use tcm_core::TcmParams;
use tcm_sched::{AtlasParams, ParBsParams, StfmParams};
use tcm_sim::{PolicyKind, RunConfig, Session};
use tcm_types::SystemConfig;
use tcm_workload::{random_workload, table5_workloads, WorkloadSpec};

struct PolicyOutput {
    policy: String,
    weighted_speedup: f64,
    harmonic_speedup: f64,
    max_slowdown: f64,
    slowdowns: Vec<f64>,
}

struct Output {
    workload: String,
    threads: usize,
    cycles: u64,
    benchmarks: Vec<String>,
    results: Vec<PolicyOutput>,
}

/// Minimal JSON emission (the build environment is offline, so the
/// workspace carries no serializer dependency).
mod json {
    use std::fmt::Write as _;

    pub fn string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    pub fn number(out: &mut String, v: f64) {
        if v.is_finite() {
            let _ = write!(out, "{v}");
        } else {
            out.push_str("null"); // matches serde_json's treatment of non-finite floats
        }
    }
}

impl Output {
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"workload\": ");
        json::string(&mut s, &self.workload);
        let _ = write!(s, ",\n  \"threads\": {},\n  \"cycles\": {}", self.threads, self.cycles);
        s.push_str(",\n  \"benchmarks\": [");
        for (i, b) in self.benchmarks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            json::string(&mut s, b);
        }
        s.push_str("],\n  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\n      \"policy\": ");
            json::string(&mut s, &r.policy);
            s.push_str(",\n      \"weighted_speedup\": ");
            json::number(&mut s, r.weighted_speedup);
            s.push_str(",\n      \"harmonic_speedup\": ");
            json::number(&mut s, r.harmonic_speedup);
            s.push_str(",\n      \"max_slowdown\": ");
            json::number(&mut s, r.max_slowdown);
            s.push_str(",\n      \"slowdowns\": [");
            for (j, sd) in r.slowdowns.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                json::number(&mut s, *sd);
            }
            s.push_str("]\n    }");
        }
        s.push_str("\n  ]\n}");
        s
    }
}

fn parse_policy(name: &str, n: usize) -> Result<PolicyKind, String> {
    Ok(match name {
        "fcfs" => PolicyKind::Fcfs,
        "fr-fcfs" | "frfcfs" => PolicyKind::FrFcfs,
        "stfm" => PolicyKind::Stfm(StfmParams::paper_default()),
        "par-bs" | "parbs" => PolicyKind::ParBs(ParBsParams::paper_default()),
        "atlas" => PolicyKind::Atlas(AtlasParams::paper_default()),
        "fqm" => PolicyKind::FairQueueing,
        "tcm" => PolicyKind::Tcm(TcmParams::reproduction_default(n)),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: tcm-run [--threads N] [--intensity F] [--seed S] [--cycles C]\n\
         \x20              [--policies p1,p2,...] [--workload A|B|C|D] [--workers W] [--json]\n\
         \x20              [--verify]\n\
         policies: fcfs fr-fcfs stfm par-bs atlas fqm tcm (default: all but fcfs/fqm)\n\
         --verify enables the DRAM protocol invariant checker (observation-only)"
    );
    std::process::exit(2)
}

fn main() {
    let mut threads = 24usize;
    let mut intensity = 0.5f64;
    let mut seed = 0u64;
    let mut cycles = 5_000_000u64;
    let mut policies: Option<Vec<String>> = None;
    let mut named_workload: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut json = false;
    let mut verify = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--threads" => threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--intensity" => intensity = value("--intensity").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--cycles" => cycles = value("--cycles").parse().unwrap_or_else(|_| usage()),
            "--policies" => {
                policies = Some(value("--policies").split(',').map(String::from).collect())
            }
            "--workload" => named_workload = Some(value("--workload")),
            "--workers" => workers = Some(value("--workers").parse().unwrap_or_else(|_| usage())),
            "--json" => json = true,
            "--verify" => verify = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }

    let workload: WorkloadSpec = match named_workload.as_deref() {
        Some(name) => table5_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown workload `{name}` (expected A, B, C or D)");
                usage()
            }),
        None => random_workload(seed, threads, intensity),
    };
    let threads = workload.threads.len();

    let kinds: Vec<PolicyKind> = match policies {
        Some(names) => names
            .iter()
            .map(|name| parse_policy(name, threads).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            }))
            .collect(),
        None => PolicyKind::paper_lineup(threads),
    };

    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = threads;
    let session = Session::new(
        RunConfig::builder()
            .system(cfg)
            .horizon(cycles)
            .verify(verify)
            .build(),
    );
    let sweep = session.sweep().policies(kinds).workloads([workload.clone()]);
    let result = match workers {
        Some(w) => sweep.run_parallel(w),
        None => sweep.run_auto(),
    };

    let mut output = Output {
        workload: workload.name.clone(),
        threads,
        cycles,
        benchmarks: workload.threads.iter().map(|p| p.name.clone()).collect(),
        results: Vec::new(),
    };
    if !json {
        println!("{workload}");
        println!("{:>8} | {:>8} {:>8} {:>8}", "policy", "WS", "maxSD", "HS");
    }
    for cell in result.cells() {
        let r = &cell.result;
        if !json {
            println!(
                "{:>8} | {:8.2} {:8.2} {:8.3}",
                r.policy,
                r.metrics.weighted_speedup,
                r.metrics.max_slowdown,
                r.metrics.harmonic_speedup
            );
        }
        output.results.push(PolicyOutput {
            policy: r.policy.clone(),
            weighted_speedup: r.metrics.weighted_speedup,
            harmonic_speedup: r.metrics.harmonic_speedup,
            max_slowdown: r.metrics.max_slowdown,
            slowdowns: r.slowdowns.clone(),
        });
    }
    if json {
        println!("{}", output.to_json());
    } else {
        println!("{}", result.stats().throughput_line());
    }
    if !result.is_complete() {
        eprintln!("{} cell(s) FAILED:", result.failures().len());
        for failure in result.failures() {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}
