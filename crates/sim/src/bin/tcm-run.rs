//! `tcm-run` — command-line front end for the simulator: run one
//! workload under one or more scheduling policies and print the paper's
//! metrics (optionally as JSON).
//!
//! ```text
//! tcm-run [--threads N] [--intensity F] [--seed S] [--cycles C]
//!         [--policies fr-fcfs,stfm,par-bs,atlas,fqm,tcm] [--json]
//!         [--workload A|B|C|D]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release -p tcm-sim --bin tcm-run -- --intensity 1.0 --cycles 5000000
//! cargo run --release -p tcm-sim --bin tcm-run -- --workload B --json
//! ```

use serde::Serialize;
use tcm_core::TcmParams;
use tcm_sched::{AtlasParams, ParBsParams, StfmParams};
use tcm_sim::{evaluate, AloneCache, PolicyKind, RunConfig};
use tcm_types::SystemConfig;
use tcm_workload::{random_workload, table5_workloads, WorkloadSpec};

#[derive(Debug, Serialize)]
struct PolicyOutput {
    policy: String,
    weighted_speedup: f64,
    harmonic_speedup: f64,
    max_slowdown: f64,
    slowdowns: Vec<f64>,
}

#[derive(Debug, Serialize)]
struct Output {
    workload: String,
    threads: usize,
    cycles: u64,
    benchmarks: Vec<String>,
    results: Vec<PolicyOutput>,
}

fn parse_policy(name: &str, n: usize) -> Result<PolicyKind, String> {
    Ok(match name {
        "fcfs" => PolicyKind::Fcfs,
        "fr-fcfs" | "frfcfs" => PolicyKind::FrFcfs,
        "stfm" => PolicyKind::Stfm(StfmParams::paper_default()),
        "par-bs" | "parbs" => PolicyKind::ParBs(ParBsParams::paper_default()),
        "atlas" => PolicyKind::Atlas(AtlasParams::paper_default()),
        "fqm" => PolicyKind::FairQueueing,
        "tcm" => PolicyKind::Tcm(TcmParams::reproduction_default(n)),
        other => return Err(format!("unknown policy `{other}`")),
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: tcm-run [--threads N] [--intensity F] [--seed S] [--cycles C]\n\
         \x20              [--policies p1,p2,...] [--workload A|B|C|D] [--json]\n\
         policies: fcfs fr-fcfs stfm par-bs atlas fqm tcm (default: all but fcfs/fqm)"
    );
    std::process::exit(2)
}

fn main() {
    let mut threads = 24usize;
    let mut intensity = 0.5f64;
    let mut seed = 0u64;
    let mut cycles = 5_000_000u64;
    let mut policies: Option<Vec<String>> = None;
    let mut named_workload: Option<String> = None;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--threads" => threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--intensity" => intensity = value("--intensity").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--cycles" => cycles = value("--cycles").parse().unwrap_or_else(|_| usage()),
            "--policies" => {
                policies = Some(value("--policies").split(',').map(String::from).collect())
            }
            "--workload" => named_workload = Some(value("--workload")),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }

    let workload: WorkloadSpec = match named_workload.as_deref() {
        Some(name) => table5_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| {
                eprintln!("unknown workload `{name}` (expected A, B, C or D)");
                usage()
            }),
        None => random_workload(seed, threads, intensity),
    };
    let threads = workload.threads.len();

    let kinds: Vec<PolicyKind> = match policies {
        Some(names) => names
            .iter()
            .map(|name| parse_policy(name, threads).unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            }))
            .collect(),
        None => PolicyKind::paper_lineup(threads),
    };

    let mut cfg = SystemConfig::paper_baseline();
    cfg.num_threads = threads;
    let rc = RunConfig {
        system: cfg,
        horizon: cycles,
    };
    let mut alone = AloneCache::new();

    let mut output = Output {
        workload: workload.name.clone(),
        threads,
        cycles,
        benchmarks: workload.threads.iter().map(|p| p.name.clone()).collect(),
        results: Vec::new(),
    };
    if !json {
        println!("{workload}");
        println!("{:>8} | {:>8} {:>8} {:>8}", "policy", "WS", "maxSD", "HS");
    }
    for kind in kinds {
        let r = evaluate(&kind, &workload, &rc, &mut alone);
        if !json {
            println!(
                "{:>8} | {:8.2} {:8.2} {:8.3}",
                r.policy,
                r.metrics.weighted_speedup,
                r.metrics.max_slowdown,
                r.metrics.harmonic_speedup
            );
        }
        output.results.push(PolicyOutput {
            policy: r.policy,
            weighted_speedup: r.metrics.weighted_speedup,
            harmonic_speedup: r.metrics.harmonic_speedup,
            max_slowdown: r.metrics.max_slowdown,
            slowdowns: r.slowdowns,
        });
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&output).expect("serializable output")
        );
    }
}
