//! Experiment runner: policy factories, alone-run caching, and
//! per-workload evaluation.

use crate::metrics::{workload_metrics, IpcPair, WorkloadMetrics};
use crate::system::{RunResult, System};
use std::collections::HashMap;
use tcm_core::{Tcm, TcmParams};
use tcm_sched::{
    Atlas, AtlasParams, FairQueueing, Fcfs, FrFcfs, ParBs, ParBsParams, Scheduler, Stfm,
    StfmParams,
};
use tcm_types::{Cycle, SystemConfig};
use tcm_workload::{BenchmarkProfile, WorkloadSpec};

/// A scheduling policy to instantiate, with its parameters.
///
/// Exists so experiments can name policies declaratively and instantiate
/// a fresh, correctly-sized instance per run.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Oldest-first.
    Fcfs,
    /// Row-hit-first, then oldest.
    FrFcfs,
    /// Stall-time fair memory scheduling.
    Stfm(StfmParams),
    /// Parallelism-aware batch scheduling.
    ParBs(ParBsParams),
    /// Least-attained-service scheduling.
    Atlas(AtlasParams),
    /// Fair-queueing memory scheduling (extension baseline).
    FairQueueing,
    /// Thread cluster memory scheduling.
    Tcm(TcmParams),
}

impl PolicyKind {
    /// The paper's five headline policies for an `n`-thread system, in
    /// the order Figures 1/4 list them (FR-FCFS, STFM, PAR-BS, ATLAS,
    /// TCM). TCM uses [`TcmParams::reproduction_default`] (random
    /// shuffling via `ShuffleAlgoThresh = 1`; see that method's docs).
    pub fn paper_lineup(n: usize) -> Vec<PolicyKind> {
        vec![
            PolicyKind::FrFcfs,
            PolicyKind::Stfm(StfmParams::paper_default()),
            PolicyKind::ParBs(ParBsParams::paper_default()),
            PolicyKind::Atlas(AtlasParams::paper_default()),
            PolicyKind::Tcm(TcmParams::reproduction_default(n)),
        ]
    }

    /// Instantiates the policy for an `n`-thread system.
    pub fn build(&self, n: usize, cfg: &SystemConfig) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::FrFcfs => Box::new(FrFcfs::new()),
            PolicyKind::Stfm(p) => Box::new(Stfm::with_params(n, *p)),
            PolicyKind::ParBs(p) => Box::new(ParBs::with_params(n, *p)),
            PolicyKind::Atlas(p) => Box::new(Atlas::with_params(n, *p)),
            PolicyKind::FairQueueing => Box::new(FairQueueing::new(n)),
            PolicyKind::Tcm(p) => Box::new(Tcm::with_params(*p, n, cfg)),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Fcfs => "FCFS".into(),
            PolicyKind::FrFcfs => "FR-FCFS".into(),
            PolicyKind::Stfm(_) => "STFM".into(),
            PolicyKind::ParBs(_) => "PAR-BS".into(),
            PolicyKind::Atlas(_) => "ATLAS".into(),
            PolicyKind::FairQueueing => "FQM".into(),
            PolicyKind::Tcm(p) => match p.shuffle_mode {
                tcm_core::ShuffleMode::Dynamic => "TCM".into(),
                tcm_core::ShuffleMode::InsertionOnly => "TCM-ins".into(),
                tcm_core::ShuffleMode::RandomOnly => "TCM-rand".into(),
                tcm_core::ShuffleMode::RoundRobin => "TCM-rr".into(),
                tcm_core::ShuffleMode::Static => "TCM-static".into(),
            },
        }
    }
}

/// How long to run and on what machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Machine description.
    pub system: SystemConfig,
    /// Cycles to simulate per run.
    pub horizon: Cycle,
}

impl RunConfig {
    /// Paper baseline machine with the given horizon.
    pub fn baseline(horizon: Cycle) -> Self {
        Self {
            system: SystemConfig::paper_baseline(),
            horizon,
        }
    }
}

/// Cache of alone-run IPCs, keyed by benchmark characteristics and
/// machine configuration.
///
/// A thread's slowdown compares its shared-run IPC against its IPC when
/// running *alone on the same machine*; alone runs depend only on the
/// benchmark profile and machine, so they are shared across workloads
/// (25 profiles instead of `96 × 24` runs).
#[derive(Debug, Default)]
pub struct AloneCache {
    cache: HashMap<String, f64>,
}

impl AloneCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(profile: &BenchmarkProfile, rc: &RunConfig) -> String {
        format!(
            "{}|{:.4}|{:.4}|{:.4}|{}ch{}b{}w{}q{}",
            profile.name,
            profile.mpki,
            profile.rbl,
            profile.blp,
            rc.system.num_channels,
            rc.system.banks_per_channel,
            rc.system.window_size,
            rc.system.request_buffer,
            rc.horizon,
        )
    }

    /// IPC of `profile` running alone on `rc`'s machine (cached).
    pub fn alone_ipc(&mut self, profile: &BenchmarkProfile, rc: &RunConfig) -> f64 {
        let key = Self::key(profile, rc);
        if let Some(&ipc) = self.cache.get(&key) {
            return ipc;
        }
        let ipc = if profile.mpki <= 0.0 {
            rc.system.issue_width as f64
        } else {
            let mut cfg = rc.system.clone();
            cfg.num_threads = 1;
            let workload = WorkloadSpec::new(profile.name.clone(), vec![profile.clone()]);
            // The policy is irrelevant with a single thread.
            let mut sys = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
            sys.run(rc.horizon).ipc[0]
        };
        self.cache.insert(key, ipc);
        ipc
    }

    /// Number of cached alone runs.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// One policy's results on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Policy label.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// The paper's three metrics.
    pub metrics: WorkloadMetrics,
    /// Per-thread slowdowns (`IPC_alone / IPC_shared`).
    pub slowdowns: Vec<f64>,
    /// Per-thread speedups (`IPC_shared / IPC_alone`).
    pub speedups: Vec<f64>,
    /// Raw run result of the shared run.
    pub run: RunResult,
}

/// Runs `workload` under `policy` and computes the paper's metrics,
/// using (and filling) `alone` for the denominator IPCs.
pub fn evaluate(
    policy: &PolicyKind,
    workload: &WorkloadSpec,
    rc: &RunConfig,
    alone: &mut AloneCache,
) -> EvalResult {
    evaluate_weighted(policy, workload, rc, alone, None)
}

/// Like [`evaluate`], with optional OS thread weights installed on the
/// policy before the run.
pub fn evaluate_weighted(
    policy: &PolicyKind,
    workload: &WorkloadSpec,
    rc: &RunConfig,
    alone: &mut AloneCache,
    weights: Option<&[f64]>,
) -> EvalResult {
    let n = workload.threads.len();
    let scheduler = policy.build(n, &rc.system);
    let mut sys = System::new(&rc.system, workload, scheduler, workload_seed(workload));
    if let Some(w) = weights {
        sys.set_thread_weights(w);
    }
    let run = sys.run(rc.horizon);
    let pairs: Vec<IpcPair> = workload
        .threads
        .iter()
        .enumerate()
        .map(|(i, profile)| IpcPair {
            shared: run.ipc[i],
            alone: alone.alone_ipc(profile, rc),
        })
        .collect();
    let metrics = workload_metrics(&pairs);
    EvalResult {
        policy: policy.label(),
        workload: workload.name.clone(),
        metrics,
        slowdowns: pairs.iter().map(|p| p.slowdown()).collect(),
        speedups: pairs.iter().map(|p| p.speedup()).collect(),
        run,
    }
}

/// Deterministic per-workload seed so every policy sees the identical
/// trace for a given workload.
fn workload_seed(workload: &WorkloadSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in workload.name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Averages metrics across many evaluation results.
pub fn average_metrics(results: &[EvalResult]) -> WorkloadMetrics {
    assert!(!results.is_empty(), "cannot average zero results");
    let n = results.len() as f64;
    WorkloadMetrics {
        weighted_speedup: results.iter().map(|r| r.metrics.weighted_speedup).sum::<f64>() / n,
        harmonic_speedup: results.iter().map(|r| r.metrics.harmonic_speedup).sum::<f64>() / n,
        max_slowdown: results.iter().map(|r| r.metrics.max_slowdown).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcm_workload::random_workload;

    fn small_rc() -> RunConfig {
        RunConfig {
            system: SystemConfig::builder().num_threads(4).build().unwrap(),
            horizon: 60_000,
        }
    }

    #[test]
    fn alone_cache_hits_after_first_run() {
        let rc = small_rc();
        let mut cache = AloneCache::new();
        let p = tcm_workload::spec_by_name("mcf").unwrap();
        let a = cache.alone_ipc(&p, &rc);
        assert_eq!(cache.len(), 1);
        let b = cache.alone_ipc(&p, &rc);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compute_only_profile_runs_at_issue_width_alone() {
        let rc = small_rc();
        let mut cache = AloneCache::new();
        let p = BenchmarkProfile::new("idle", 0.0, 0.5, 1.0);
        assert_eq!(cache.alone_ipc(&p, &rc), 3.0);
    }

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let rc = small_rc();
        let mut cache = AloneCache::new();
        let w = random_workload(1, 4, 0.5);
        let r = evaluate(&PolicyKind::FrFcfs, &w, &rc, &mut cache);
        assert_eq!(r.slowdowns.len(), 4);
        assert!(r.metrics.weighted_speedup > 0.0);
        assert!(r.metrics.weighted_speedup <= 4.0 + 1e-9);
        assert!(r.metrics.max_slowdown >= 0.9, "ms={}", r.metrics.max_slowdown);
        assert_eq!(r.policy, "FR-FCFS");
    }

    #[test]
    fn every_policy_kind_builds_and_runs() {
        let rc = small_rc();
        let mut cache = AloneCache::new();
        let w = random_workload(2, 4, 0.75);
        let mut kinds = PolicyKind::paper_lineup(4);
        kinds[4] = PolicyKind::Tcm(TcmParams::paper_default(4).with_cluster_thresh(0.25));
        kinds.push(PolicyKind::Fcfs);
        for kind in kinds {
            let r = evaluate(&kind, &w, &rc, &mut cache);
            assert!(
                r.metrics.weighted_speedup.is_finite(),
                "{} produced bad metrics",
                r.policy
            );
        }
    }

    #[test]
    fn same_policy_same_workload_is_reproducible() {
        let rc = small_rc();
        let mut cache = AloneCache::new();
        let w = random_workload(5, 4, 1.0);
        let a = evaluate(&PolicyKind::FrFcfs, &w, &rc, &mut cache);
        let b = evaluate(&PolicyKind::FrFcfs, &w, &rc, &mut cache);
        assert_eq!(a.run, b.run);
    }

    #[test]
    fn average_metrics_averages() {
        let rc = small_rc();
        let mut cache = AloneCache::new();
        let results: Vec<EvalResult> = (0..3)
            .map(|s| evaluate(&PolicyKind::FrFcfs, &random_workload(s, 4, 0.5), &rc, &mut cache))
            .collect();
        let avg = average_metrics(&results);
        let manual: f64 =
            results.iter().map(|r| r.metrics.weighted_speedup).sum::<f64>() / 3.0;
        assert!((avg.weighted_speedup - manual).abs() < 1e-12);
    }
}
