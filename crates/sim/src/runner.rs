//! Experiment vocabulary: policy factories and run configuration.
//!
//! Experiments run through the [`Session`] / [`Sweep`](crate::Sweep)
//! layer in [`crate::sweep`]; this module supplies the declarative
//! pieces those take — [`PolicyKind`] and [`RunConfig`].
//!
//! [`Session`]: crate::Session

use crate::metrics::WorkloadMetrics;
use crate::system::RunResult;
use std::time::Duration;
use tcm_chaos::FaultPlan;
use tcm_core::{MetaController, Tcm, TcmController, TcmParams};
use tcm_sched::{
    Atlas, AtlasParams, FairQueueing, Fcfs, FrFcfs, MetaScheduler, ParBs, ParBsParams, Scheduler,
    Stfm, StfmParams,
};
use tcm_telemetry::{TelemetryConfig, TelemetrySnapshot};
use tcm_types::{Cycle, SystemConfig};
use tcm_workload::WorkloadSpec;

/// Labels of [`PolicyKind::paper_lineup`], in the same order — handy for
/// building report headers without instantiating the policies.
pub const PAPER_LINEUP_LABELS: [&str; 5] = ["FR-FCFS", "STFM", "PAR-BS", "ATLAS", "TCM"];

/// A scheduling policy to instantiate, with its parameters.
///
/// Exists so experiments can name policies declaratively and instantiate
/// a fresh, correctly-sized instance per run.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Oldest-first.
    Fcfs,
    /// Row-hit-first, then oldest.
    FrFcfs,
    /// Stall-time fair memory scheduling.
    Stfm(StfmParams),
    /// Parallelism-aware batch scheduling.
    ParBs(ParBsParams),
    /// Least-attained-service scheduling.
    Atlas(AtlasParams),
    /// Fair-queueing memory scheduling (extension baseline).
    FairQueueing,
    /// Thread cluster memory scheduling.
    Tcm(TcmParams),
}

impl PolicyKind {
    /// The paper's five headline policies for an `n`-thread system, in
    /// the order Figures 1/4 list them (see [`PAPER_LINEUP_LABELS`]).
    /// TCM uses [`TcmParams::reproduction_default`] (random
    /// shuffling via `ShuffleAlgoThresh = 1`; see that method's docs).
    pub fn paper_lineup(n: usize) -> Vec<PolicyKind> {
        vec![
            PolicyKind::FrFcfs,
            PolicyKind::Stfm(StfmParams::paper_default()),
            PolicyKind::ParBs(ParBsParams::paper_default()),
            PolicyKind::Atlas(AtlasParams::paper_default()),
            PolicyKind::Tcm(TcmParams::reproduction_default(n)),
        ]
    }

    /// Instantiates the policy for an `n`-thread system.
    pub fn build(&self, n: usize, cfg: &SystemConfig) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::FrFcfs => Box::new(FrFcfs::new()),
            PolicyKind::Stfm(p) => Box::new(Stfm::with_params(n, *p)),
            PolicyKind::ParBs(p) => Box::new(ParBs::with_params(n, *p)),
            PolicyKind::Atlas(p) => Box::new(Atlas::with_params(n, *p)),
            PolicyKind::FairQueueing => Box::new(FairQueueing::new(n)),
            PolicyKind::Tcm(p) => Box::new(Tcm::with_params(*p, n, cfg)),
        }
    }

    /// Instantiates the policy for *one controller* of an `n`-thread
    /// system (multi-controller topologies): each controller owns a
    /// fresh instance arbitrating only its own channels. For TCM this
    /// is the per-controller [`TcmController`], which must be paired
    /// with the [`PolicyKind::build_meta`] meta-controller;
    /// uncoordinated policies get instances identical to
    /// [`PolicyKind::build`].
    pub fn build_controller(&self, n: usize, cfg: &SystemConfig) -> Box<dyn Scheduler> {
        match self {
            PolicyKind::Tcm(_) => Box::new(TcmController::new(n, cfg)),
            other => other.build(n, cfg),
        }
    }

    /// Instantiates the meta-controller that coordinates the
    /// per-controller instances at quantum boundaries (paper §5.3), or
    /// `None` for policies without coordinated state.
    pub fn build_meta(&self, n: usize, cfg: &SystemConfig) -> Option<Box<dyn MetaScheduler>> {
        match self {
            PolicyKind::Tcm(p) => Some(Box::new(MetaController::new(*p, n, cfg))),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Fcfs => "FCFS".into(),
            PolicyKind::FrFcfs => "FR-FCFS".into(),
            PolicyKind::Stfm(_) => "STFM".into(),
            PolicyKind::ParBs(_) => "PAR-BS".into(),
            PolicyKind::Atlas(_) => "ATLAS".into(),
            PolicyKind::FairQueueing => "FQM".into(),
            PolicyKind::Tcm(p) => match p.shuffle_mode {
                tcm_core::ShuffleMode::Dynamic => "TCM".into(),
                tcm_core::ShuffleMode::InsertionOnly => "TCM-ins".into(),
                tcm_core::ShuffleMode::RandomOnly => "TCM-rand".into(),
                tcm_core::ShuffleMode::RoundRobin => "TCM-rr".into(),
                tcm_core::ShuffleMode::Static => "TCM-static".into(),
            },
        }
    }
}

/// How long to run and on what machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Machine description.
    pub system: SystemConfig,
    /// Cycles to simulate per run.
    pub horizon: Cycle,
    /// Force-enable the DRAM protocol invariant checker on every run.
    ///
    /// The checker is observation-only: results are bit-identical with it
    /// on or off. Debug builds enable it regardless; this flag opts
    /// release builds in (see also the `TCM_VERIFY` environment
    /// variable).
    pub verify: bool,
    /// Forward-progress watchdog limit in cycles (`None` disables).
    ///
    /// Default: [`DEFAULT_STALL_LIMIT`](crate::DEFAULT_STALL_LIMIT).
    pub watchdog: Option<Cycle>,
    /// Fault-injection plan installed on every run (see `tcm-chaos`).
    ///
    /// `None` (the default) runs without the chaos layer. Installing a
    /// plan also force-enables protocol verification, since injected
    /// faults are only useful if the detectors are armed.
    pub chaos: Option<FaultPlan>,
    /// Per-run wall-clock deadline. When set, each run carries a
    /// cancellation token with this deadline; a run exceeding it
    /// surfaces `SimError::Cancelled`, which sweeps record as a
    /// retryable timeout instead of poisoning other cells.
    pub cell_deadline: Option<Duration>,
    /// Host threads used to shard one cell's controllers during
    /// simulation (intra-cell parallelism). Only multi-controller
    /// topologies can shard; `1` (the default) runs every controller on
    /// the calling thread. Sharded execution is bit-identical to
    /// sequential — the engine exchanges events at fixed barriers — so
    /// this knob affects wall-clock only.
    pub intra_hosts: usize,
    /// Telemetry configuration for every evaluated cell. `None` (the
    /// default) runs with telemetry fully disabled — the hot-path cost is
    /// one branch per hook. When set, each cell gets its own tracer and
    /// metrics registry whose snapshot lands in `EvalResult::telemetry`.
    /// Telemetry is observation-only: results are bit-identical either
    /// way. Sweep checkpoints persist only the snapshot's counter/gauge
    /// summary, so a cell restored by `--resume` carries an empty event
    /// log.
    pub telemetry: Option<TelemetryConfig>,
}

impl RunConfig {
    /// Starts building a run configuration (paper-baseline machine and a
    /// one-million-cycle horizon unless overridden).
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder::default()
    }
}

/// Builder for [`RunConfig`] (see [`RunConfig::builder`]).
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    system: SystemConfig,
    horizon: Cycle,
    verify: bool,
    watchdog: Option<Cycle>,
    chaos: Option<FaultPlan>,
    cell_deadline: Option<Duration>,
    intra_hosts: usize,
    telemetry: Option<TelemetryConfig>,
}

impl Default for RunConfigBuilder {
    fn default() -> Self {
        Self {
            system: SystemConfig::paper_baseline(),
            horizon: 1_000_000,
            verify: false,
            watchdog: Some(crate::system::DEFAULT_STALL_LIMIT),
            chaos: None,
            cell_deadline: None,
            intra_hosts: 1,
            telemetry: None,
        }
    }
}

impl RunConfigBuilder {
    /// Sets the machine description (default: the paper baseline).
    pub fn system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Sets the simulation horizon in cycles (default: 1,000,000).
    pub fn horizon(mut self, horizon: Cycle) -> Self {
        self.horizon = horizon;
        self
    }

    /// Force-enables the DRAM protocol checker (default: off in release
    /// builds, always on in debug builds).
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets the forward-progress watchdog limit; `None` disables it
    /// (default: [`DEFAULT_STALL_LIMIT`](crate::DEFAULT_STALL_LIMIT)).
    pub fn watchdog(mut self, watchdog: Option<Cycle>) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Installs a fault-injection plan on every run (default: none).
    /// See [`RunConfig::chaos`].
    pub fn chaos(mut self, chaos: Option<FaultPlan>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets a per-run wall-clock deadline (default: none). See
    /// [`RunConfig::cell_deadline`].
    pub fn cell_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.cell_deadline = deadline;
        self
    }

    /// Sets the number of host threads sharding each cell's controllers
    /// (default: 1 — sequential). See [`RunConfig::intra_hosts`].
    pub fn intra_hosts(mut self, hosts: usize) -> Self {
        self.intra_hosts = hosts.max(1);
        self
    }

    /// Enables per-cell structured tracing and metrics (default: none —
    /// telemetry fully disabled). See [`RunConfig::telemetry`].
    pub fn telemetry(mut self, telemetry: Option<TelemetryConfig>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> RunConfig {
        RunConfig {
            system: self.system,
            horizon: self.horizon,
            verify: self.verify,
            watchdog: self.watchdog,
            chaos: self.chaos,
            cell_deadline: self.cell_deadline,
            intra_hosts: self.intra_hosts,
            telemetry: self.telemetry,
        }
    }
}

/// One policy's results on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Policy label.
    pub policy: String,
    /// Workload name.
    pub workload: String,
    /// The paper's three metrics.
    pub metrics: WorkloadMetrics,
    /// Per-thread slowdowns (`IPC_alone / IPC_shared`).
    pub slowdowns: Vec<f64>,
    /// Per-thread speedups (`IPC_shared / IPC_alone`).
    pub speedups: Vec<f64>,
    /// Raw run result of the shared run.
    pub run: RunResult,
    /// Telemetry snapshot of the shared run (trace events + metrics);
    /// `None` unless [`RunConfig::telemetry`] was set. Boxed to keep the
    /// common telemetry-off result small.
    pub telemetry: Option<Box<TelemetrySnapshot>>,
}

/// Deterministic per-workload seed so every policy sees the identical
/// trace for a given workload.
pub(crate) fn workload_seed(workload: &WorkloadSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in workload.name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Averages metrics across many evaluation results.
pub fn average_metrics(results: &[EvalResult]) -> WorkloadMetrics {
    assert!(!results.is_empty(), "cannot average zero results");
    let n = results.len() as f64;
    WorkloadMetrics {
        weighted_speedup: results.iter().map(|r| r.metrics.weighted_speedup).sum::<f64>() / n,
        harmonic_speedup: results.iter().map(|r| r.metrics.harmonic_speedup).sum::<f64>() / n,
        max_slowdown: results.iter().map(|r| r.metrics.max_slowdown).sum::<f64>() / n,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_workload::{random_workload, BenchmarkProfile};

    fn small_rc() -> RunConfig {
        RunConfig::builder()
            .system(SystemConfig::builder().num_threads(4).build().unwrap())
            .horizon(60_000)
            .build()
    }

    #[test]
    fn builder_defaults_to_paper_baseline() {
        let rc = RunConfig::builder().horizon(5_000).build();
        assert_eq!(rc.system, SystemConfig::paper_baseline());
        assert_eq!(rc.horizon, 5_000);
        assert_eq!(rc.intra_hosts, 1);
    }

    #[test]
    fn intra_hosts_clamps_to_at_least_one() {
        let rc = RunConfig::builder().intra_hosts(0).build();
        assert_eq!(rc.intra_hosts, 1);
        let rc = RunConfig::builder().intra_hosts(3).build();
        assert_eq!(rc.intra_hosts, 3);
    }

    #[test]
    fn lineup_labels_match_lineup() {
        let lineup = PolicyKind::paper_lineup(24);
        let labels: Vec<String> = lineup.iter().map(PolicyKind::label).collect();
        assert_eq!(labels, PAPER_LINEUP_LABELS);
    }

    #[test]
    fn session_caches_alone_runs() {
        let session = crate::Session::new(small_rc());
        let p = tcm_workload::spec_by_name("mcf").unwrap();
        let a = session.alone_ipc(&p);
        assert_eq!(session.alone_cache().misses(), 1);
        let b = session.alone_ipc(&p);
        assert_eq!(a, b);
        assert_eq!(session.alone_cache().misses(), 1);
    }

    #[test]
    fn compute_only_profile_runs_at_issue_width_alone() {
        let session = crate::Session::new(small_rc());
        let p = BenchmarkProfile::new("idle", 0.0, 0.5, 1.0);
        assert_eq!(session.alone_ipc(&p), 3.0);
    }

    #[test]
    fn eval_produces_consistent_metrics() {
        let session = crate::Session::new(small_rc());
        let w = random_workload(1, 4, 0.5);
        let r = session.eval(&PolicyKind::FrFcfs, &w);
        assert_eq!(r.slowdowns.len(), 4);
        assert!(r.metrics.weighted_speedup > 0.0);
        assert!(r.metrics.weighted_speedup <= 4.0 + 1e-9);
        assert!(r.metrics.max_slowdown >= 0.9, "ms={}", r.metrics.max_slowdown);
        assert_eq!(r.policy, "FR-FCFS");
    }

    #[test]
    fn every_policy_kind_builds_and_runs() {
        let session = crate::Session::new(small_rc());
        let w = random_workload(2, 4, 0.75);
        let mut kinds = PolicyKind::paper_lineup(4);
        kinds[4] = PolicyKind::Tcm(TcmParams::paper_default(4).with_cluster_thresh(0.25));
        kinds.push(PolicyKind::Fcfs);
        for kind in kinds {
            let r = session.eval(&kind, &w);
            assert!(
                r.metrics.weighted_speedup.is_finite(),
                "{} produced bad metrics",
                r.policy
            );
        }
    }

    #[test]
    fn same_policy_same_workload_is_reproducible() {
        let session = crate::Session::new(small_rc());
        let w = random_workload(5, 4, 1.0);
        let a = session.eval(&PolicyKind::FrFcfs, &w);
        let b = session.eval(&PolicyKind::FrFcfs, &w);
        assert_eq!(a.run, b.run);
    }

    #[test]
    fn coordinated_policies_declare_a_meta_controller() {
        let cfg = SystemConfig::paper_baseline();
        for kind in PolicyKind::paper_lineup(24) {
            let is_tcm = matches!(kind, PolicyKind::Tcm(_));
            assert_eq!(kind.build_meta(24, &cfg).is_some(), is_tcm, "{}", kind.label());
            // Per-controller instances must build for every policy.
            let _ = kind.build_controller(24, &cfg);
        }
    }

    #[test]
    fn average_metrics_averages() {
        let session = crate::Session::new(small_rc());
        let results: Vec<EvalResult> = (0..3)
            .map(|s| session.eval(&PolicyKind::FrFcfs, &random_workload(s, 4, 0.5)))
            .collect();
        let avg = average_metrics(&results);
        let manual: f64 =
            results.iter().map(|r| r.metrics.weighted_speedup).sum::<f64>() / 3.0;
        assert!((avg.weighted_speedup - manual).abs() < 1e-12);
    }
}
