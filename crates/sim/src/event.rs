//! Deterministic event queue for the system simulator.
//!
//! Structurally this is a small binary heap plus per-channel FIFO
//! *lanes*. The heap only ever holds core bursts and scheduler ticks
//! (a handful of entries); the two high-volume event classes ride the
//! lanes:
//!
//! * `Completion` cycles are `bus_end + fixed_overhead`, and
//! * `BankReady` cycles are `bus_end`,
//!
//! where `bus_end` comes from [`DataBus::reserve`], which is strictly
//! increasing per channel. Each class is therefore pushed in
//! nondecreasing cycle order *per channel*, so a plain `VecDeque` per
//! (channel, class) replaces heap sift traffic with O(1) pushes and
//! pops. A single monotone sequence number is stamped on every push —
//! lane or heap — and the pop side takes the global minimum of
//! `(cycle, seq)` across the heap and all lane fronts, which reproduces
//! the old pure-heap pop order bit for bit (same-cycle events pop in
//! insertion order). Should a push ever violate a lane's monotonicity
//! (no current producer does, including the chaos bus-overlap re-timing
//! whose `burst >= 1` keeps completions nondecreasing), it falls back
//! to the heap and ordering is still exact.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tcm_types::{BankId, ChannelId, Cycle, Request, ThreadId};

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A core reaches its next miss-burst instruction. Carries the core's
    /// epoch at scheduling time; stale epochs are ignored (the core was
    /// re-polled in the meantime).
    CoreBurst {
        /// Core reaching its burst.
        thread: ThreadId,
        /// Epoch stamp for staleness detection.
        epoch: u64,
    },
    /// A bank finished its previous service and can be scheduled again.
    BankReady {
        /// Channel owning the bank.
        channel: ChannelId,
        /// The bank.
        bank: BankId,
    },
    /// A request's data arrives back at its core.
    Completion {
        /// The completed request.
        request: Request,
    },
    /// The scheduling policy's timer (quantum / shuffle boundary).
    SchedTick,
}

/// Which structure currently holds the earliest event.
#[derive(Debug, Clone, Copy)]
enum Source {
    Heap,
    Completion(usize),
    BankReady(usize),
}

/// Time-ordered event queue. Events at the same cycle pop in insertion
/// order (a monotone sequence number breaks ties), making runs exactly
/// reproducible.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, EventEntry)>>,
    /// Per-channel completion lane: nondecreasing cycles by construction.
    completions: Vec<VecDeque<(Cycle, u64, Request)>>,
    /// Per-channel bank-ready lane: nondecreasing cycles by construction.
    bank_ready: Vec<VecDeque<(Cycle, u64, BankId)>>,
    len: usize,
    seq: u64,
    /// Test hook: route every push through the heap (the pre-lane
    /// reference behavior) so equivalence tests can prove the lanes
    /// change nothing observable.
    reference_mode: bool,
}

/// Wrapper giving `Event` a total order for heap membership (never
/// actually compared: the `(cycle, seq)` prefix is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventEntry(Event);

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventEntry {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Creates an empty queue. Lanes grow on first use per channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes all future pushes through the heap (the reference, pure
    /// binary-heap order). Pop order is identical either way; this exists
    /// so tests can assert that, not for production use.
    #[doc(hidden)]
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
    }

    #[cold]
    fn grow_lanes(&mut self, channel: usize) {
        self.completions.resize_with(channel + 1, VecDeque::new);
        self.bank_ready.resize_with(channel + 1, VecDeque::new);
    }

    /// Schedules `event` at `cycle`.
    pub fn push(&mut self, cycle: Cycle, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if !self.reference_mode {
            match event {
                Event::Completion { request } => {
                    let c = request.addr.channel.index();
                    if c >= self.completions.len() {
                        self.grow_lanes(c);
                    }
                    let lane = &mut self.completions[c];
                    if lane.back().is_none_or(|&(last, _, _)| cycle >= last) {
                        lane.push_back((cycle, seq, request));
                        return;
                    }
                }
                Event::BankReady { channel, bank } => {
                    let c = channel.index();
                    if c >= self.bank_ready.len() {
                        self.grow_lanes(c);
                    }
                    let lane = &mut self.bank_ready[c];
                    if lane.back().is_none_or(|&(last, _, _)| cycle >= last) {
                        lane.push_back((cycle, seq, bank));
                        return;
                    }
                }
                _ => {}
            }
        }
        self.heap.push(Reverse((cycle, seq, EventEntry(event))));
    }

    /// `(cycle, seq)` of the earliest pending event and where it lives.
    fn min_source(&self) -> Option<(Cycle, u64, Source)> {
        let mut best = self
            .heap
            .peek()
            .map(|Reverse((c, s, _))| (*c, *s, Source::Heap));
        for (i, lane) in self.completions.iter().enumerate() {
            if let Some(&(c, s, _)) = lane.front() {
                if best.is_none_or(|(bc, bs, _)| (c, s) < (bc, bs)) {
                    best = Some((c, s, Source::Completion(i)));
                }
            }
        }
        for (i, lane) in self.bank_ready.iter().enumerate() {
            if let Some(&(c, s, _)) = lane.front() {
                if best.is_none_or(|(bc, bs, _)| (c, s) < (bc, bs)) {
                    best = Some((c, s, Source::BankReady(i)));
                }
            }
        }
        best
    }

    fn pop_source(&mut self, source: Source) -> (Cycle, Event) {
        self.len -= 1;
        match source {
            Source::Heap => {
                let Reverse((c, _, e)) = self.heap.pop().expect("heap source vanished");
                (c, e.0)
            }
            Source::Completion(i) => {
                let (c, _, request) =
                    self.completions[i].pop_front().expect("lane source vanished");
                (c, Event::Completion { request })
            }
            Source::BankReady(i) => {
                let (c, _, bank) =
                    self.bank_ready[i].pop_front().expect("lane source vanished");
                (
                    c,
                    Event::BankReady {
                        channel: ChannelId::new(i),
                        bank,
                    },
                )
            }
        }
    }

    /// Removes and returns the earliest event as `(cycle, event)`.
    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        let (_, _, source) = self.min_source()?;
        Some(self.pop_source(source))
    }

    /// Removes and returns the earliest event if it is scheduled at or
    /// before `bound` — the peek and the pop in one scan, so the event
    /// loop's `peek_cycle()` + `pop().expect(...)` pair becomes a single
    /// conditional pop.
    pub fn pop_at_or_before(&mut self, bound: Cycle) -> Option<(Cycle, Event)> {
        let (cycle, _, source) = self.min_source()?;
        if cycle > bound {
            return None;
        }
        Some(self.pop_source(source))
    }

    /// The cycle of the earliest pending event.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.min_source().map(|(c, _, _)| c)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{MemAddress, RequestId, Row};

    fn completion(channel: usize, id: u64) -> Event {
        Event::Completion {
            request: Request::new(
                RequestId::new(id),
                ThreadId::new(0),
                MemAddress::new(ChannelId::new(channel), BankId::new(0), Row::new(0)),
                0,
            ),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::SchedTick);
        q.push(10, Event::SchedTick);
        q.push(20, Event::SchedTick);
        let order: Vec<Cycle> = std::iter::from_fn(|| q.pop().map(|(c, _)| c)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::CoreBurst { thread: ThreadId::new(0), epoch: 0 });
        q.push(5, Event::CoreBurst { thread: ThreadId::new(1), epoch: 0 });
        q.push(5, Event::CoreBurst { thread: ThreadId::new(2), epoch: 0 });
        let threads: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::CoreBurst { thread, .. } => thread.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(threads, vec![0, 1, 2]);
    }

    #[test]
    fn ties_across_lanes_and_heap_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, completion(1, 100)); // lane: channel 1
        q.push(5, Event::SchedTick); // heap
        q.push(5, completion(0, 101)); // lane: channel 0
        q.push(
            5,
            Event::BankReady { channel: ChannelId::new(1), bank: BankId::new(3) },
        );
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Completion { request } => request.id.raw(),
                Event::SchedTick => 0,
                Event::BankReady { bank, .. } => 200 + bank.index() as u64,
                Event::CoreBurst { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![100, 0, 101, 203]);
    }

    #[test]
    fn non_monotone_lane_push_falls_back_to_heap() {
        let mut q = EventQueue::new();
        q.push(50, completion(0, 1));
        q.push(40, completion(0, 2)); // violates lane order: heap fallback
        q.push(50, completion(0, 3));
        let order: Vec<(Cycle, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(c, e)| match e {
                Event::Completion { request } => (c, request.id.raw()),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(40, 2), (50, 1), (50, 3)]);
    }

    #[test]
    fn pop_at_or_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(10, Event::SchedTick);
        q.push(20, completion(0, 7));
        assert_eq!(q.pop_at_or_before(5), None);
        assert_eq!(q.pop_at_or_before(10).map(|(c, _)| c), Some(10));
        assert_eq!(q.pop_at_or_before(19), None);
        assert_eq!(q.pop_at_or_before(20).map(|(c, _)| c), Some(20));
        assert!(q.is_empty());
    }

    #[test]
    fn reference_mode_orders_identically() {
        let pushes = [
            (5, completion(0, 1)),
            (3, Event::SchedTick),
            (5, completion(1, 2)),
            (5, Event::BankReady { channel: ChannelId::new(0), bank: BankId::new(1) }),
            (4, completion(0, 3)),
            (5, completion(0, 4)),
        ];
        let mut fast = EventQueue::new();
        let mut reference = EventQueue::new();
        reference.set_reference_mode(true);
        for &(c, e) in &pushes {
            fast.push(c, e);
            reference.push(c, e);
        }
        loop {
            let (a, b) = (fast.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.push(7, Event::SchedTick);
        assert_eq!(q.peek_cycle(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
