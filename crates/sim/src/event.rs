//! Deterministic event queue for the system simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tcm_types::{BankId, ChannelId, Cycle, Request, ThreadId};

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A core reaches its next miss-burst instruction. Carries the core's
    /// epoch at scheduling time; stale epochs are ignored (the core was
    /// re-polled in the meantime).
    CoreBurst {
        /// Core reaching its burst.
        thread: ThreadId,
        /// Epoch stamp for staleness detection.
        epoch: u64,
    },
    /// A bank finished its previous service and can be scheduled again.
    BankReady {
        /// Channel owning the bank.
        channel: ChannelId,
        /// The bank.
        bank: BankId,
    },
    /// A request's data arrives back at its core.
    Completion {
        /// The completed request.
        request: Request,
    },
    /// The scheduling policy's timer (quantum / shuffle boundary).
    SchedTick,
}

/// Time-ordered event queue. Events at the same cycle pop in insertion
/// order (a monotone sequence number breaks ties), making runs exactly
/// reproducible.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, EventEntry)>>,
    seq: u64,
}

/// Wrapper giving `Event` a total order for heap membership (never
/// actually compared: the `(cycle, seq)` prefix is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventEntry(Event);

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventEntry {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `cycle`.
    pub fn push(&mut self, cycle: Cycle, event: Event) {
        self.heap.push(Reverse((cycle, self.seq, EventEntry(event))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(cycle, event)`.
    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        self.heap.pop().map(|Reverse((c, _, e))| (c, e.0))
    }

    /// The cycle of the earliest pending event.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((c, _, _))| *c)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::SchedTick);
        q.push(10, Event::SchedTick);
        q.push(20, Event::SchedTick);
        let order: Vec<Cycle> = std::iter::from_fn(|| q.pop().map(|(c, _)| c)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::CoreBurst { thread: ThreadId::new(0), epoch: 0 });
        q.push(5, Event::CoreBurst { thread: ThreadId::new(1), epoch: 0 });
        q.push(5, Event::CoreBurst { thread: ThreadId::new(2), epoch: 0 });
        let threads: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::CoreBurst { thread, .. } => thread.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(threads, vec![0, 1, 2]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.push(7, Event::SchedTick);
        assert_eq!(q.peek_cycle(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
