//! The system simulator: cores + channels + a scheduling policy, driven
//! by a deterministic event queue.

use crate::event::{Event, EventQueue};
use std::collections::VecDeque;
use tcm_cpu::{Core, CoreStatus};
use tcm_dram::Channel;
use tcm_sched::{PickContext, Scheduler, SystemView};
use tcm_types::{
    BankId, ChannelId, Cycle, MemAddress, Request, RequestId, SystemConfig, ThreadId,
};
use tcm_workload::{MachineShape, TraceGenerator, WorkloadSpec};

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Instructions retired per thread.
    pub retired: Vec<u64>,
    /// IPC per thread.
    pub ipc: Vec<f64>,
    /// Misses injected per thread.
    pub misses: Vec<u64>,
    /// Bank-busy service cycles attained per thread (all channels).
    pub service: Vec<u64>,
    /// Requests serviced in total.
    pub total_serviced: u64,
    /// Row-buffer hit rate over all serviced requests.
    pub row_hit_rate: f64,
    /// Number of requests that had to wait for controller-buffer space
    /// before admission (diagnostic; rare at realistic intensities).
    pub spilled: u64,
}

/// One simulated CMP + memory system executing one workload under one
/// scheduling policy.
///
/// Drive it with [`System::run`]; everything else is plumbing fed by the
/// event queue. Identical inputs (workload, seed base, config, policy)
/// produce bit-identical results.
///
/// # Example
///
/// ```
/// use tcm_sched::FrFcfs;
/// use tcm_sim::System;
/// use tcm_types::SystemConfig;
/// use tcm_workload::random_workload;
///
/// let cfg = SystemConfig::builder().num_threads(4).build()?;
/// let workload = random_workload(0, 4, 0.5);
/// let mut sys = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 1);
/// let result = sys.run(50_000);
/// assert_eq!(result.ipc.len(), 4);
/// # Ok::<(), tcm_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    channels: Vec<Channel>,
    cores: Vec<Core>,
    generators: Vec<Option<TraceGenerator>>,
    /// Addresses of each core's pending (not yet injected) burst.
    pending_accesses: Vec<Vec<MemAddress>>,
    scheduler: Box<dyn Scheduler>,
    events: EventQueue,
    now: Cycle,
    next_request_id: u64,
    /// Epoch per core for stale-event elimination.
    core_epoch: Vec<u64>,
    /// Requests that found their controller's buffer full, waiting to be
    /// admitted (hardware would backpressure; semantics preserved:
    /// arrival order per channel).
    spill: Vec<VecDeque<Request>>,
    spilled: u64,
    sched_tick_pending: bool,
}

impl System {
    /// Builds a system running `workload` under `scheduler`.
    ///
    /// `seed_base` decorrelates multiple instances of the same benchmark
    /// within a workload (thread `i` uses seed
    /// `seed_base · 1000 + i` mixed with its profile).
    ///
    /// # Panics
    ///
    /// Panics if the workload's thread count differs from
    /// `cfg.num_threads` or the config fails validation.
    pub fn new(
        cfg: &SystemConfig,
        workload: &WorkloadSpec,
        scheduler: Box<dyn Scheduler>,
        seed_base: u64,
    ) -> Self {
        cfg.validate().expect("invalid system config");
        assert_eq!(
            workload.threads.len(),
            cfg.num_threads,
            "workload must have one profile per hardware thread"
        );
        let shape = MachineShape::from(cfg);
        let cores = (0..cfg.num_threads)
            .map(|i| {
                Core::new(
                    ThreadId::new(i),
                    cfg.issue_width,
                    cfg.window_size,
                    cfg.mshrs_per_core,
                )
            })
            .collect();
        let generators = workload
            .threads
            .iter()
            .enumerate()
            .map(|(i, profile)| {
                if TraceGenerator::is_compute_only(profile) {
                    None
                } else {
                    Some(TraceGenerator::new(
                        profile,
                        shape,
                        seed_base.wrapping_mul(1000).wrapping_add(i as u64),
                    ))
                }
            })
            .collect();
        let channels = (0..cfg.num_channels)
            .map(|c| {
                Channel::with_threads(
                    ChannelId::new(c),
                    cfg.banks_per_channel,
                    cfg.request_buffer,
                    cfg.num_threads,
                )
            })
            .collect();
        let mut sys = Self {
            cfg: cfg.clone(),
            channels,
            cores,
            generators,
            pending_accesses: vec![Vec::new(); cfg.num_threads],
            scheduler,
            events: EventQueue::new(),
            now: 0,
            next_request_id: 0,
            core_epoch: vec![0; cfg.num_threads],
            spill: (0..cfg.num_channels).map(|_| VecDeque::new()).collect(),
            spilled: 0,
            sched_tick_pending: false,
        };
        sys.bootstrap();
        sys
    }

    /// The scheduling policy's display name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Installs OS thread weights on the policy.
    pub fn set_thread_weights(&mut self, weights: &[f64]) {
        self.scheduler.set_thread_weights(weights);
    }

    fn bootstrap(&mut self) {
        for t in 0..self.cfg.num_threads {
            self.arm_next_burst(t);
            self.poll_core(t);
        }
        self.schedule_next_tick();
    }

    /// Pulls the next burst from thread `t`'s generator into its core.
    fn arm_next_burst(&mut self, t: usize) {
        let Some(generator) = self.generators[t].as_mut() else {
            return;
        };
        let burst = generator.next_burst();
        self.cores[t].schedule_burst(burst.gap, burst.accesses.len());
        self.pending_accesses[t] = burst.accesses;
    }

    /// Polls core `t` at the current cycle and (re)schedules its burst
    /// event. The only place core events are created; each call bumps the
    /// core's epoch so previously queued events become stale.
    fn poll_core(&mut self, t: usize) {
        match self.cores[t].poll(self.now) {
            CoreStatus::WillBurst { at } => {
                self.core_epoch[t] += 1;
                self.events.push(
                    at,
                    Event::CoreBurst {
                        thread: ThreadId::new(t),
                        epoch: self.core_epoch[t],
                    },
                );
            }
            CoreStatus::Blocked | CoreStatus::ComputeOnly => {}
        }
    }

    fn schedule_next_tick(&mut self) {
        if self.sched_tick_pending {
            return;
        }
        if let Some(at) = self.scheduler.next_tick(self.now) {
            self.events.push(at, Event::SchedTick);
            self.sched_tick_pending = true;
        }
    }

    /// Builds the per-thread counter view for the policy.
    fn view_arrays(&self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let n = self.cfg.num_threads;
        let retired = self.cores.iter().map(|c| c.retired()).collect();
        let misses = self.cores.iter().map(|c| c.misses_issued()).collect();
        let mut service = vec![0u64; n];
        for ch in &self.channels {
            for (t, s) in ch.stats().thread_service_all().iter().enumerate() {
                if t < n {
                    service[t] += s;
                }
            }
        }
        (retired, misses, service)
    }

    /// Injects thread `t`'s pending burst into the memory system.
    fn inject_burst(&mut self, t: usize) {
        let accesses = std::mem::take(&mut self.pending_accesses[t]);
        let mut ids = Vec::with_capacity(accesses.len());
        for addr in &accesses {
            let id = RequestId::new(self.next_request_id);
            self.next_request_id += 1;
            ids.push(id);
            let request = Request::new(id, ThreadId::new(t), *addr, self.now);
            self.admit(request);
        }
        self.cores[t].issue_burst(&ids);
        // Newly arrived requests may wake idle banks.
        let mut touched: Vec<ChannelId> = accesses.iter().map(|a| a.channel).collect();
        touched.sort_unstable();
        touched.dedup();
        for ch in touched {
            self.schedule_idle_banks(ch);
        }
        self.arm_next_burst(t);
        self.poll_core(t);
    }

    /// Admits a request into its controller's buffer, spilling if full.
    fn admit(&mut self, request: Request) {
        let c = request.addr.channel.index();
        if self.spill[c].is_empty() && self.channels[c].enqueue(request).is_ok() {
            self.scheduler.on_enqueue(&request, self.now);
            return;
        }
        self.spilled += 1;
        self.spill[c].push_back(request);
    }

    /// Drains spilled requests into the channel while room exists.
    fn drain_spill(&mut self, channel: usize) {
        while let Some(&request) = self.spill[channel].front() {
            let request = Request {
                issued_at: self.now,
                ..request
            };
            if self.channels[channel].enqueue(request).is_ok() {
                self.spill[channel].pop_front();
                self.scheduler.on_enqueue(&request, self.now);
            } else {
                break;
            }
        }
    }

    /// Runs a scheduling decision for every idle bank with pending work.
    fn schedule_idle_banks(&mut self, channel: ChannelId) {
        let c = channel.index();
        for bank in self.channels[c].schedulable_banks(self.now) {
            self.decide(c, bank);
        }
    }

    /// Consults the policy and issues one request at `(channel, bank)`.
    fn decide(&mut self, channel: usize, bank: BankId) {
        let pending = self.channels[channel].pending_for_bank(bank);
        debug_assert!(!pending.is_empty());
        let ctx = PickContext {
            now: self.now,
            channel: ChannelId::new(channel),
            bank,
            open_row: self.channels[channel].bank(bank).open_row(),
        };
        let idx = self.scheduler.pick(&pending, &ctx);
        assert!(idx < pending.len(), "policy returned an invalid index");
        let outcome =
            self.channels[channel].issue_at(bank.index(), idx, self.now, &self.cfg.timing);
        let remaining = self.channels[channel].pending_for_bank(bank);
        self.scheduler.on_service(&outcome, &remaining, self.now);
        self.events
            .push(outcome.completes_at, Event::Completion { request: outcome.request });
        self.events.push(
            outcome.bank_free,
            Event::BankReady {
                channel: ChannelId::new(channel),
                bank,
            },
        );
        // Freed buffer space: admit spilled requests.
        self.drain_spill(channel);
    }

    /// Processes events until `horizon`, then settles all cores at the
    /// horizon and reports the run's results.
    pub fn run(&mut self, horizon: Cycle) -> RunResult {
        while let Some(at) = self.events.peek_cycle() {
            if at > horizon {
                break;
            }
            let (cycle, event) = self.events.pop().expect("peeked event vanished");
            debug_assert!(cycle >= self.now, "event queue went backwards");
            self.now = cycle;
            match event {
                Event::CoreBurst { thread, epoch } => {
                    let t = thread.index();
                    if epoch != self.core_epoch[t] {
                        continue; // stale
                    }
                    match self.cores[t].poll(self.now) {
                        CoreStatus::WillBurst { at } if at <= self.now => {
                            self.inject_burst(t);
                        }
                        // Blocked (e.g. MSHR raced) or re-timed: re-poll
                        // created no event for Blocked; completions will.
                        CoreStatus::WillBurst { .. } => self.poll_core(t),
                        _ => {}
                    }
                }
                Event::BankReady { channel, bank } => {
                    self.drain_spill(channel.index());
                    let idle_ready = {
                        let b = self.channels[channel.index()].bank(bank);
                        !b.is_busy() && b.ready_at() <= self.now
                    };
                    if idle_ready && self.channels[channel.index()].queue().has_pending_for_bank(bank)
                    {
                        self.decide(channel.index(), bank);
                    }
                }
                Event::Completion { request } => {
                    let t = request.thread.index();
                    self.cores[t].complete(request.id);
                    self.scheduler.on_complete(&request, self.now);
                    self.poll_core(t);
                }
                Event::SchedTick => {
                    self.sched_tick_pending = false;
                    let (retired, misses, service) = self.view_arrays();
                    let view = SystemView {
                        retired: &retired,
                        misses: &misses,
                        service: &service,
                    };
                    self.scheduler.tick(self.now, &view);
                    self.schedule_next_tick();
                }
            }
        }
        self.now = horizon;
        for t in 0..self.cfg.num_threads {
            self.cores[t].poll(horizon);
        }
        self.collect(horizon)
    }

    fn collect(&self, horizon: Cycle) -> RunResult {
        let (retired, misses, service) = self.view_arrays();
        let ipc = retired
            .iter()
            .map(|&r| r as f64 / horizon.max(1) as f64)
            .collect();
        let total_serviced: u64 = self.channels.iter().map(|c| c.stats().total_serviced()).sum();
        let total_hits: u64 = self.channels.iter().map(|c| c.stats().total_row_hits()).sum();
        RunResult {
            cycles: horizon,
            retired,
            ipc,
            misses,
            service,
            total_serviced,
            row_hit_rate: if total_serviced == 0 {
                0.0
            } else {
                total_hits as f64 / total_serviced as f64
            },
            spilled: self.spilled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcm_sched::FrFcfs;
    use tcm_workload::BenchmarkProfile;

    fn cfg(threads: usize) -> SystemConfig {
        SystemConfig::builder().num_threads(threads).build().unwrap()
    }

    fn workload_of(profiles: Vec<BenchmarkProfile>) -> WorkloadSpec {
        WorkloadSpec::new("test", profiles)
    }

    #[test]
    fn compute_only_thread_runs_at_full_ipc() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::new("idle", 0.0, 0.5, 1.0)]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        let r = sys.run(10_000);
        assert_eq!(r.retired[0], 30_000, "3-wide core, never stalls");
        assert_eq!(r.misses[0], 0);
        assert_eq!(r.total_serviced, 0);
    }

    #[test]
    fn memory_bound_thread_is_slower_than_ideal() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::streaming()]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        let r = sys.run(200_000);
        assert!(r.ipc[0] < 3.0, "memory stalls must bite: ipc={}", r.ipc[0]);
        // A streaming thread alone is bank-latency bound: one row hit per
        // ~125 cycles, ~10 instructions per miss => IPC ~0.08.
        assert!(r.ipc[0] > 0.05, "but the thread must make progress");
        assert!(r.total_serviced > 100);
        // Streaming thread: overwhelmingly row hits when alone.
        assert!(r.row_hit_rate > 0.8, "hit rate {}", r.row_hit_rate);
    }

    #[test]
    fn random_access_thread_has_low_hit_rate_alone() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::random_access()]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        let r = sys.run(200_000);
        assert!(r.row_hit_rate < 0.2, "hit rate {}", r.row_hit_rate);
    }

    #[test]
    fn runs_are_deterministic() {
        let c = cfg(4);
        let w = random_workload_4();
        let r1 = System::new(&c, &w, Box::new(FrFcfs::new()), 7).run(100_000);
        let r2 = System::new(&c, &w, Box::new(FrFcfs::new()), 7).run(100_000);
        assert_eq!(r1, r2);
        let r3 = System::new(&c, &w, Box::new(FrFcfs::new()), 8).run(100_000);
        assert_ne!(r1.retired, r3.retired, "different seeds, different runs");
    }

    fn random_workload_4() -> WorkloadSpec {
        tcm_workload::random_workload(3, 4, 0.75)
    }

    #[test]
    fn service_accounting_balances() {
        let c = cfg(2);
        let w = workload_of(vec![
            BenchmarkProfile::streaming(),
            BenchmarkProfile::random_access(),
        ]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 1);
        let r = sys.run(100_000);
        // Every serviced request contributed bank-busy time to its
        // thread.
        assert!(r.service.iter().sum::<u64>() > 0);
        assert!(r.misses.iter().all(|&m| m > 0));
        // Misses injected >= serviced (some still in flight at horizon).
        assert!(r.misses.iter().sum::<u64>() >= r.total_serviced);
    }

    #[test]
    fn contention_slows_threads_down() {
        let c1 = cfg(1);
        let alone = System::new(
            &c1,
            &workload_of(vec![BenchmarkProfile::random_access()]),
            Box::new(FrFcfs::new()),
            0,
        )
        .run(150_000);
        let c24 = cfg(24);
        let mut threads = vec![BenchmarkProfile::random_access()];
        for _ in 0..23 {
            threads.push(BenchmarkProfile::streaming());
        }
        let shared = System::new(&c24, &workload_of(threads), Box::new(FrFcfs::new()), 0)
            .run(150_000);
        assert!(
            shared.ipc[0] < alone.ipc[0] * 0.8,
            "alone {} vs shared {}",
            alone.ipc[0],
            shared.ipc[0]
        );
    }

    #[test]
    #[should_panic(expected = "one profile per hardware thread")]
    fn workload_size_mismatch_panics() {
        let c = cfg(2);
        let w = workload_of(vec![BenchmarkProfile::streaming()]);
        System::new(&c, &w, Box::new(FrFcfs::new()), 0);
    }
}
