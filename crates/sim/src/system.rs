//! The system simulator: cores + channels + a scheduling policy, driven
//! by a deterministic event queue.

use crate::event::{Event, EventQueue};
use std::collections::VecDeque;
use tcm_chaos::{FaultKind, FaultPlan, FaultSpec};
use tcm_cpu::{Core, CoreStatus};
use tcm_dram::Channel;
use tcm_sched::{ChaosScheduler, PickContext, Scheduler, SystemView};
use tcm_telemetry::{labeled, Histogram, Telemetry, TraceEvent};
use tcm_types::{
    BankId, CancelToken, ChannelId, Cycle, Invariant, InvariantViolation, MemAddress, Request,
    RequestId, SimError, StallReport, SystemConfig, ThreadId,
};
use tcm_workload::{MachineShape, TraceGenerator, WorkloadSpec};

/// Default forward-progress watchdog limit: if memory requests are
/// outstanding but none retires for this many cycles, the run is
/// declared [`SimError::Stalled`].
///
/// Generously above any legitimate retirement gap: even a single fully
/// backed-up controller (128-entry buffer, 400-cycle conflicts) drains a
/// request every ≲ 52 k cycles.
pub const DEFAULT_STALL_LIMIT: Cycle = 1_000_000;

/// How many events the loop processes between cooperative-cancellation
/// checks (see [`System::set_cancel_token`]). Checking involves a
/// wall-clock read, so it is strided; the first event always checks.
pub const CANCEL_CHECK_STRIDE: u64 = 4096;

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Instructions retired per thread.
    pub retired: Vec<u64>,
    /// IPC per thread.
    pub ipc: Vec<f64>,
    /// Misses injected per thread.
    pub misses: Vec<u64>,
    /// Bank-busy service cycles attained per thread (all channels).
    pub service: Vec<u64>,
    /// Requests serviced in total.
    pub total_serviced: u64,
    /// Row-buffer hit rate over all serviced requests.
    pub row_hit_rate: f64,
    /// Number of requests that had to wait for controller-buffer space
    /// before admission (diagnostic; rare at realistic intensities).
    pub spilled: u64,
    /// Deepest any controller's request buffer got during the run
    /// (benchmark/report metric; deterministic like everything else).
    pub peak_queue: usize,
}

/// One simulated CMP + memory system executing one workload under one
/// scheduling policy.
///
/// Drive it with [`System::run`]; everything else is plumbing fed by the
/// event queue. Identical inputs (workload, seed base, config, policy)
/// produce bit-identical results.
///
/// # Example
///
/// ```
/// use tcm_sched::FrFcfs;
/// use tcm_sim::System;
/// use tcm_types::SystemConfig;
/// use tcm_workload::random_workload;
///
/// let cfg = SystemConfig::builder().num_threads(4).build()?;
/// let workload = random_workload(0, 4, 0.5);
/// let mut sys = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 1);
/// let result = sys.run(50_000);
/// assert_eq!(result.ipc.len(), 4);
/// # Ok::<(), tcm_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    channels: Vec<Channel>,
    cores: Vec<Core>,
    generators: Vec<Option<TraceGenerator>>,
    /// Addresses of each core's pending (not yet injected) burst.
    pending_accesses: Vec<Vec<MemAddress>>,
    scheduler: Box<dyn Scheduler>,
    events: EventQueue,
    now: Cycle,
    next_request_id: u64,
    /// Epoch per core for stale-event elimination.
    core_epoch: Vec<u64>,
    /// Requests that found their controller's buffer full, waiting to be
    /// admitted (hardware would backpressure; semantics preserved:
    /// arrival order per channel).
    spill: Vec<VecDeque<Request>>,
    spilled: u64,
    sched_tick_pending: bool,
    /// Misses injected into the memory system (watchdog bookkeeping).
    injected: u64,
    /// Misses whose data returned to a core.
    completed: u64,
    /// Cycle at which the most recent request retired.
    last_retire: Cycle,
    /// Events processed since the most recent retirement.
    events_since_retire: u64,
    /// Events processed at the current cycle (livelock guard).
    events_at_now: u64,
    /// Ceiling on `events_at_now`; exceeding it means the event loop is
    /// spinning without advancing time.
    livelock_limit: u64,
    /// Watchdog: declare the run stalled when requests are outstanding
    /// but none retires for this many cycles. `None` disables.
    stall_limit: Option<Cycle>,
    /// Hard cap on any spill queue. The MSHR caps bound total outstanding
    /// misses at `num_threads * mshrs_per_core`, so a spill queue deeper
    /// than that proves requests are leaking somewhere.
    spill_bound: usize,
    /// Typed error raised deep in the call graph (e.g. during `admit`),
    /// surfaced by the event loop at the next opportunity.
    pending_error: Option<SimError>,
    /// Cooperative cancellation: checked every [`CANCEL_CHECK_STRIDE`]
    /// events; `None` means the run cannot be cancelled.
    cancel: Option<CancelToken>,
    /// Events until the next cancellation check (strided probe: checks
    /// at the same event indices the old `events_processed % STRIDE`
    /// test did — the first event always checks).
    cancel_countdown: u64,
    /// Armed spill-flood fault: at its cycle, phantom requests are
    /// admitted until the spill queue outgrows its resource bound.
    chaos_flood: Option<FaultSpec>,
    /// Cycle the armed flood fires (`Cycle::MAX` when none is armed), so
    /// the per-event probe is one compare instead of an `Option` walk.
    chaos_flood_at: Cycle,
    /// Next cycle boundary at which the stall watchdog must be
    /// re-evaluated: `last_retire + stall_limit` (the earliest cycle the
    /// stalled condition can possibly hold), `Cycle::MAX` when the
    /// watchdog is disabled. The per-event probe is one compare; the
    /// full check runs only past the boundary — with semantics identical
    /// to evaluating it every event.
    stall_probe_at: Cycle,
    /// Whether any channel has the protocol checker armed (mirror of
    /// `verification_enabled()`, so the per-event fault poll skips the
    /// per-channel walk when nothing can ever be reported).
    verify_armed: bool,
    /// Scratch: schedulable banks of the channel currently being worked
    /// (reused across `schedule_idle_banks` calls, never allocated per
    /// decision).
    scratch_banks: Vec<BankId>,
    /// Scratch: request ids of the burst currently being injected.
    scratch_ids: Vec<RequestId>,
    /// Scratch: per-channel "this burst touched it" flags (reused, reset
    /// after each injection).
    touched_channels: Vec<bool>,
    /// Scratch: per-thread counter views for `SchedTick` (reused across
    /// ticks; the old code allocated three fresh `Vec`s per tick).
    scratch_retired: Vec<u64>,
    scratch_misses: Vec<u64>,
    scratch_service: Vec<u64>,
    /// Structured-event/metric sink, shared with every channel and the
    /// policy. Disabled by default; see [`System::set_telemetry`].
    telemetry: Telemetry,
    /// Next cycle at which the time-series sampler fires (`Cycle::MAX`
    /// when telemetry is disabled — the per-event check is one compare).
    next_sample: Cycle,
}

impl System {
    /// Builds a system running `workload` under `scheduler`.
    ///
    /// `seed_base` decorrelates multiple instances of the same benchmark
    /// within a workload (thread `i` uses seed
    /// `seed_base · 1000 + i` mixed with its profile).
    ///
    /// # Panics
    ///
    /// Panics if the workload's thread count differs from
    /// `cfg.num_threads` or the config fails validation.
    pub fn new(
        cfg: &SystemConfig,
        workload: &WorkloadSpec,
        scheduler: Box<dyn Scheduler>,
        seed_base: u64,
    ) -> Self {
        cfg.validate().expect("invalid system config");
        assert_eq!(
            workload.threads.len(),
            cfg.num_threads,
            "workload must have one profile per hardware thread"
        );
        let shape = MachineShape::from(cfg);
        let cores = (0..cfg.num_threads)
            .map(|i| {
                Core::new(
                    ThreadId::new(i),
                    cfg.issue_width,
                    cfg.window_size,
                    cfg.mshrs_per_core,
                )
            })
            .collect();
        let generators = workload
            .threads
            .iter()
            .enumerate()
            .map(|(i, profile)| {
                if TraceGenerator::is_compute_only(profile) {
                    None
                } else {
                    Some(TraceGenerator::new(
                        profile,
                        shape,
                        seed_base.wrapping_mul(1000).wrapping_add(i as u64),
                    ))
                }
            })
            .collect();
        let channels = (0..cfg.num_channels())
            .map(|c| {
                Channel::with_threads(
                    ChannelId::new(c),
                    cfg.banks_per_channel,
                    cfg.request_buffer,
                    cfg.num_threads,
                )
            })
            .collect();
        let mut sys = Self {
            cfg: cfg.clone(),
            channels,
            cores,
            generators,
            pending_accesses: vec![Vec::new(); cfg.num_threads],
            scheduler,
            events: EventQueue::new(),
            now: 0,
            next_request_id: 0,
            core_epoch: vec![0; cfg.num_threads],
            spill: (0..cfg.num_channels()).map(|_| VecDeque::new()).collect(),
            spilled: 0,
            sched_tick_pending: false,
            injected: 0,
            completed: 0,
            last_retire: 0,
            events_since_retire: 0,
            events_at_now: 0,
            // Per cycle the loop legitimately processes at most one event
            // per thread, a couple per bank, and one scheduler tick; 1024x
            // that is unreachable without a same-cycle spin.
            livelock_limit: 1024 * (cfg.num_threads + cfg.total_banks() + 4) as u64,
            stall_limit: Some(DEFAULT_STALL_LIMIT),
            spill_bound: cfg.num_threads * cfg.mshrs_per_core,
            pending_error: None,
            cancel: None,
            cancel_countdown: 0,
            chaos_flood: None,
            chaos_flood_at: Cycle::MAX,
            stall_probe_at: DEFAULT_STALL_LIMIT,
            verify_armed: false,
            scratch_banks: Vec::with_capacity(cfg.banks_per_channel),
            scratch_ids: Vec::new(),
            touched_channels: vec![false; cfg.num_channels()],
            scratch_retired: Vec::new(),
            scratch_misses: Vec::new(),
            scratch_service: Vec::new(),
            telemetry: Telemetry::disabled(),
            next_sample: Cycle::MAX,
        };
        if std::env::var_os("TCM_VERIFY").is_some_and(|v| v != "0") {
            sys.enable_verification();
        }
        // Channels arm the checker on their own in debug builds; keep the
        // fault-poll gate in sync with whatever they decided.
        sys.verify_armed = sys.verification_enabled();
        sys.bootstrap();
        sys
    }

    /// Turns on the DRAM protocol invariant checker on every channel
    /// (observation-only; results are bit-identical with it on or off).
    ///
    /// Debug builds enable it automatically; release builds can opt in
    /// here, via `RunConfig`, or with the `TCM_VERIFY` environment
    /// variable.
    pub fn enable_verification(&mut self) {
        for ch in &mut self.channels {
            ch.enable_verification();
        }
        self.verify_armed = true;
    }

    /// Enables or disables protocol verification on every channel.
    pub fn set_verification(&mut self, enabled: bool) {
        for ch in &mut self.channels {
            if enabled {
                ch.enable_verification();
            } else {
                ch.disable_verification();
            }
        }
        self.verify_armed = enabled;
    }

    /// Whether protocol verification is active on any channel.
    pub fn verification_enabled(&self) -> bool {
        self.channels.iter().any(Channel::verification_enabled)
    }

    /// Sets the forward-progress watchdog limit (cycles without a
    /// retirement while requests are outstanding). `None` disables the
    /// watchdog, including the same-cycle livelock guard.
    pub fn set_watchdog(&mut self, stall_limit: Option<Cycle>) {
        self.stall_limit = stall_limit;
        self.stall_probe_at = match stall_limit {
            Some(limit) => self.last_retire.saturating_add(limit),
            None => Cycle::MAX,
        };
    }

    /// Installs a cooperative cancellation token. The event loop polls it
    /// every [`CANCEL_CHECK_STRIDE`] events and surfaces
    /// [`SimError::Cancelled`] once it fires; `None` (the default) makes
    /// the run uncancellable.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Shares a telemetry handle with every channel and the policy, and
    /// arms the time-series sampler. Telemetry is observation-only:
    /// results are bit-identical with it attached or not.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        for ch in &mut self.channels {
            ch.set_telemetry(telemetry);
        }
        self.scheduler.attach_telemetry(telemetry);
        self.next_sample = telemetry.sample_interval().unwrap_or(Cycle::MAX);
    }

    /// Installs a fault-injection plan (see the `tcm-chaos` crate).
    ///
    /// Routes each fault to its execution site: channel faults to their
    /// target [`Channel`], monitor faults to the policy, the spill flood
    /// to the admission path, and — when a scheduler-spin fault is armed —
    /// wraps the policy in a [`ChaosScheduler`].
    ///
    /// Also enables protocol verification on every channel: injecting
    /// faults without the detectors armed would be undetectable by
    /// design. Installing an *empty* plan still installs the (inert)
    /// chaos state everywhere, so tests can prove the zero-fault plan is
    /// bit-identical to no plan at all.
    pub fn install_chaos(&mut self, plan: &FaultPlan) {
        self.enable_verification();
        for c in 0..self.channels.len() {
            self.channels[c].set_chaos(Some(plan.channel_chaos(c)));
        }
        for fault in plan.monitor_faults() {
            self.scheduler.inject_monitor_fault(&fault);
        }
        self.chaos_flood = plan.flood();
        self.chaos_flood_at = self.chaos_flood.map_or(Cycle::MAX, |f| f.at);
        if let Some(spin_at) = plan.spin_at() {
            // Placeholder swap: Box<dyn Scheduler> has no cheap default,
            // and the wrapper needs ownership of the inner policy.
            let inner = std::mem::replace(
                &mut self.scheduler,
                Box::new(tcm_sched::Fcfs::new()),
            );
            self.scheduler = Box::new(ChaosScheduler::new(inner, spin_at));
            // Policies without timers never got a tick scheduled at
            // bootstrap; the wrapper needs one for the spin to engage.
            self.schedule_next_tick();
        }
    }

    /// Executes an armed spill-flood fault: admits phantom requests to
    /// the target channel until its buffer and spill queue both overflow,
    /// tripping the resource-bound detector in [`System::admit`].
    fn trigger_flood(&mut self, fault: FaultSpec) {
        self.telemetry.emit(|| TraceEvent::ChaosInjected {
            cycle: self.now,
            kind: FaultKind::SpillFlood,
        });
        let channel = fault.channel.min(self.cfg.num_channels() - 1);
        let addr = MemAddress::new(
            ChannelId::new(channel),
            BankId::new(0),
            tcm_types::Row::new(0),
        );
        let phantoms = self.cfg.request_buffer + self.spill_bound + 1;
        for _ in 0..phantoms {
            let id = RequestId::new(self.next_request_id);
            self.next_request_id += 1;
            let thread = ThreadId::new(fault.thread.min(self.cfg.num_threads - 1));
            self.admit(Request::new(id, thread, addr, self.now));
            if self.pending_error.is_some() {
                // The bound tripped; no need to keep flooding. The
                // phantoms already admitted stay queued — poll_faults
                // surfaces the error before any of them is serviced.
                break;
            }
        }
    }

    /// The scheduling policy's display name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The policy's plausibility-guard anomaly log (empty for policies
    /// without a guard; see `Scheduler::degradation_events`).
    pub fn degradation_events(&self) -> &[tcm_telemetry::DegradationAnomaly] {
        self.scheduler.degradation_events()
    }

    /// Installs OS thread weights on the policy.
    pub fn set_thread_weights(&mut self, weights: &[f64]) {
        self.scheduler.set_thread_weights(weights);
    }

    fn bootstrap(&mut self) {
        for t in 0..self.cfg.num_threads {
            self.arm_next_burst(t);
            self.poll_core(t);
        }
        self.schedule_next_tick();
    }

    /// Pulls the next burst from thread `t`'s generator into its core,
    /// refilling the thread's pending-access buffer in place (its
    /// capacity is reused run-long; no per-burst allocation).
    fn arm_next_burst(&mut self, t: usize) {
        let Some(generator) = self.generators[t].as_mut() else {
            return;
        };
        let gap = generator.next_burst_into(&mut self.pending_accesses[t]);
        self.cores[t].schedule_burst(gap, self.pending_accesses[t].len());
    }

    /// Polls core `t` at the current cycle and (re)schedules its burst
    /// event. The only place core events are created; each call bumps the
    /// core's epoch so previously queued events become stale.
    fn poll_core(&mut self, t: usize) {
        match self.cores[t].poll(self.now) {
            CoreStatus::WillBurst { at } => {
                self.core_epoch[t] += 1;
                self.events.push(
                    at,
                    Event::CoreBurst {
                        thread: ThreadId::new(t),
                        epoch: self.core_epoch[t],
                    },
                );
            }
            CoreStatus::Blocked | CoreStatus::ComputeOnly => {}
        }
    }

    fn schedule_next_tick(&mut self) {
        if self.sched_tick_pending {
            return;
        }
        if let Some(at) = self.scheduler.next_tick(self.now) {
            self.events.push(at, Event::SchedTick);
            self.sched_tick_pending = true;
        }
    }

    /// Fills the per-thread counter view for the policy in place (the
    /// hot path reuses the scratch vectors across scheduler ticks).
    fn view_into(&self, retired: &mut Vec<u64>, misses: &mut Vec<u64>, service: &mut Vec<u64>) {
        let n = self.cfg.num_threads;
        retired.clear();
        retired.extend(self.cores.iter().map(|c| c.retired()));
        misses.clear();
        misses.extend(self.cores.iter().map(|c| c.misses_issued()));
        service.clear();
        service.resize(n, 0);
        for ch in &self.channels {
            for (t, s) in ch.stats().thread_service_all().iter().enumerate() {
                if t < n {
                    service[t] += s;
                }
            }
        }
    }

    /// Builds the per-thread counter view as owned vectors (end-of-run
    /// reporting; the event loop uses [`System::view_into`]).
    fn view_arrays(&self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let (mut retired, mut misses, mut service) = (Vec::new(), Vec::new(), Vec::new());
        self.view_into(&mut retired, &mut misses, &mut service);
        (retired, misses, service)
    }

    /// Injects thread `t`'s pending burst into the memory system. The
    /// burst buffer and the id staging both live on `self` and are
    /// reused; the only allocation left on this path is the event-queue
    /// push.
    fn inject_burst(&mut self, t: usize) {
        let accesses = std::mem::take(&mut self.pending_accesses[t]);
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        for addr in &accesses {
            let id = RequestId::new(self.next_request_id);
            self.next_request_id += 1;
            ids.push(id);
            let request = Request::new(id, ThreadId::new(t), *addr, self.now);
            self.admit(request);
            self.touched_channels[addr.channel.index()] = true;
        }
        self.cores[t].issue_burst(&ids);
        self.injected += ids.len() as u64;
        self.scratch_ids = ids;
        // Hand the (drained) buffer back so arm_next_burst refills it in
        // place.
        self.pending_accesses[t] = accesses;
        // Newly arrived requests may wake idle banks. Scanning the flag
        // array visits channels in ascending id order — the same order
        // the old sort+dedup of touched channel ids produced.
        for c in 0..self.touched_channels.len() {
            if std::mem::take(&mut self.touched_channels[c]) {
                self.schedule_idle_banks(ChannelId::new(c));
            }
        }
        self.arm_next_burst(t);
        self.poll_core(t);
    }

    /// Admits a request into its controller's buffer, spilling if full.
    fn admit(&mut self, request: Request) {
        let c = request.addr.channel.index();
        if self.spill[c].is_empty() && self.channels[c].enqueue(request).is_ok() {
            self.scheduler.on_enqueue(&request, self.now);
            return;
        }
        self.spilled += 1;
        if self.spill[c].len() >= self.spill_bound && self.pending_error.is_none() {
            self.pending_error = Some(SimError::InvariantViolation(InvariantViolation {
                invariant: Invariant::ResourceBound,
                cycle: self.now,
                channel: request.addr.channel,
                bank: Some(request.addr.bank),
                request: Some(request.id),
                detail: format!(
                    "spill queue for channel {} grew past the MSHR-implied \
                     outstanding-miss bound ({} threads x {} MSHRs = {}); \
                     requests are not draining",
                    c, self.cfg.num_threads, self.cfg.mshrs_per_core, self.spill_bound
                ),
            }));
        }
        self.spill[c].push_back(request);
    }

    /// Drains spilled requests into the channel while room exists.
    fn drain_spill(&mut self, channel: usize) {
        while let Some(&request) = self.spill[channel].front() {
            let request = Request {
                issued_at: self.now,
                ..request
            };
            if self.channels[channel].enqueue(request).is_ok() {
                self.spill[channel].pop_front();
                self.scheduler.on_enqueue(&request, self.now);
            } else {
                break;
            }
        }
    }

    /// Runs a scheduling decision for every idle bank with pending work.
    fn schedule_idle_banks(&mut self, channel: ChannelId) {
        let c = channel.index();
        // Snapshot the decision list into the reused scratch (decide()
        // needs &mut self, so the borrow can't stay live); the old code
        // collected the same snapshot into a fresh Vec.
        let mut banks = std::mem::take(&mut self.scratch_banks);
        banks.clear();
        banks.extend(self.channels[c].schedulable_banks(self.now));
        for &bank in &banks {
            self.decide(c, bank);
        }
        self.scratch_banks = banks;
    }

    /// Consults the policy and issues one request at `(channel, bank)`.
    ///
    /// Allocation-free: the policy sees the bank's pending lane as a
    /// borrowed slice (disjoint field borrows let `self.scheduler` be
    /// consulted while the slice borrows `self.channels`).
    fn decide(&mut self, channel: usize, bank: BankId) {
        let ctx = PickContext {
            now: self.now,
            channel: ChannelId::new(channel),
            bank,
            open_row: self.channels[channel].open_row(bank),
        };
        let pending = self.channels[channel].pending_for_bank(bank);
        debug_assert!(!pending.is_empty());
        let idx = self.scheduler.pick(pending, &ctx);
        assert!(idx < pending.len(), "policy returned an invalid index");
        let outcome =
            self.channels[channel].issue_at(bank.index(), idx, self.now, &self.cfg.timing);
        let remaining = self.channels[channel].pending_for_bank(bank);
        self.scheduler.on_service(&outcome, remaining, self.now);
        self.events
            .push(outcome.completes_at, Event::Completion { request: outcome.request });
        self.events.push(
            outcome.bank_free,
            Event::BankReady {
                channel: ChannelId::new(channel),
                bank,
            },
        );
        // Freed buffer space: admit spilled requests.
        self.drain_spill(channel);
    }

    /// Processes events until `horizon`, then settles all cores at the
    /// horizon and reports the run's results.
    ///
    /// Convenience wrapper over [`System::try_run`] for callers that treat
    /// any simulator fault as fatal.
    ///
    /// # Panics
    ///
    /// Panics if the run stalls (watchdog) or trips a protocol invariant;
    /// see [`System::try_run`] for the non-panicking form.
    pub fn run(&mut self, horizon: Cycle) -> RunResult {
        match self.try_run(horizon) {
            Ok(result) => result,
            Err(err) => panic!("simulation failed: {err}"),
        }
    }

    /// Processes events until `horizon`, then settles all cores at the
    /// horizon and reports the run's results — or a typed error if the
    /// simulation cannot finish soundly.
    ///
    /// # Errors
    ///
    /// * [`SimError::Stalled`] — requests were outstanding but none
    ///   retired for [`DEFAULT_STALL_LIMIT`] cycles (tune or disable via
    ///   [`System::set_watchdog`]), the event loop spun at a frozen cycle
    ///   (e.g. a policy whose `next_tick` never advances), or the event
    ///   queue drained with requests still in flight. The report carries a
    ///   snapshot of queue depths, bank states, and per-thread outstanding
    ///   counts.
    /// * [`SimError::InvariantViolation`] — the DRAM protocol checker (if
    ///   enabled) observed an illegal command sequence, or a spill queue
    ///   outgrew the MSHR-implied bound on outstanding misses.
    ///
    /// After an error the system is left at the faulting cycle; resuming
    /// is not supported.
    pub fn try_run(&mut self, horizon: Cycle) -> Result<RunResult, SimError> {
        // The conditional pop jumps `now` straight to the next scheduled
        // event; cancel/sample/chaos/stall checks below are strided or
        // boundary probes with semantics identical to the old per-event
        // bookkeeping (see each field's invariant).
        while let Some((cycle, event)) = self.events.pop_at_or_before(horizon) {
            debug_assert!(cycle >= self.now, "event queue went backwards");
            if cycle > self.now {
                self.events_at_now = 0;
            }
            self.now = cycle;
            self.events_at_now += 1;
            self.events_since_retire += 1;
            if self.cancel_countdown == 0 {
                self.cancel_countdown = CANCEL_CHECK_STRIDE;
                if let Some(token) = &self.cancel {
                    if token.is_cancelled() {
                        return Err(SimError::Cancelled(self.now));
                    }
                }
            }
            self.cancel_countdown -= 1;
            if self.now >= self.next_sample {
                self.sample_series();
            }
            if self.now >= self.chaos_flood_at {
                self.chaos_flood_at = Cycle::MAX;
                if let Some(fault) = self.chaos_flood.take() {
                    self.trigger_flood(fault);
                }
            }
            if self.events_at_now > self.livelock_limit || self.now > self.stall_probe_at {
                self.check_watchdog()?;
            }
            match event {
                Event::CoreBurst { thread, epoch } => {
                    let t = thread.index();
                    // A stale epoch (the core was re-polled after this
                    // event was scheduled) still falls through to the
                    // fault poll below: a pending error must surface on
                    // the event that observed it, not the next one.
                    if epoch == self.core_epoch[t] {
                        match self.cores[t].poll(self.now) {
                            CoreStatus::WillBurst { at } if at <= self.now => {
                                self.inject_burst(t);
                            }
                            // Blocked (e.g. MSHR raced) or re-timed: re-poll
                            // created no event for Blocked; completions will.
                            CoreStatus::WillBurst { .. } => self.poll_core(t),
                            _ => {}
                        }
                    }
                }
                Event::BankReady { channel, bank } => {
                    self.drain_spill(channel.index());
                    let c = channel.index();
                    if self.channels[c].bank_idle_ready(bank, self.now)
                        && self.channels[c].queue().has_pending_for_bank(bank)
                    {
                        self.decide(c, bank);
                    }
                }
                Event::Completion { request } => {
                    let t = request.thread.index();
                    self.cores[t].complete(request.id);
                    self.completed += 1;
                    self.last_retire = self.now;
                    self.events_since_retire = 0;
                    self.scheduler.on_complete(&request, self.now);
                    self.poll_core(t);
                }
                Event::SchedTick => {
                    self.sched_tick_pending = false;
                    let mut retired = std::mem::take(&mut self.scratch_retired);
                    let mut misses = std::mem::take(&mut self.scratch_misses);
                    let mut service = std::mem::take(&mut self.scratch_service);
                    self.view_into(&mut retired, &mut misses, &mut service);
                    let view = SystemView {
                        retired: &retired,
                        misses: &misses,
                        service: &service,
                    };
                    self.scheduler.tick(self.now, &view);
                    self.scratch_retired = retired;
                    self.scratch_misses = misses;
                    self.scratch_service = service;
                    self.schedule_next_tick();
                }
            }
            if self.pending_error.is_some() || self.verify_armed {
                self.poll_faults()?;
            }
        }
        if self.stall_limit.is_some() && self.injected > self.completed && self.events.is_empty() {
            // Nothing left to process but requests are still in flight:
            // whatever event should have completed them was never pushed.
            return Err(SimError::Stalled(Box::new(self.stall_report())));
        }
        self.now = horizon;
        for t in 0..self.cfg.num_threads {
            self.cores[t].poll(horizon);
        }
        for ch in &mut self.channels {
            ch.finish_verification(horizon)?;
        }
        Ok(self.collect(horizon))
    }

    /// Full watchdog evaluation, run only when the per-event probe fires
    /// (`events_at_now` past the livelock ceiling, or `now` past the
    /// earliest cycle the stalled condition can hold). Re-arms the probe
    /// boundary on a clean pass.
    #[cold]
    fn check_watchdog(&mut self) -> Result<(), SimError> {
        if let Some(limit) = self.stall_limit {
            let stalled = self.injected > self.completed
                && self.now.saturating_sub(self.last_retire) > limit;
            if stalled || self.events_at_now > self.livelock_limit {
                return Err(SimError::Stalled(Box::new(self.stall_report())));
            }
            self.stall_probe_at = self.last_retire.saturating_add(limit);
        } else {
            self.stall_probe_at = Cycle::MAX;
        }
        Ok(())
    }

    /// Test hook: routes all future event pushes through the reference
    /// binary-heap path (see `EventQueue::set_reference_mode`), so
    /// equivalence tests can prove the lane fast path is bit-identical.
    #[doc(hidden)]
    pub fn set_reference_event_order(&mut self, on: bool) {
        self.events.set_reference_mode(on);
    }

    /// Surfaces any fault recorded during event processing: a pending
    /// typed error or a protocol-checker violation on some channel.
    fn poll_faults(&mut self) -> Result<(), SimError> {
        if let Some(err) = self.pending_error.take() {
            return Err(err);
        }
        for ch in &self.channels {
            if let Some(violation) = ch.violation() {
                return Err(SimError::InvariantViolation(violation.clone()));
            }
        }
        Ok(())
    }

    /// Snapshot of simulator state for a [`SimError::Stalled`] report.
    fn stall_report(&self) -> StallReport {
        StallReport {
            // A single-controller machine has no one else to blame.
            controller: None,
            now: self.now,
            last_retire: self.last_retire,
            events_since_retire: self.events_since_retire,
            outstanding: self.cores.iter().map(Core::outstanding).collect(),
            queue_depths: self.channels.iter().map(|ch| ch.queue().len()).collect(),
            spill_depths: self.spill.iter().map(VecDeque::len).collect(),
            busy_banks: self.channels.iter().map(Channel::busy_bank_count).collect(),
        }
    }

    /// Samples the periodic telemetry series (queue depth and bus
    /// utilization per channel) and re-arms the sampler past `now`.
    fn sample_series(&mut self) {
        let Some(interval) = self.telemetry.sample_interval() else {
            self.next_sample = Cycle::MAX;
            return;
        };
        let now = self.now;
        let mut at = if self.next_sample == Cycle::MAX {
            interval
        } else {
            self.next_sample
        }
        .max(interval);
        while at <= now {
            at += interval;
        }
        self.next_sample = at;
        let channels = &self.channels;
        self.telemetry.with_metrics(|m| {
            for (c, ch) in channels.iter().enumerate() {
                let idx = c.to_string();
                let label: &[(&str, &str)] = &[("channel", &idx)];
                m.push_series(
                    &labeled("queue_depth", label),
                    now,
                    ch.queue().len() as f64,
                );
                m.push_series(
                    &labeled("bus_utilization", label),
                    now,
                    ch.stats().bus_busy_cycles as f64 / now.max(1) as f64,
                );
            }
        });
    }

    /// Folds the run's final counters into the metrics registry: global
    /// and per-bank service counts, per-thread service/miss counters, the
    /// row-hit-rate gauge (bit-equal to [`RunResult::row_hit_rate`]),
    /// bus utilization, and the always-on queue-depth histograms.
    fn absorb_metrics(&self, run: &RunResult) {
        self.telemetry.with_metrics(|m| {
            m.set_counter("requests_serviced", run.total_serviced);
            m.set_counter("requests_spilled", run.spilled);
            m.set_counter("peak_queue_depth", run.peak_queue as u64);
            m.set_gauge("row_hit_rate", run.row_hit_rate);
            for (c, ch) in self.channels.iter().enumerate() {
                let stats = ch.stats();
                let cidx = c.to_string();
                let clabel: &[(&str, &str)] = &[("channel", &cidx)];
                m.set_counter(&labeled("bus_busy_cycles", clabel), stats.bus_busy_cycles);
                m.set_gauge(
                    &labeled("bus_utilization", clabel),
                    stats.bus_busy_cycles as f64 / run.cycles.max(1) as f64,
                );
                let depths = Histogram::from_log2_counts(stats.depth_histogram());
                m.merge_histogram("queue_depth", depths.clone());
                m.merge_histogram(&labeled("queue_depth", clabel), depths);
                for (b, bank) in stats.banks().iter().enumerate() {
                    let bidx = b.to_string();
                    let labels: &[(&str, &str)] = &[("channel", &cidx), ("bank", &bidx)];
                    m.set_counter(&labeled("requests_serviced", labels), bank.serviced);
                    m.set_counter(&labeled("row_hits", labels), bank.row_hits);
                    m.set_counter(&labeled("row_conflicts", labels), bank.row_conflicts);
                }
            }
            for (t, (&svc, &miss)) in run.service.iter().zip(&run.misses).enumerate() {
                let tidx = t.to_string();
                let labels: &[(&str, &str)] = &[("thread", &tidx)];
                m.set_counter(&labeled("service_cycles", labels), svc);
                m.set_counter(&labeled("misses", labels), miss);
            }
        });
    }

    fn collect(&self, horizon: Cycle) -> RunResult {
        let (retired, misses, service) = self.view_arrays();
        let ipc = retired
            .iter()
            .map(|&r| r as f64 / horizon.max(1) as f64)
            .collect();
        let total_serviced: u64 = self.channels.iter().map(|c| c.stats().total_serviced()).sum();
        let total_hits: u64 = self.channels.iter().map(|c| c.stats().total_row_hits()).sum();
        let result = RunResult {
            cycles: horizon,
            retired,
            ipc,
            misses,
            service,
            total_serviced,
            row_hit_rate: if total_serviced == 0 {
                0.0
            } else {
                total_hits as f64 / total_serviced as f64
            },
            spilled: self.spilled,
            peak_queue: self
                .channels
                .iter()
                .map(|c| c.stats().peak_queue_depth)
                .max()
                .unwrap_or(0),
        };
        if self.telemetry.is_enabled() {
            self.absorb_metrics(&result);
        }
        result
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_sched::FrFcfs;
    use tcm_workload::BenchmarkProfile;

    fn cfg(threads: usize) -> SystemConfig {
        SystemConfig::builder().num_threads(threads).build().unwrap()
    }

    fn workload_of(profiles: Vec<BenchmarkProfile>) -> WorkloadSpec {
        WorkloadSpec::new("test", profiles)
    }

    #[test]
    fn compute_only_thread_runs_at_full_ipc() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::new("idle", 0.0, 0.5, 1.0)]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        let r = sys.run(10_000);
        assert_eq!(r.retired[0], 30_000, "3-wide core, never stalls");
        assert_eq!(r.misses[0], 0);
        assert_eq!(r.total_serviced, 0);
    }

    #[test]
    fn memory_bound_thread_is_slower_than_ideal() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::streaming()]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        let r = sys.run(200_000);
        assert!(r.ipc[0] < 3.0, "memory stalls must bite: ipc={}", r.ipc[0]);
        // A streaming thread alone is bank-latency bound: one row hit per
        // ~125 cycles, ~10 instructions per miss => IPC ~0.08.
        assert!(r.ipc[0] > 0.05, "but the thread must make progress");
        assert!(r.total_serviced > 100);
        // Streaming thread: overwhelmingly row hits when alone.
        assert!(r.row_hit_rate > 0.8, "hit rate {}", r.row_hit_rate);
    }

    #[test]
    fn random_access_thread_has_low_hit_rate_alone() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::random_access()]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        let r = sys.run(200_000);
        assert!(r.row_hit_rate < 0.2, "hit rate {}", r.row_hit_rate);
    }

    #[test]
    fn runs_are_deterministic() {
        let c = cfg(4);
        let w = random_workload_4();
        let r1 = System::new(&c, &w, Box::new(FrFcfs::new()), 7).run(100_000);
        let r2 = System::new(&c, &w, Box::new(FrFcfs::new()), 7).run(100_000);
        assert_eq!(r1, r2);
        let r3 = System::new(&c, &w, Box::new(FrFcfs::new()), 8).run(100_000);
        assert_ne!(r1.retired, r3.retired, "different seeds, different runs");
    }

    fn random_workload_4() -> WorkloadSpec {
        tcm_workload::random_workload(3, 4, 0.75)
    }

    #[test]
    fn service_accounting_balances() {
        let c = cfg(2);
        let w = workload_of(vec![
            BenchmarkProfile::streaming(),
            BenchmarkProfile::random_access(),
        ]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 1);
        let r = sys.run(100_000);
        // Every serviced request contributed bank-busy time to its
        // thread.
        assert!(r.service.iter().sum::<u64>() > 0);
        assert!(r.misses.iter().all(|&m| m > 0));
        // Misses injected >= serviced (some still in flight at horizon).
        assert!(r.misses.iter().sum::<u64>() >= r.total_serviced);
    }

    #[test]
    fn contention_slows_threads_down() {
        let c1 = cfg(1);
        let alone = System::new(
            &c1,
            &workload_of(vec![BenchmarkProfile::random_access()]),
            Box::new(FrFcfs::new()),
            0,
        )
        .run(150_000);
        let c24 = cfg(24);
        let mut threads = vec![BenchmarkProfile::random_access()];
        for _ in 0..23 {
            threads.push(BenchmarkProfile::streaming());
        }
        let shared = System::new(&c24, &workload_of(threads), Box::new(FrFcfs::new()), 0)
            .run(150_000);
        assert!(
            shared.ipc[0] < alone.ipc[0] * 0.8,
            "alone {} vs shared {}",
            alone.ipc[0],
            shared.ipc[0]
        );
    }

    #[test]
    #[should_panic(expected = "one profile per hardware thread")]
    fn workload_size_mismatch_panics() {
        let c = cfg(2);
        let w = workload_of(vec![BenchmarkProfile::streaming()]);
        System::new(&c, &w, Box::new(FrFcfs::new()), 0);
    }

    #[test]
    fn try_run_agrees_with_run_on_healthy_workload() {
        let c = cfg(4);
        let w = random_workload_4();
        let via_run = System::new(&c, &w, Box::new(FrFcfs::new()), 7).run(100_000);
        let via_try = System::new(&c, &w, Box::new(FrFcfs::new()), 7)
            .try_run(100_000)
            .expect("healthy workload must not fault");
        assert_eq!(via_run, via_try);
    }

    #[test]
    fn spill_overflow_surfaces_typed_error() {
        let c = cfg(1);
        let w = workload_of(vec![BenchmarkProfile::streaming()]);
        let mut sys = System::new(&c, &w, Box::new(FrFcfs::new()), 0);
        // Shrink the bound so the overflow is reachable without injecting
        // thousands of requests, then stuff one channel well past its
        // 128-entry buffer.
        sys.spill_bound = 4;
        let addr = MemAddress::new(ChannelId::new(0), BankId::new(0), tcm_types::Row::new(0));
        for i in 0..200 {
            let req = Request::new(
                RequestId::new(1_000_000 + i),
                ThreadId::new(0),
                addr,
                0,
            );
            sys.admit(req);
        }
        let err = sys.pending_error.take().expect("overflow must raise an error");
        match err {
            SimError::InvariantViolation(v) => {
                assert_eq!(v.invariant, Invariant::ResourceBound);
                assert!(v.detail.contains("spill queue"), "detail: {}", v.detail);
            }
            other => panic!("expected an invariant violation, got {other}"),
        }
    }
}
