//! System simulator and experiment runner for the TCM reproduction.
//!
//! Binds the substrates together: [`System`] couples `tcm-cpu` cores,
//! `tcm-dram` channels and a `tcm-sched` policy behind a deterministic
//! event queue. Experiments run through the [`Session`] / [`Sweep`]
//! layer: a session fixes the machine configuration and caches alone-run
//! IPCs, a sweep names a policies × workloads (× seeds) grid and
//! executes it serially or sharded across threads — with bit-identical
//! results either way — computing the paper's metrics (weighted speedup,
//! harmonic speedup, maximum slowdown) per cell.
//!
//! # Example: compare the paper's lineup on two workloads
//!
//! ```
//! use tcm_sim::{PolicyKind, RunConfig, Session};
//! use tcm_types::SystemConfig;
//! use tcm_workload::random_workload;
//!
//! let session = Session::new(
//!     RunConfig::builder()
//!         .system(SystemConfig::builder().num_threads(4).build()?)
//!         .horizon(50_000)
//!         .build(),
//! );
//! let result = session
//!     .sweep()
//!     .policies(PolicyKind::paper_lineup(4))
//!     .workloads((0..2).map(|s| random_workload(s, 4, 0.75)))
//!     .run_parallel(2);
//! for (policy, avg) in result.averages() {
//!     println!("{policy}: WS {:.2}, maxSD {:.2}", avg.weighted_speedup, avg.max_slowdown);
//! }
//! println!("{}", result.stats().throughput_line());
//! # Ok::<(), tcm_types::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod checkpoint;
mod event;
mod metrics;
mod multi;
pub mod report;
mod runner;
pub mod scatter;
pub mod sweep;
mod system;

pub use event::{Event, EventQueue};
pub use multi::MultiSystem;
pub use metrics::{mean, variance, workload_metrics, IpcPair, WorkloadMetrics};
pub use runner::{
    average_metrics, EvalResult, PolicyKind, RunConfig, RunConfigBuilder, PAPER_LINEUP_LABELS,
};
pub use sweep::{
    AloneIpcCache, CellError, CellFailureKind, ProfileFingerprint, RetryPolicy, Session,
    SessionStats, Sweep, SweepCell, SweepResult, SweepStats,
};
pub use system::{RunResult, System, DEFAULT_STALL_LIMIT};
