//! System simulator and experiment runner for the TCM reproduction.
//!
//! Binds the substrates together: [`System`] couples `tcm-cpu` cores,
//! `tcm-dram` channels and a `tcm-sched` policy behind a deterministic
//! event queue; the runner helpers ([`evaluate`], [`AloneCache`],
//! [`PolicyKind`]) run whole experiments and compute the paper's
//! metrics (weighted speedup, harmonic speedup, maximum slowdown).
//!
//! # Example: compare TCM to FR-FCFS on one workload
//!
//! ```
//! use tcm_sim::{evaluate, AloneCache, PolicyKind, RunConfig};
//! use tcm_types::SystemConfig;
//! use tcm_workload::random_workload;
//!
//! let rc = RunConfig {
//!     system: SystemConfig::builder().num_threads(4).build()?,
//!     horizon: 50_000,
//! };
//! let workload = random_workload(0, 4, 0.75);
//! let mut alone = AloneCache::new();
//! let frfcfs = evaluate(&PolicyKind::FrFcfs, &workload, &rc, &mut alone);
//! assert!(frfcfs.metrics.weighted_speedup > 0.0);
//! # Ok::<(), tcm_types::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod metrics;
pub mod report;
mod runner;
pub mod scatter;
mod system;

pub use event::{Event, EventQueue};
pub use metrics::{mean, variance, workload_metrics, IpcPair, WorkloadMetrics};
pub use runner::{
    average_metrics, evaluate, evaluate_weighted, AloneCache, EvalResult, PolicyKind, RunConfig,
};
pub use system::{RunResult, System};
