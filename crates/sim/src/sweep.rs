//! The experiment layer: [`Session`] + [`Sweep`] — the single public
//! entry point for running policy-comparison experiments.
//!
//! Every figure and table of the paper is a *sweep*: N policies × M
//! workloads (× K simulator seeds), each cell an independent,
//! deterministic simulation. This module makes that structure explicit:
//!
//! * a [`Session`] owns the immutable machine/run configuration
//!   ([`RunConfig`]) and a thread-safe cache of alone-run IPCs (the
//!   slowdown denominators), keyed by benchmark-profile fingerprint;
//! * a [`Sweep`] builder names the grid declaratively
//!   (`.policies(..).workloads(..).seeds(..)`) and executes it either
//!   serially ([`Sweep::run`]) or sharded across `std::thread::scope`
//!   workers ([`Sweep::run_parallel`]) — with **bit-identical** results,
//!   because every cell is an isolated simulation and the alone-IPC
//!   cache is pre-populated before the parallel phase;
//! * a [`SweepResult`] holds the full result grid plus aggregate
//!   metrics and a [`SweepStats`] throughput record (cells simulated,
//!   sim-cycles/sec, worker count).
//!
//! # Example
//!
//! ```
//! use tcm_sim::{PolicyKind, RunConfig, Session};
//! use tcm_types::SystemConfig;
//! use tcm_workload::random_workload;
//!
//! let rc = RunConfig::builder()
//!     .system(SystemConfig::builder().num_threads(4).build()?)
//!     .horizon(50_000)
//!     .build();
//! let session = Session::new(rc);
//! let result = session
//!     .sweep()
//!     .policies(PolicyKind::paper_lineup(4))
//!     .workloads((0..2).map(|s| random_workload(s, 4, 0.75)))
//!     .run_parallel(2);
//! assert_eq!(result.cells().len(), 5 * 2);
//! for (label, avg) in result.averages() {
//!     assert!(avg.weighted_speedup > 0.0, "{label}");
//! }
//! # Ok::<(), tcm_types::ConfigError>(())
//! ```

use crate::checkpoint::{self, CheckpointHeader, CheckpointWriter};
use crate::metrics::{workload_metrics, IpcPair, WorkloadMetrics};
use crate::multi::MultiSystem;
use crate::runner::{workload_seed, EvalResult, PolicyKind, RunConfig};
use crate::system::{RunResult, System};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tcm_sched::FrFcfs;
use tcm_telemetry::Telemetry;
use tcm_types::{CancelToken, ControllerId, Cycle, SimError};
use tcm_workload::{BenchmarkProfile, WorkloadSpec};

/// Exact identity of a benchmark profile for alone-IPC caching.
///
/// Within one [`Session`] the machine configuration and horizon are
/// fixed, so an alone run is determined entirely by the profile's name
/// and its three characteristics. The fingerprint stores the exact
/// field values (float bit patterns included), so distinct profiles can
/// never collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProfileFingerprint {
    name: String,
    mpki_bits: u64,
    rbl_bits: u64,
    blp_bits: u64,
}

impl ProfileFingerprint {
    /// Fingerprint of `profile`.
    pub fn of(profile: &BenchmarkProfile) -> Self {
        Self {
            name: profile.name.clone(),
            mpki_bits: profile.mpki.to_bits(),
            rbl_bits: profile.rbl.to_bits(),
            blp_bits: profile.blp.to_bits(),
        }
    }
}

/// Thread-safe cache of alone-run IPCs with hit/miss accounting.
///
/// Lives inside a [`Session`]; exposed for its counters, which make
/// cache behavior observable (and testable): a repeated profile must
/// miss exactly once and hit on every later lookup.
#[derive(Debug, Default)]
pub struct AloneIpcCache {
    map: Mutex<HashMap<ProfileFingerprint, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AloneIpcCache {
    /// Number of cached alone-run IPCs.
    pub fn len(&self) -> usize {
        self.map.lock().expect("alone cache poisoned").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the alone simulation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn get_or_compute(&self, profile: &BenchmarkProfile, rc: &RunConfig) -> f64 {
        let key = ProfileFingerprint::of(profile);
        if let Some(&ipc) = self.map.lock().expect("alone cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ipc;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ipc = compute_alone_ipc(profile, rc);
        self.map
            .lock()
            .expect("alone cache poisoned")
            .insert(key, ipc);
        ipc
    }
}

/// IPC of `profile` running alone on `rc`'s machine (uncached).
///
/// A thread's slowdown compares its shared-run IPC against its IPC when
/// running alone on the same machine. The policy is irrelevant with a
/// single thread, so FR-FCFS is used; compute-only profiles retire at
/// the issue width by construction.
pub(crate) fn compute_alone_ipc(profile: &BenchmarkProfile, rc: &RunConfig) -> f64 {
    if profile.mpki <= 0.0 {
        return rc.system.issue_width as f64;
    }
    let mut cfg = rc.system.clone();
    cfg.num_threads = 1;
    let workload = WorkloadSpec::new(profile.name.clone(), vec![profile.clone()]);
    if cfg.topology.num_controllers() > 1 {
        let controllers = cfg
            .topology
            .controllers()
            .map(|_| Box::new(FrFcfs::new()) as _)
            .collect();
        let mut sys = MultiSystem::new(&cfg, &workload, controllers, None, 0);
        sys.set_hosts(rc.intra_hosts);
        sys.run(rc.horizon).ipc[0]
    } else {
        let mut sys = System::new(&cfg, &workload, Box::new(FrFcfs::new()), 0);
        sys.run(rc.horizon).ipc[0]
    }
}

/// Runs one (policy, workload) cell and computes the paper's metrics,
/// treating any simulator fault as fatal.
///
/// Thin wrapper over [`try_eval_cell`] for the deprecated single-cell
/// entry points, which predate typed errors.
pub(crate) fn eval_cell(
    policy: &PolicyKind,
    workload: &WorkloadSpec,
    rc: &RunConfig,
    weights: Option<&[f64]>,
    seed_xor: u64,
    alone_ipc: impl FnMut(&BenchmarkProfile) -> f64,
) -> EvalResult {
    match try_eval_cell(policy, workload, rc, weights, seed_xor, None, alone_ipc) {
        Ok(result) => result,
        Err(err) => panic!("cell evaluation failed: {err}"),
    }
}

/// The cooperative token one cell polls: the per-cell deadline from the
/// run configuration (fresh per attempt, so a retried timeout gets a
/// full deadline again) combined, when a sweep-level `cancel` parent is
/// installed, with that parent — a single parent cancel aborts every
/// in-flight cell.
fn cell_token(rc: &RunConfig, cancel: Option<&CancelToken>) -> Option<CancelToken> {
    match (cancel, rc.cell_deadline) {
        (Some(parent), deadline) => Some(parent.child_with_deadline(deadline)),
        (None, Some(deadline)) => Some(CancelToken::with_deadline(deadline)),
        (None, None) => None,
    }
}

/// Runs one (policy, workload) cell and computes the paper's metrics.
///
/// `alone_ipc` supplies the slowdown denominators (typically from a
/// [`Session`]'s cache); `seed_xor` perturbs the canonical per-workload
/// simulator seed (0 = the canonical seed). The run honors the
/// configuration's `verify` and `watchdog` hardening knobs.
pub(crate) fn try_eval_cell(
    policy: &PolicyKind,
    workload: &WorkloadSpec,
    rc: &RunConfig,
    weights: Option<&[f64]>,
    seed_xor: u64,
    cancel: Option<&CancelToken>,
    mut alone_ipc: impl FnMut(&BenchmarkProfile) -> f64,
) -> Result<EvalResult, SimError> {
    let telemetry = rc.telemetry.as_ref().map(Telemetry::new);
    let run = if rc.system.topology.num_controllers() > 1 {
        run_multi_cell(policy, workload, rc, weights, seed_xor, cancel, telemetry.as_ref())?
    } else {
        run_single_cell(policy, workload, rc, weights, seed_xor, cancel, telemetry.as_ref())?
    };
    let pairs: Vec<IpcPair> = workload
        .threads
        .iter()
        .enumerate()
        .map(|(i, profile)| IpcPair {
            shared: run.ipc[i],
            alone: alone_ipc(profile),
        })
        .collect();
    let metrics = workload_metrics(&pairs);
    Ok(EvalResult {
        policy: policy.label(),
        workload: workload.name.clone(),
        metrics,
        slowdowns: pairs.iter().map(|p| p.slowdown()).collect(),
        speedups: pairs.iter().map(|p| p.speedup()).collect(),
        run,
        telemetry: telemetry.and_then(|t| t.snapshot()).map(Box::new),
    })
}

/// Runs one cell on the single-controller [`System`] engine — the legacy
/// path, preserved bit-for-bit for flat topologies.
fn run_single_cell(
    policy: &PolicyKind,
    workload: &WorkloadSpec,
    rc: &RunConfig,
    weights: Option<&[f64]>,
    seed_xor: u64,
    cancel: Option<&CancelToken>,
    telemetry: Option<&Telemetry>,
) -> Result<RunResult, SimError> {
    let n = workload.threads.len();
    let scheduler = policy.build(n, &rc.system);
    let mut sys = System::new(
        &rc.system,
        workload,
        scheduler,
        workload_seed(workload) ^ seed_xor,
    );
    if rc.verify {
        sys.enable_verification();
    }
    sys.set_watchdog(rc.watchdog);
    if let Some(plan) = &rc.chaos {
        plan.validate(&rc.system.topology)
            .map_err(SimError::Config)?;
        sys.install_chaos(plan);
    }
    sys.set_cancel_token(cell_token(rc, cancel));
    if let Some(w) = weights {
        sys.set_thread_weights(w);
    }
    // Attached last so a ChaosScheduler wrapper installed by
    // `install_chaos` receives the handle too.
    if let Some(t) = telemetry {
        sys.set_telemetry(t);
    }
    sys.try_run(rc.horizon)
}

/// Runs one cell on the [`MultiSystem`] engine: one policy instance per
/// controller, plus the policy's meta-controller when it defines one,
/// sharded over `rc.intra_hosts` host threads (bit-identical for any
/// count).
fn run_multi_cell(
    policy: &PolicyKind,
    workload: &WorkloadSpec,
    rc: &RunConfig,
    weights: Option<&[f64]>,
    seed_xor: u64,
    cancel: Option<&CancelToken>,
    telemetry: Option<&Telemetry>,
) -> Result<RunResult, SimError> {
    let n = workload.threads.len();
    let controllers = (0..rc.system.topology.num_controllers())
        .map(|_| policy.build_controller(n, &rc.system))
        .collect();
    let mut sys = MultiSystem::new(
        &rc.system,
        workload,
        controllers,
        policy.build_meta(n, &rc.system),
        workload_seed(workload) ^ seed_xor,
    );
    sys.set_hosts(rc.intra_hosts);
    if rc.verify {
        sys.enable_verification();
    }
    sys.set_watchdog(rc.watchdog);
    if let Some(plan) = &rc.chaos {
        plan.validate(&rc.system.topology)
            .map_err(SimError::Config)?;
        sys.install_chaos(plan);
    }
    sys.set_cancel_token(cell_token(rc, cancel));
    if let Some(w) = weights {
        sys.set_thread_weights(w);
    }
    if let Some(t) = telemetry {
        sys.set_telemetry(t);
    }
    sys.try_run(rc.horizon)
}

/// Retry policy for timed-out cells: bounded attempts with a
/// deterministic, seeded, jittered backoff schedule.
///
/// Only wall-clock timeouts are retryable (deterministic failures would
/// replay identically — see [`CellFailureKind::is_retryable`]). A cell
/// gets up to [`RetryPolicy::max_attempts`] total attempts; between
/// attempt `n` and `n + 1` the executor sleeps
/// [`RetryPolicy::backoff`]`(cell_seed, n)`. The schedule is a pure
/// function of the cell's seed and the attempt number — **no entropy is
/// drawn at retry time** — so a replayed sweep (or a restarted daemon
/// re-admitting the same job) waits the exact same schedule and, because
/// the simulation itself is deterministic, produces bit-identical
/// results. Shared by [`Sweep`] and the `tcm-serve` daemon's retry path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per cell, counting the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff unit: the window for the first retry is `[base/2, base)`,
    /// doubling per subsequent attempt.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Two attempts (one retry) with a short jittered pause — the
    /// successor of the historical immediate retry-once policy.
    fn default() -> Self {
        Self {
            max_attempts: 2,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// Fail fast: a single attempt, no retries.
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// `attempts` total attempts with the default backoff shape.
    pub fn with_attempts(attempts: u32) -> Self {
        Self {
            max_attempts: attempts.max(1),
            ..Self::default()
        }
    }

    /// The sleep before retrying after failed attempt `attempt`
    /// (1-based). Deterministic in `(cell_seed, attempt)`: exponential
    /// window `base * 2^(attempt-1)` capped at [`RetryPolicy::cap`],
    /// jittered into its upper half by a splitmix64 draw of the seed so
    /// simultaneous retries of different cells do not stampede in sync.
    pub fn backoff(&self, cell_seed: u64, attempt: u32) -> Duration {
        let window = self
            .base
            .saturating_mul(1u32 << attempt.clamp(1, 16).saturating_sub(1))
            .min(self.cap);
        let half = window.as_nanos() as u64 / 2;
        if half == 0 {
            return Duration::ZERO;
        }
        let jitter = splitmix64(cell_seed ^ 0xa076_1d64_78bd_642fu64.wrapping_mul(attempt as u64));
        Duration::from_nanos(half + jitter % half)
    }
}

/// SplitMix64: the standard 64-bit finalizer, used for deterministic
/// backoff jitter (construction-time randomness only, like `tcm-chaos`).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a sweep cell failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CellFailureKind {
    /// The cell's simulation panicked; the payload message is captured.
    Panic(String),
    /// The simulation surfaced a typed error (stall, invariant
    /// violation, bad configuration).
    Sim(SimError),
    /// The cell's wall-clock deadline expired (see
    /// [`RunConfig::cell_deadline`]); carries the simulated cycle
    /// reached. Unlike the deterministic failures above, a timeout
    /// depends on machine load, so it is the one retryable kind.
    Timeout(Cycle),
    /// The cell simulated successfully but its result could not be
    /// appended to the sweep checkpoint (e.g. disk full); carries the
    /// I/O error text. The result is discarded — a resume would re-run
    /// the cell — so the cell reports as failed rather than silently
    /// merging a non-durable result.
    Checkpoint(String),
}

impl CellFailureKind {
    /// Whether retrying the identical cell could plausibly succeed.
    ///
    /// Panics and typed simulator errors are deterministic — the retry
    /// would replay the identical failure — and a checkpoint append
    /// failure means the storage needs operator attention, so only
    /// wall-clock timeouts are retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CellFailureKind::Timeout(_))
    }
}

impl std::fmt::Display for CellFailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailureKind::Panic(msg) => write!(f, "panicked: {msg}"),
            CellFailureKind::Sim(err) => write!(f, "{err}"),
            CellFailureKind::Timeout(cycle) => {
                write!(f, "cell deadline expired at simulated cycle {cycle}")
            }
            CellFailureKind::Checkpoint(err) => {
                write!(f, "checkpoint append failed: {err}")
            }
        }
    }
}

/// One failed sweep cell: grid coordinates, display names, and the
/// failure after the sweep's retry policy (timeouts retried once,
/// deterministic failures never) was exhausted.
///
/// A failed cell never aborts the sweep — every other cell's result is
/// still produced (and is bit-identical to a sweep without the failing
/// cell's policy/workload).
#[derive(Debug, Clone, PartialEq)]
pub struct CellError {
    /// Index into the sweep's policy axis.
    pub policy: usize,
    /// Index into the sweep's workload axis.
    pub workload: usize,
    /// Index into the sweep's seed axis.
    pub seed: usize,
    /// Label of the failing policy.
    pub policy_label: String,
    /// Name of the failing workload.
    pub workload_name: String,
    /// The failing cell's seed axis *value* (the seed index only names a
    /// position; this is the number to paste into a reproduction).
    pub seed_value: u64,
    /// Evaluation attempts made (2 = timed out, retried, failed again).
    pub attempts: u32,
    /// The retry budget the attempts were drawn from (the sweep's
    /// [`RetryPolicy::max_attempts`]); `attempts < max_attempts` means
    /// the failure was deterministic or the sweep was being cancelled,
    /// so the remaining budget was not spent.
    pub max_attempts: u32,
    /// Wall-clock time spent on the cell across every attempt, including
    /// backoff sleeps. Distinguishes a cell that timed out instantly
    /// (misconfigured deadline) from one that burned its full budget.
    pub elapsed: Duration,
    /// The final failure.
    pub kind: CellFailureKind,
    /// The memory controller the failure is attributed to, when the
    /// machine has more than one and the failure names a culprit (a
    /// stall report's watchdog attribution, or the controller owning an
    /// invariant violation's channel).
    pub controller: Option<ControllerId>,
}

impl CellError {
    /// One grep-able line for CI logs, emitted to stderr by sweeps for
    /// every failed cell (and reused verbatim by the `tcm-serve` daemon
    /// in job status and streamed `CellFailure` events). Stable shape:
    ///
    /// ```text
    /// cell-failure policy="TCM" workload="mix3" seed=7 kind=timeout attempt=2 max_attempts=2 elapsed_ms=450 detail="..."
    /// ```
    ///
    /// `kind` is one of `panic`, `sim`, `timeout`, `checkpoint`;
    /// `attempt=` is the
    /// attempts actually made out of the `max_attempts=` retry budget,
    /// and `elapsed_ms=` the wall-clock the cell burned across them —
    /// together they make timeout-vs-retry behavior observable from logs
    /// alone. Double quotes inside the detail are replaced with single
    /// quotes so the line stays splittable on `"`-delimited fields. When
    /// the failure is attributed to a specific memory controller, a
    /// trailing ` controller=mc<N>` field is appended.
    pub fn structured_line(&self) -> String {
        let kind = match &self.kind {
            CellFailureKind::Panic(_) => "panic",
            CellFailureKind::Sim(_) => "sim",
            CellFailureKind::Timeout(_) => "timeout",
            CellFailureKind::Checkpoint(_) => "checkpoint",
        };
        let detail = self.kind.to_string().replace('"', "'");
        let mut line = format!(
            "cell-failure policy=\"{}\" workload=\"{}\" seed={} kind={} \
             attempt={} max_attempts={} elapsed_ms={} detail=\"{}\"",
            self.policy_label,
            self.workload_name,
            self.seed_value,
            kind,
            self.attempts,
            self.max_attempts,
            self.elapsed.as_millis(),
            detail,
        );
        if let Some(mc) = self.controller {
            line.push_str(&format!(" controller={mc}"));
        }
        line
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "policy {} x workload {} (seed {}, attempt {}/{}, {} ms): {}",
            self.policy_label,
            self.workload_name,
            self.seed_value,
            self.attempts,
            self.max_attempts,
            self.elapsed.as_millis(),
            self.kind,
        )
    }
}

/// Text of a panic payload, for [`CellFailureKind::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cumulative execution accounting across every sweep and single-cell
/// evaluation a [`Session`] has run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Grid cells simulated (shared runs).
    pub cells: u64,
    /// Alone-run simulations executed (cache misses).
    pub alone_runs: u64,
    /// Total simulated cycles across shared and alone runs.
    pub sim_cycles: u64,
    /// Wall-clock time spent executing sweeps.
    pub wall: Duration,
    /// Largest worker count any sweep used.
    pub max_workers: usize,
}

/// An experiment session: one immutable machine/run configuration plus
/// a shared, thread-safe alone-IPC cache.
///
/// Create one per machine configuration, then run any number of
/// [`Sweep`]s or single-cell evaluations against it; alone-run IPCs are
/// computed once per unique benchmark profile and shared by every
/// experiment in the session.
#[derive(Debug)]
pub struct Session {
    rc: RunConfig,
    cache: AloneIpcCache,
    stats: Mutex<SessionStats>,
}

impl Session {
    /// A session on the given run configuration.
    pub fn new(rc: RunConfig) -> Self {
        Self {
            rc,
            cache: AloneIpcCache::default(),
            stats: Mutex::new(SessionStats::default()),
        }
    }

    /// A session on the paper's baseline machine with the given horizon.
    pub fn baseline(horizon: tcm_types::Cycle) -> Self {
        Self::new(RunConfig::builder().horizon(horizon).build())
    }

    /// The session's run configuration.
    pub fn run_config(&self) -> &RunConfig {
        &self.rc
    }

    /// The session's alone-IPC cache (for inspection; filled lazily).
    pub fn alone_cache(&self) -> &AloneIpcCache {
        &self.cache
    }

    /// IPC of `profile` running alone on this session's machine
    /// (cached across the whole session).
    pub fn alone_ipc(&self, profile: &BenchmarkProfile) -> f64 {
        self.cache.get_or_compute(profile, &self.rc)
    }

    /// Starts building a sweep over this session.
    pub fn sweep(&self) -> Sweep<'_> {
        Sweep {
            session: self,
            policies: Vec::new(),
            workloads: Vec::new(),
            seeds: vec![0],
            weights: None,
            checkpoint: None,
            retry: RetryPolicy::default(),
            on_cell: None,
            on_failure: None,
            pause: None,
            cancel: None,
        }
    }

    /// Runs one policy on one workload (a 1×1 sweep cell).
    pub fn eval(&self, policy: &PolicyKind, workload: &WorkloadSpec) -> EvalResult {
        self.eval_weighted(policy, workload, None)
    }

    /// Like [`Session::eval`], with optional OS thread weights installed
    /// on the policy before the run.
    pub fn eval_weighted(
        &self,
        policy: &PolicyKind,
        workload: &WorkloadSpec,
        weights: Option<&[f64]>,
    ) -> EvalResult {
        let t0 = Instant::now();
        let alone_before = self.cache.misses();
        let result = eval_cell(policy, workload, &self.rc, weights, 0, |p| self.alone_ipc(p));
        self.record(1, self.cache.misses() - alone_before, t0.elapsed(), 1);
        result
    }

    /// Warms the alone-IPC cache for every profile in `workloads`.
    ///
    /// Called automatically before a sweep's parallel phase so workers
    /// only ever *read* alone IPCs, which keeps parallel results
    /// bit-identical to serial ones and each unique profile simulated
    /// exactly once.
    pub fn prepopulate_alone<'w>(&self, workloads: impl IntoIterator<Item = &'w WorkloadSpec>) {
        for workload in workloads {
            for profile in &workload.threads {
                let _ = self.alone_ipc(profile);
            }
        }
    }

    /// Cumulative execution statistics for this session.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock().expect("session stats poisoned")
    }

    /// One-line summary of the session's cumulative execution, suitable
    /// for experiment reports.
    pub fn stats_line(&self) -> String {
        let s = self.stats();
        let secs = s.wall.as_secs_f64();
        let rate = if secs > 0.0 {
            s.sim_cycles as f64 / secs
        } else {
            0.0
        };
        format!(
            "sweep engine: {} cells + {} alone runs, {} workers max, \
             {:.2e} sim-cycles/sec over {:.1}s",
            s.cells, s.alone_runs, s.max_workers, rate, secs,
        )
    }

    fn record(&self, cells: u64, alone_runs: u64, wall: Duration, workers: usize) {
        let mut stats = self.stats.lock().expect("session stats poisoned");
        stats.cells += cells;
        stats.alone_runs += alone_runs;
        stats.sim_cycles += (cells + alone_runs) * self.rc.horizon;
        stats.wall += wall;
        stats.max_workers = stats.max_workers.max(workers);
    }
}

/// Observer invoked for every produced cell (`resumed = true` when the
/// cell was restored from a checkpoint rather than simulated).
pub type CellHook = Box<dyn Fn(&SweepCell, bool) + Send + Sync>;
/// Observer invoked for every exhausted cell failure.
pub type FailureHook = Box<dyn Fn(&CellError) + Send + Sync>;

/// Declarative description of an experiment grid: policies × workloads
/// × seeds, built from [`Session::sweep`] and executed with
/// [`Sweep::run`] / [`Sweep::run_parallel`].
pub struct Sweep<'s> {
    session: &'s Session,
    policies: Vec<PolicyKind>,
    workloads: Vec<WorkloadSpec>,
    seeds: Vec<u64>,
    weights: Option<Vec<f64>>,
    checkpoint: Option<PathBuf>,
    retry: RetryPolicy,
    on_cell: Option<CellHook>,
    on_failure: Option<FailureHook>,
    pause: Option<Arc<AtomicBool>>,
    cancel: Option<CancelToken>,
}

impl std::fmt::Debug for Sweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("policies", &self.policies)
            .field("workloads", &self.workloads.len())
            .field("seeds", &self.seeds)
            .field("weights", &self.weights)
            .field("checkpoint", &self.checkpoint)
            .field("retry", &self.retry)
            .field("on_cell", &self.on_cell.is_some())
            .field("on_failure", &self.on_failure.is_some())
            .field("pause", &self.pause)
            .field("cancel", &self.cancel)
            .finish_non_exhaustive()
    }
}

impl Sweep<'_> {
    /// Adds policies to the grid.
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies.extend(policies);
        self
    }

    /// Adds workloads to the grid.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Replaces the simulator-seed axis (default: the single canonical
    /// seed, `[0]`). Seed 0 reproduces the per-workload canonical seed;
    /// other values perturb it deterministically.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        if self.seeds.is_empty() {
            self.seeds.push(0);
        }
        self
    }

    /// Installs OS thread weights on every cell's policy (the paper's
    /// Section 7.4 experiment).
    pub fn weights(mut self, weights: &[f64]) -> Self {
        self.weights = Some(weights.to_vec());
        self
    }

    /// Checkpoints the sweep to (and resumes it from) a JSONL file.
    ///
    /// Every completed cell is appended durably (full rewrite to a
    /// `.tmp` sibling, then an atomic rename), so a killed sweep loses
    /// at most the cells in flight. Re-running the identical sweep with
    /// the same checkpoint path skips the recorded cells and merges
    /// their stored results **bit-identically** — floats are stored as
    /// IEEE-754 bit patterns, not decimal.
    ///
    /// A checkpoint from a *different* grid (policies, workloads, seeds
    /// or horizon changed) is ignored with a warning and overwritten;
    /// failed cells are never recorded, so a resume retries them.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Replaces the default timeout-retry policy (two attempts with
    /// seeded jittered backoff — see [`RetryPolicy`]).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs an observer called for every produced cell, from the
    /// worker thread that finished it (or the calling thread, for cells
    /// restored from a checkpoint — those report `resumed = true`). The
    /// mechanism behind the `tcm-serve` daemon's streamed `CellResult`
    /// events.
    pub fn on_cell(mut self, hook: impl Fn(&SweepCell, bool) + Send + Sync + 'static) -> Self {
        self.on_cell = Some(Box::new(hook));
        self
    }

    /// Installs an observer called for every exhausted cell failure,
    /// from the worker thread that observed it.
    pub fn on_failure(mut self, hook: impl Fn(&CellError) + Send + Sync + 'static) -> Self {
        self.on_failure = Some(Box::new(hook));
        self
    }

    /// Installs a drain flag: once it reads `true`, workers finish (and
    /// checkpoint) their in-flight cell but start no further ones —
    /// remaining cells are counted in [`SweepStats::skipped`] and can be
    /// resumed from the checkpoint later. The mechanism behind the
    /// daemon's graceful SIGTERM drain.
    pub fn pause_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.pause = Some(flag);
        self
    }

    /// Installs a sweep-level cancellation parent: every cell polls a
    /// child of this token (combined with the per-cell deadline), so one
    /// cancel aborts in-flight cells mid-simulation *and* skips the
    /// rest. Harder than [`Sweep::pause_flag`], which lets in-flight
    /// cells finish.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Executes every cell serially on the calling thread.
    pub fn run(self) -> SweepResult {
        self.execute(1)
    }

    /// Executes the grid sharded across `workers` scoped threads.
    ///
    /// Results are **bit-identical** to [`Sweep::run`]: each cell is an
    /// isolated deterministic simulation, and the session's alone-IPC
    /// cache is pre-populated serially before the parallel phase.
    pub fn run_parallel(self, workers: usize) -> SweepResult {
        self.execute(workers.max(1))
    }

    /// Executes with a worker per available core (at least two, so
    /// sharding stays exercised even on single-core CI machines).
    pub fn run_auto(self) -> SweepResult {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        self.execute(workers)
    }

    fn execute(self, workers: usize) -> SweepResult {
        assert!(
            !self.policies.is_empty() && !self.workloads.is_empty(),
            "a sweep needs at least one policy and one workload"
        );
        let t0 = Instant::now();
        let alone_before = self.session.alone_cache().misses();
        self.session.prepopulate_alone(&self.workloads);

        let (np, nw, ns) = (self.policies.len(), self.workloads.len(), self.seeds.len());
        let total = np * nw * ns;
        // Grid order: policy-major, then workload, then seed.
        let indices: Vec<(usize, usize, usize)> = (0..np)
            .flat_map(|p| (0..nw).flat_map(move |w| (0..ns).map(move |s| (p, w, s))))
            .collect();

        // Checkpoint/resume: recorded cells of an identical grid are
        // reused verbatim (bit-identical — see `checkpoint.rs`); a
        // mismatched header means a different experiment, so start over.
        let header = CheckpointHeader {
            policies: self.policies.iter().map(PolicyKind::label).collect(),
            workloads: self.workloads.iter().map(|w| w.name.clone()).collect(),
            seeds: self.seeds.clone(),
            horizon: self.session.rc.horizon,
        };
        let mut cached: HashMap<(usize, usize, usize), SweepCell> = HashMap::new();
        if let Some(path) = &self.checkpoint {
            match checkpoint::load(path) {
                Ok(Some(loaded)) if loaded.header == header => {
                    for cell in loaded.cells {
                        let key = (cell.policy, cell.workload, cell.seed);
                        if indices.contains(&key) {
                            cached.insert(key, cell);
                        }
                    }
                }
                Ok(Some(_)) => eprintln!(
                    "warning: checkpoint {} belongs to a different sweep grid; starting fresh",
                    path.display()
                ),
                Ok(None) => {}
                Err(err) => eprintln!(
                    "warning: could not read checkpoint {}: {err}; starting fresh",
                    path.display()
                ),
            }
        }
        let resumed = cached.len();
        let writer: Option<Mutex<CheckpointWriter>> = self.checkpoint.as_ref().map(|path| {
            let prefix: Vec<SweepCell> = indices
                .iter()
                .filter_map(|key| cached.get(key).cloned())
                .collect();
            Mutex::new(
                CheckpointWriter::create(path.clone(), &header, &prefix)
                    .expect("cannot create sweep checkpoint file"),
            )
        });
        let to_run: Vec<(usize, usize, usize)> = indices
            .iter()
            .copied()
            .filter(|key| !cached.contains_key(key))
            .collect();
        let workers = workers.min(to_run.len()).max(1);

        // Streaming observers see resumed cells first, in grid order,
        // so a subscriber watching a restarted sweep receives the full
        // grid without consulting the checkpoint itself.
        if let Some(hook) = &self.on_cell {
            for key in &indices {
                if let Some(cell) = cached.get(key) {
                    hook(cell, true);
                }
            }
        }

        // Draining (pause flag) or cancellation stops *starting* cells;
        // the cancel token additionally aborts in-flight simulations via
        // the per-cell child tokens installed by `cell_token`.
        let should_stop = || {
            self.pause
                .as_ref()
                .is_some_and(|p| p.load(Ordering::Acquire))
                || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
        };

        // Each cell runs under `catch_unwind`; wall-clock timeouts are
        // retried under the sweep's `RetryPolicy` (a fresh attempt gets
        // a fresh deadline, separated by a deterministic seeded jittered
        // backoff), while panics and typed simulator errors are
        // deterministic and fail immediately. A failed cell never aborts
        // the sweep — every other cell still produces its (bit-identical)
        // result. The closure only *reads* session state across the
        // unwind boundary (the alone-IPC cache takes its lock inside
        // `alone_ipc`, never across a cell run), so a mid-cell panic
        // cannot poison it.
        let attempt_one = |p: usize, w: usize, s: usize| -> Result<EvalResult, CellFailureKind> {
            catch_unwind(AssertUnwindSafe(|| {
                try_eval_cell(
                    &self.policies[p],
                    &self.workloads[w],
                    &self.session.rc,
                    self.weights.as_deref(),
                    self.seeds[s],
                    self.cancel.as_ref(),
                    |profile| self.session.alone_ipc(profile),
                )
            }))
            .map_err(|payload| CellFailureKind::Panic(panic_message(payload)))?
            .map_err(|err| match err {
                SimError::Cancelled(cycle) => CellFailureKind::Timeout(cycle),
                other => CellFailureKind::Sim(other),
            })
        };
        type CellOutcome = Option<Result<SweepCell, Box<CellError>>>;
        let eval_one = |&(p, w, s): &(usize, usize, usize)| -> CellOutcome {
            if should_stop() {
                return None; // skipped: resumable from the checkpoint
            }
            let cell_seed = workload_seed(&self.workloads[w]) ^ self.seeds[s];
            let max_attempts = self.retry.max_attempts.max(1);
            let t_cell = Instant::now();
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                match attempt_one(p, w, s) {
                    Ok(result) => break Ok(result),
                    Err(kind) => {
                        if kind.is_retryable() && attempts < max_attempts && !should_stop() {
                            std::thread::sleep(self.retry.backoff(cell_seed, attempts));
                            continue;
                        }
                        break Err(kind);
                    }
                }
            };
            // A checkpoint append failure (disk full, yanked volume)
            // must not panic: in the daemon that would kill the worker
            // thread, leaking its slot and leaving the job `Running`
            // forever with no terminal event. The non-durable result is
            // discarded and the cell reports as failed instead.
            let outcome = outcome.and_then(|result| {
                let cell = SweepCell {
                    policy: p,
                    workload: w,
                    seed: s,
                    result,
                };
                if let Some(writer) = &writer {
                    writer
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .append(&cell)
                        .map_err(|e| CellFailureKind::Checkpoint(e.to_string()))?;
                }
                Ok(cell)
            });
            let elapsed = t_cell.elapsed();
            Some(match outcome {
                Ok(cell) => {
                    if let Some(hook) = &self.on_cell {
                        hook(&cell, false);
                    }
                    Ok(cell)
                }
                Err(kind) => {
                    // Attribute the failure to a controller when the
                    // error names one (stall reports carry the watchdog's
                    // suspect; invariant violations name their channel,
                    // whose owner the topology knows).
                    let topology = &self.session.rc.system.topology;
                    let controller = match &kind {
                        CellFailureKind::Sim(SimError::Stalled(report)) => report.controller,
                        CellFailureKind::Sim(SimError::InvariantViolation(v)) => {
                            (topology.num_controllers() > 1)
                                .then(|| topology.controller_of(v.channel))
                        }
                        _ => None,
                    };
                    let err = Box::new(CellError {
                        policy: p,
                        workload: w,
                        seed: s,
                        policy_label: self.policies[p].label(),
                        workload_name: self.workloads[w].name.clone(),
                        seed_value: self.seeds[s],
                        attempts,
                        max_attempts,
                        elapsed,
                        kind,
                        controller,
                    });
                    if let Some(hook) = &self.on_failure {
                        hook(&err);
                    }
                    Err(err)
                }
            })
        };

        let outcomes: Vec<CellOutcome> = if workers == 1 {
            to_run.iter().map(eval_one).collect()
        } else {
            // Contiguous shards, joined in spawn order: the concatenated
            // output is in grid order regardless of scheduling.
            let shard = to_run.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = to_run
                    .chunks(shard)
                    .map(|chunk| scope.spawn(|| chunk.iter().map(eval_one).collect::<Vec<_>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            })
        };
        // Merge fresh outcomes with resumed cells, restoring grid order.
        let mut fresh: HashMap<(usize, usize, usize), SweepCell> = HashMap::new();
        let mut failures = Vec::new();
        let mut skipped = 0usize;
        for outcome in outcomes {
            match outcome {
                Some(Ok(cell)) => {
                    fresh.insert((cell.policy, cell.workload, cell.seed), cell);
                }
                Some(Err(err)) => {
                    // One stable, grep-able line per failed cell so CI
                    // logs surface failures without parsing the report.
                    eprintln!("{}", err.structured_line());
                    failures.push(*err);
                }
                None => skipped += 1,
            }
        }
        let executed = fresh.len();
        let mut cells = Vec::with_capacity(resumed + executed);
        for key in &indices {
            if let Some(cell) = cached.remove(key).or_else(|| fresh.remove(key)) {
                cells.push(cell);
            }
        }

        let wall = t0.elapsed();
        let alone_runs = self.session.alone_cache().misses() - alone_before;
        self.session
            .record(executed as u64, alone_runs, wall, workers);
        let stats = SweepStats {
            cells: total,
            failed: failures.len(),
            resumed,
            skipped,
            workers,
            alone_runs,
            sim_cycles: (executed as u64 + alone_runs) * self.session.rc.horizon,
            wall,
        };
        SweepResult {
            policy_labels: header.policies,
            workload_names: header.workloads,
            seeds: self.seeds,
            cells,
            failures,
            stats,
        }
    }
}

/// One evaluated grid cell: the (policy, workload, seed) coordinates
/// plus the full [`EvalResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Index into the sweep's policy axis.
    pub policy: usize,
    /// Index into the sweep's workload axis.
    pub workload: usize,
    /// Index into the sweep's seed axis.
    pub seed: usize,
    /// The cell's evaluation result.
    pub result: EvalResult,
}

/// Execution accounting for one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Grid cells attempted (successful + failed).
    pub cells: usize,
    /// Cells that failed after the retry policy (see
    /// [`SweepResult::failures`]).
    pub failed: usize,
    /// Cells restored from a checkpoint instead of being simulated.
    pub resumed: usize,
    /// Cells neither simulated nor resumed because the sweep was
    /// draining ([`Sweep::pause_flag`]) or cancelled
    /// ([`Sweep::cancel_token`]); a checkpointed re-run picks them up.
    pub skipped: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Alone-run simulations triggered (cache misses during the sweep).
    pub alone_runs: u64,
    /// Total simulated cycles (shared + alone runs).
    pub sim_cycles: u64,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
}

impl SweepStats {
    /// Simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line throughput summary (opt-in for experiment reports).
    pub fn throughput_line(&self) -> String {
        let failed = if self.failed > 0 {
            format!(", {} FAILED", self.failed)
        } else {
            String::new()
        };
        format!(
            "sweep: {} cells (+{} alone runs{}) on {} workers in {:.2}s \
             ({:.2e} sim-cycles/sec)",
            self.cells,
            self.alone_runs,
            failed,
            self.workers,
            self.wall.as_secs_f64(),
            self.sim_cycles_per_sec(),
        )
    }
}

/// The evaluated grid returned by [`Sweep::run`] /
/// [`Sweep::run_parallel`]: every cell in policy-major order plus
/// aggregate views.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    policy_labels: Vec<String>,
    workload_names: Vec<String>,
    seeds: Vec<u64>,
    cells: Vec<SweepCell>,
    failures: Vec<CellError>,
    stats: SweepStats,
}

impl SweepResult {
    /// Every *successful* cell, in (policy, workload, seed) grid order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Every failed cell (empty for a fully successful sweep), in grid
    /// order.
    pub fn failures(&self) -> &[CellError] {
        &self.failures
    }

    /// Whether every cell of the grid produced a result (nothing failed
    /// and nothing was skipped by a drain or cancel).
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.cells.len() == self.stats.cells
    }

    /// Labels of the policy axis, in sweep order.
    pub fn policy_labels(&self) -> &[String] {
        &self.policy_labels
    }

    /// Names of the workload axis, in sweep order.
    pub fn workload_names(&self) -> &[String] {
        &self.workload_names
    }

    /// The seed axis.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Execution accounting for this sweep.
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// The cell at the given grid coordinates.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range, or if that cell failed
    /// (see [`SweepResult::try_get`] / [`SweepResult::failures`]).
    pub fn get(&self, policy: usize, workload: usize, seed: usize) -> &EvalResult {
        match self.try_get(policy, workload, seed) {
            Some(result) => result,
            None => {
                let failure = self
                    .failures
                    .iter()
                    .find(|f| f.policy == policy && f.workload == workload && f.seed == seed);
                match failure {
                    Some(f) => panic!("cell ({policy}, {workload}, {seed}) failed: {f}"),
                    None => panic!("cell ({policy}, {workload}, {seed}) missing"),
                }
            }
        }
    }

    /// The cell at the given grid coordinates, or `None` if it failed.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn try_get(&self, policy: usize, workload: usize, seed: usize) -> Option<&EvalResult> {
        let (nw, ns) = (self.workload_names.len(), self.seeds.len());
        assert!(policy < self.policy_labels.len(), "policy index {policy}");
        assert!(workload < nw, "workload index {workload}");
        assert!(seed < ns, "seed index {seed}");
        if self.cells.len() == self.policy_labels.len() * nw * ns {
            // Complete grid: cells sit at their dense grid offset.
            return Some(&self.cells[(policy * nw + workload) * ns + seed].result);
        }
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.workload == workload && c.seed == seed)
            .map(|c| &c.result)
    }

    /// All of one policy's results across workloads and seeds.
    pub fn policy_results(&self, policy: usize) -> impl Iterator<Item = &EvalResult> {
        self.cells
            .iter()
            .filter(move |c| c.policy == policy)
            .map(|c| &c.result)
    }

    /// One policy's metrics averaged over every workload and seed.
    pub fn policy_average(&self, policy: usize) -> WorkloadMetrics {
        average(self.policy_results(policy))
    }

    /// One (policy, workload) pair's metrics averaged over seeds.
    pub fn policy_workload_metrics(&self, policy: usize, workload: usize) -> WorkloadMetrics {
        average(
            self.cells
                .iter()
                .filter(|c| c.policy == policy && c.workload == workload)
                .map(|c| &c.result),
        )
    }

    /// Per-policy `(label, average metrics)` pairs in sweep order — the
    /// shape most experiment tables render.
    pub fn averages(&self) -> Vec<(String, WorkloadMetrics)> {
        (0..self.policy_labels.len())
            .map(|p| (self.policy_labels[p].clone(), self.policy_average(p)))
            .collect()
    }
}

fn average<'r>(results: impl Iterator<Item = &'r EvalResult>) -> WorkloadMetrics {
    let mut n = 0u64;
    let (mut ws, mut hs, mut ms) = (0.0, 0.0, 0.0);
    for r in results {
        n += 1;
        ws += r.metrics.weighted_speedup;
        hs += r.metrics.harmonic_speedup;
        ms += r.metrics.max_slowdown;
    }
    assert!(n > 0, "cannot average an empty result set");
    WorkloadMetrics {
        weighted_speedup: ws / n as f64,
        harmonic_speedup: hs / n as f64,
        max_slowdown: ms / n as f64,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::SystemConfig;
    use tcm_workload::random_workload;

    fn small_session() -> Session {
        Session::new(
            RunConfig::builder()
                .system(SystemConfig::builder().num_threads(4).build().unwrap())
                .horizon(60_000)
                .build(),
        )
    }

    #[test]
    fn distinct_profiles_never_collide_in_fingerprint() {
        let a = BenchmarkProfile::new("alpha", 10.0, 0.5, 2.0);
        let b = BenchmarkProfile::new("alpha", 10.0, 0.5, 2.5); // same name, different BLP
        let c = BenchmarkProfile::new("beta", 10.0, 0.5, 2.0);
        assert_ne!(ProfileFingerprint::of(&a), ProfileFingerprint::of(&b));
        assert_ne!(ProfileFingerprint::of(&a), ProfileFingerprint::of(&c));
        assert_eq!(ProfileFingerprint::of(&a), ProfileFingerprint::of(&a.clone()));

        let session = small_session();
        let ipc_a = session.alone_ipc(&a);
        let ipc_b = session.alone_ipc(&b);
        let _ = (ipc_a, ipc_b);
        assert_eq!(session.alone_cache().len(), 2, "no collision: two entries");
        assert_eq!(session.alone_cache().misses(), 2);
    }

    #[test]
    fn repeated_profile_misses_exactly_once_then_hits() {
        let session = small_session();
        let p = tcm_workload::spec_by_name("mcf").unwrap();
        let first = session.alone_ipc(&p);
        assert_eq!(session.alone_cache().misses(), 1);
        assert_eq!(session.alone_cache().hits(), 0);
        for _ in 0..3 {
            assert_eq!(session.alone_ipc(&p), first);
        }
        assert_eq!(session.alone_cache().misses(), 1, "exactly one miss");
        assert_eq!(session.alone_cache().hits(), 3);
    }

    #[test]
    fn session_eval_matches_sweep_cell() {
        let session = small_session();
        let w = random_workload(1, 4, 0.5);
        let direct = session.eval(&PolicyKind::FrFcfs, &w);
        let sweep = session
            .sweep()
            .policies([PolicyKind::FrFcfs])
            .workloads([w])
            .run();
        assert_eq!(&direct, sweep.get(0, 0, 0));
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let policies = || {
            [
                PolicyKind::Fcfs,
                PolicyKind::FrFcfs,
                PolicyKind::FairQueueing,
            ]
        };
        let workloads = || (0..3).map(|s| random_workload(s, 4, 0.75));
        let serial = small_session()
            .sweep()
            .policies(policies())
            .workloads(workloads())
            .run();
        let parallel = small_session()
            .sweep()
            .policies(policies())
            .workloads(workloads())
            .run_parallel(3);
        assert_eq!(serial.cells(), parallel.cells());
        assert_eq!(parallel.stats().workers, 3);
    }

    #[test]
    fn grid_order_and_accessors_agree() {
        let session = small_session();
        let result = session
            .sweep()
            .policies([PolicyKind::Fcfs, PolicyKind::FrFcfs])
            .workloads((0..2).map(|s| random_workload(s, 4, 0.5)))
            .seeds([0, 7])
            .run_parallel(4);
        assert_eq!(result.cells().len(), 2 * 2 * 2);
        for (i, cell) in result.cells().iter().enumerate() {
            let (p, w, s) = (cell.policy, cell.workload, cell.seed);
            assert_eq!(i, (p * 2 + w) * 2 + s, "grid order");
            assert_eq!(result.get(p, w, s), &cell.result);
        }
        // Seed 0 is canonical; a different seed axis value changes the run.
        assert_ne!(result.get(0, 0, 0).run, result.get(0, 0, 1).run);
        let avg = result.policy_average(1);
        assert!(avg.weighted_speedup > 0.0);
        assert_eq!(result.averages().len(), 2);
    }

    #[test]
    fn prepopulation_makes_parallel_phase_read_only() {
        let session = small_session();
        let workloads: Vec<_> = (0..2).map(|s| random_workload(s, 4, 1.0)).collect();
        session.prepopulate_alone(&workloads);
        let misses_before = session.alone_cache().misses();
        let _ = session
            .sweep()
            .policies([PolicyKind::FrFcfs, PolicyKind::Fcfs])
            .workloads(workloads)
            .run_parallel(2);
        assert_eq!(
            session.alone_cache().misses(),
            misses_before,
            "no alone run inside the parallel phase"
        );
    }

    #[test]
    fn weighted_sweep_applies_weights() {
        let session = small_session();
        let w = random_workload(3, 4, 1.0);
        let atlas = || PolicyKind::Atlas(tcm_sched::AtlasParams::paper_default());
        let flat = session
            .sweep()
            .policies([atlas()])
            .workloads([w.clone()])
            .run();
        let skewed = session
            .sweep()
            .policies([atlas()])
            .workloads([w])
            .weights(&[16.0, 1.0, 1.0, 1.0])
            .run();
        assert_ne!(flat.get(0, 0, 0).run, skewed.get(0, 0, 0).run);
    }

    #[test]
    fn stats_account_cells_and_workers() {
        let session = small_session();
        let result = session
            .sweep()
            .policies([PolicyKind::Fcfs])
            .workloads((0..2).map(|s| random_workload(s, 4, 0.5)))
            .run_parallel(8);
        // 2 cells cap the worker count.
        assert_eq!(result.stats().workers, 2);
        assert_eq!(result.stats().cells, 2);
        assert!(result.stats().sim_cycles >= 2 * 60_000);
        let agg = session.stats();
        assert_eq!(agg.cells, 2);
        assert_eq!(agg.max_workers, 2);
        assert!(session.stats_line().contains("2 cells"));
        assert!(!result.stats().throughput_line().is_empty());
    }
}
