//! Multi-controller system simulator: one *shard* per memory controller,
//! advanced in fixed windows with barrier-synchronized exchange.
//!
//! [`MultiSystem`] simulates topologies with two or more memory
//! controllers (see [`Topology`]). The machine splits along the
//! controller boundary:
//!
//! * The **coordinator** owns the cores, trace generators and the
//!   core-side event queue (bursts and completions), plus the optional
//!   [`MetaScheduler`] coordinating the per-controller policies.
//! * Each **shard** owns one controller: its channels, its
//!   [`Scheduler`] instance, its spill queues and a local event queue
//!   (arrivals, completions, bank-ready wakeups).
//!
//! Time advances in windows of `W = timing.round_trip(RowState::Hit)`
//! cycles — the minimum issue-to-completion latency, so nothing a shard
//! does inside a window can affect the coordinator (or another shard)
//! within the same window. Each window runs two phases:
//!
//! 1. **Core phase** (serial): the coordinator processes core events
//!    below the window bound, routing new requests and completion
//!    notifications to the owning shard's inbox in a deterministic
//!    order.
//! 2. **Controller phase** (parallel): every shard independently merges
//!    its inbox and processes its local events below the bound,
//!    emitting completions to an outbox.
//!
//! At the barrier, outboxes merge back into the coordinator queue in
//! controller order, faults are surfaced, and any scheduler or
//! meta-controller timers due at the bound run serially — for TCM this
//! is the paper's §5.3 exchange: harvest each controller's
//! [`MonitorSample`], compute one system-wide [`ClusterPlan`], and
//! broadcast it back.
//!
//! Because shards touch disjoint state and every cross-shard hand-off
//! happens at the barrier in a fixed order, running the controller
//! phase on one host thread or many is **bit-identical** — see
//! [`MultiSystem::set_hosts`].
//!
//! [`ClusterPlan`]: tcm_sched::ClusterPlan
//! [`Topology`]: tcm_types::Topology

use crate::event::{Event, EventQueue};
use crate::system::{RunResult, DEFAULT_STALL_LIMIT};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use tcm_chaos::{FaultKind, FaultPlan, FaultSpec};
use tcm_cpu::{Core, CoreStatus};
use tcm_dram::Channel;
use tcm_sched::{
    ChaosScheduler, ClusterPlan, MetaScheduler, MonitorSample, PickContext, Scheduler, SystemView,
};
use tcm_telemetry::{labeled, DegradationAnomaly, Telemetry, TraceEvent};
use tcm_types::{
    BankId, CancelToken, ChannelId, ControllerId, Cycle, DramTiming, Invariant,
    InvariantViolation, MemAddress, Request, RequestId, RowState, SimError, StallReport,
    SystemConfig, ThreadId,
};
use tcm_workload::{MachineShape, TraceGenerator, WorkloadSpec};

/// Consecutive window barriers a shard's policy timer may refuse to
/// advance past the window start before the run is declared stalled.
///
/// A healthy policy's `next_tick` always lands strictly in the future,
/// so the counter resets every barrier; a wedged timer (e.g. a
/// scheduler-spin fault) pins it at the current cycle, shrinking every
/// window to one cycle without ever tripping the retirement watchdog.
/// This is the sharded engine's analogue of the flat engine's
/// same-cycle livelock guard.
pub const FROZEN_TICK_LIMIT: u64 = 1_000;

/// Pending-message count below which a window's controller phase runs
/// inline even when multiple host threads are configured (see
/// [`MultiSystem::step_shards`]). A message costs on the order of 100ns
/// to process; a `thread::scope` spawn-and-join costs tens of
/// microseconds — parallelism only pays off for windows carrying
/// thousands of messages.
const INLINE_WINDOW_THRESHOLD: usize = 2_048;

/// A message crossing the coordinator → shard boundary, or queued
/// shard-locally (bank wakeups never leave their shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardMsg {
    /// A request arrives at this controller.
    Arrival(Request),
    /// A request owned by this controller completed at its core (the
    /// policy's `on_complete` hook fires shard-side).
    Completed(Request),
    /// A bank finished its previous service (`channel` is the *local*
    /// channel index within the shard).
    BankReady {
        channel: usize,
        bank: BankId,
    },
}

/// Wrapper giving `ShardMsg` a total order for heap membership (never
/// actually compared: the `(cycle, seq)` prefix is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MsgEntry(ShardMsg);

impl PartialOrd for MsgEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MsgEntry {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Which structure currently holds a shard's earliest message.
#[derive(Debug, Clone, Copy)]
enum MsgSource {
    Heap,
    Inbox,
    BankReady(usize),
}

/// Shard-local time-ordered queue; same-cycle messages pop in insertion
/// order, mirroring [`EventQueue`] — including its lane structure:
///
/// * coordinator-routed messages (arrivals and completions) enter in
///   coordinator processing order, so their cycles are nondecreasing —
///   one `VecDeque` lane;
/// * `BankReady` cycles are `bus_end`, strictly increasing per channel
///   (see `DataBus::reserve`) — one lane per local channel;
/// * anything out of order (a chaos flood stamping phantoms ahead of
///   in-flight core events) falls back to the small heap.
///
/// A global sequence number stamps every push, and pops take the
/// minimum `(cycle, seq)` across all sources, reproducing the pure-heap
/// pop order bit for bit.
#[derive(Debug, Default)]
struct MsgQueue {
    heap: BinaryHeap<Reverse<(Cycle, u64, MsgEntry)>>,
    /// Coordinator-routed lane: nondecreasing cycles by construction.
    inbox: VecDeque<(Cycle, u64, ShardMsg)>,
    /// Per-local-channel bank-ready lane: nondecreasing by construction.
    bank_ready: Vec<VecDeque<(Cycle, u64, BankId)>>,
    len: usize,
    seq: u64,
}

impl MsgQueue {
    #[cold]
    fn grow_lanes(&mut self, channel: usize) {
        self.bank_ready.resize_with(channel + 1, VecDeque::new);
    }

    fn push(&mut self, cycle: Cycle, msg: ShardMsg) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        match msg {
            ShardMsg::BankReady { channel, bank } => {
                if channel >= self.bank_ready.len() {
                    self.grow_lanes(channel);
                }
                let lane = &mut self.bank_ready[channel];
                if lane.back().is_none_or(|&(last, _, _)| cycle >= last) {
                    lane.push_back((cycle, seq, bank));
                    return;
                }
            }
            ShardMsg::Arrival(_) | ShardMsg::Completed(_) => {
                if self.inbox.back().is_none_or(|&(last, _, _)| cycle >= last) {
                    self.inbox.push_back((cycle, seq, msg));
                    return;
                }
            }
        }
        self.heap.push(Reverse((cycle, seq, MsgEntry(msg))));
    }

    /// `(cycle, seq)` of the earliest pending message and where it lives.
    fn min_source(&self) -> Option<(Cycle, u64, MsgSource)> {
        let mut best = self
            .heap
            .peek()
            .map(|Reverse((c, s, _))| (*c, *s, MsgSource::Heap));
        if let Some(&(c, s, _)) = self.inbox.front() {
            if best.is_none_or(|(bc, bs, _)| (c, s) < (bc, bs)) {
                best = Some((c, s, MsgSource::Inbox));
            }
        }
        for (i, lane) in self.bank_ready.iter().enumerate() {
            if let Some(&(c, s, _)) = lane.front() {
                if best.is_none_or(|(bc, bs, _)| (c, s) < (bc, bs)) {
                    best = Some((c, s, MsgSource::BankReady(i)));
                }
            }
        }
        best
    }

    /// Removes and returns the earliest message if it is scheduled
    /// strictly before `bound` — the peek and the pop in one scan.
    fn pop_before(&mut self, bound: Cycle) -> Option<(Cycle, ShardMsg)> {
        let (cycle, _, source) = self.min_source()?;
        if cycle >= bound {
            return None;
        }
        self.len -= 1;
        Some(match source {
            MsgSource::Heap => {
                let Reverse((c, _, m)) = self.heap.pop().expect("heap source vanished");
                (c, m.0)
            }
            MsgSource::Inbox => {
                let (c, _, msg) = self.inbox.pop_front().expect("lane source vanished");
                (c, msg)
            }
            MsgSource::BankReady(i) => {
                let (c, _, bank) = self.bank_ready[i].pop_front().expect("lane source vanished");
                (c, ShardMsg::BankReady { channel: i, bank })
            }
        })
    }

    fn peek_cycle(&self) -> Option<Cycle> {
        self.min_source().map(|(c, _, _)| c)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One memory controller's share of the machine: channels, policy
/// instance, spill queues, and the local event stream. Owns everything
/// it touches during the controller phase, so shards can step on
/// separate host threads without observable effect.
#[derive(Debug)]
struct Shard {
    /// Global index of this controller's first channel.
    channel_base: usize,
    channels: Vec<Channel>,
    scheduler: Box<dyn Scheduler>,
    /// Per-local-channel overflow queues (arrival order preserved).
    spill: Vec<VecDeque<Request>>,
    spilled: u64,
    events: MsgQueue,
    /// Messages routed by the coordinator this window, in coordinator
    /// processing order.
    inbox: Vec<(Cycle, ShardMsg)>,
    /// Completions produced this window: `(completes_at, request)`.
    outbox: Vec<(Cycle, Request)>,
    pending_error: Option<SimError>,
    /// Next cycle the policy's own timer is due (policies coordinated by
    /// a meta-controller have no timer of their own).
    next_tick: Option<Cycle>,
    timing: DramTiming,
    spill_bound: usize,
    num_threads: usize,
    mshrs_per_core: usize,
    scratch_banks: Vec<BankId>,
    now: Cycle,
}

impl Shard {
    /// Processes every local event below `bound`, starting with this
    /// window's inbox. Stops early once a typed error is recorded.
    fn step(&mut self, bound: Cycle) {
        let mut inbox = std::mem::take(&mut self.inbox);
        for (cycle, msg) in inbox.drain(..) {
            self.events.push(cycle, msg);
        }
        self.inbox = inbox; // hand the capacity back
        while self.pending_error.is_none() {
            let Some((cycle, msg)) = self.events.pop_before(bound) else {
                break;
            };
            self.now = cycle;
            match msg {
                ShardMsg::Arrival(request) => {
                    let local = request.addr.channel.index() - self.channel_base;
                    self.admit(request, local);
                    self.schedule_idle_banks(local);
                }
                ShardMsg::Completed(request) => {
                    self.scheduler.on_complete(&request, cycle);
                }
                ShardMsg::BankReady { channel, bank } => {
                    self.drain_spill(channel);
                    if self.channels[channel].bank_idle_ready(bank, cycle)
                        && self.channels[channel].queue().has_pending_for_bank(bank)
                    {
                        self.decide(channel, bank);
                    }
                }
            }
        }
    }

    /// Admits a request into local channel `local`'s buffer, spilling if
    /// full (mirrors the single-controller admission path).
    fn admit(&mut self, request: Request, local: usize) {
        if self.spill[local].is_empty() && self.channels[local].enqueue(request).is_ok() {
            self.scheduler.on_enqueue(&request, self.now);
            return;
        }
        self.spilled += 1;
        if self.spill[local].len() >= self.spill_bound && self.pending_error.is_none() {
            self.pending_error = Some(SimError::InvariantViolation(InvariantViolation {
                invariant: Invariant::ResourceBound,
                cycle: self.now,
                channel: request.addr.channel,
                bank: Some(request.addr.bank),
                request: Some(request.id),
                detail: format!(
                    "spill queue for channel {} grew past the MSHR-implied \
                     outstanding-miss bound ({} threads x {} MSHRs = {}); \
                     requests are not draining",
                    self.channel_base + local,
                    self.num_threads,
                    self.mshrs_per_core,
                    self.spill_bound
                ),
            }));
        }
        self.spill[local].push_back(request);
    }

    /// Drains spilled requests into the channel while room exists.
    fn drain_spill(&mut self, local: usize) {
        while let Some(&request) = self.spill[local].front() {
            let request = Request {
                issued_at: self.now,
                ..request
            };
            if self.channels[local].enqueue(request).is_ok() {
                self.spill[local].pop_front();
                self.scheduler.on_enqueue(&request, self.now);
            } else {
                break;
            }
        }
    }

    /// Runs a scheduling decision for every idle bank with pending work.
    fn schedule_idle_banks(&mut self, local: usize) {
        let mut banks = std::mem::take(&mut self.scratch_banks);
        banks.clear();
        banks.extend(self.channels[local].schedulable_banks(self.now));
        for &bank in &banks {
            self.decide(local, bank);
        }
        self.scratch_banks = banks;
    }

    /// Consults the policy and issues one request at `(local, bank)`.
    /// The completion goes to the outbox — always at least a hit
    /// round-trip away, so it lands beyond this window's bound.
    fn decide(&mut self, local: usize, bank: BankId) {
        let ctx = PickContext {
            now: self.now,
            channel: ChannelId::new(self.channel_base + local),
            bank,
            open_row: self.channels[local].open_row(bank),
        };
        let pending = self.channels[local].pending_for_bank(bank);
        debug_assert!(!pending.is_empty());
        let idx = self.scheduler.pick(pending, &ctx);
        assert!(idx < pending.len(), "policy returned an invalid index");
        let outcome = self.channels[local].issue_at(bank.index(), idx, self.now, &self.timing);
        let remaining = self.channels[local].pending_for_bank(bank);
        self.scheduler.on_service(&outcome, remaining, self.now);
        self.outbox.push((outcome.completes_at, outcome.request));
        self.events.push(
            outcome.bank_free,
            ShardMsg::BankReady {
                channel: local,
                bank,
            },
        );
        self.drain_spill(local);
    }

    /// Per-thread bank-busy service cycles attained on this controller's
    /// channels only (the view a per-controller policy's timer sees).
    fn local_service(&self, num_threads: usize) -> Vec<u64> {
        let mut service = Vec::new();
        self.local_service_into(num_threads, &mut service);
        service
    }

    /// In-place form of [`Shard::local_service`] for the per-tick hot
    /// path (the caller reuses the buffer across barriers).
    fn local_service_into(&self, num_threads: usize, service: &mut Vec<u64>) {
        service.clear();
        service.resize(num_threads, 0);
        for ch in &self.channels {
            for (t, s) in ch.stats().thread_service_all().iter().enumerate() {
                if t < num_threads {
                    service[t] += s;
                }
            }
        }
    }

    fn idle(&self) -> bool {
        self.events.is_empty() && self.inbox.is_empty() && self.outbox.is_empty()
    }
}

/// One simulated CMP whose memory system spans multiple controllers,
/// optionally coordinated by a [`MetaScheduler`] and optionally sharded
/// across host threads. See the module docs for the execution model.
///
/// Identical inputs produce bit-identical results regardless of
/// [`MultiSystem::set_hosts`] — including under a fault-injection plan
/// (see [`MultiSystem::install_chaos`]): faults fire at window barriers
/// or shard-locally, never across the phase boundary.
///
/// # Example
///
/// ```
/// use tcm_sim::{MultiSystem, PolicyKind};
/// use tcm_types::{SystemConfig, Topology};
/// use tcm_workload::random_workload;
///
/// let cfg = SystemConfig::builder()
///     .num_threads(4)
///     .topology(Topology::uniform(2, 2))
///     .build()?;
/// let policy = PolicyKind::FrFcfs;
/// let controllers = (0..2).map(|_| policy.build_controller(4, &cfg)).collect();
/// let workload = random_workload(0, 4, 0.5);
/// let mut sys = MultiSystem::new(&cfg, &workload, controllers, None, 1);
/// let result = sys.run(50_000);
/// assert_eq!(result.ipc.len(), 4);
/// # Ok::<(), tcm_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct MultiSystem {
    cfg: SystemConfig,
    cores: Vec<Core>,
    generators: Vec<Option<TraceGenerator>>,
    pending_accesses: Vec<Vec<MemAddress>>,
    core_epoch: Vec<u64>,
    /// Core-side queue: bursts and (merged) completions.
    events: EventQueue,
    now: Cycle,
    next_request_id: u64,
    injected: u64,
    completed: u64,
    last_retire: Cycle,
    events_since_retire: u64,
    stall_limit: Option<Cycle>,
    cancel: Option<CancelToken>,
    shards: Vec<Shard>,
    /// Global channel index → shard index.
    owner: Vec<usize>,
    meta: Option<Box<dyn MetaScheduler>>,
    meta_tick: Option<Cycle>,
    /// Window width: the hit round-trip, i.e. the minimum
    /// issue-to-completion latency.
    window: Cycle,
    /// Host threads for the controller phase (1 = inline).
    hosts: usize,
    scratch_ids: Vec<RequestId>,
    telemetry: Telemetry,
    /// Armed spill-flood fault: at its cycle, phantom requests are routed
    /// to the owning shard until its spill queue outgrows the bound.
    chaos_flood: Option<FaultSpec>,
    /// Armed coordination faults (controller blackout / monitor skew),
    /// applied to the harvested sample vector at the next quantum
    /// exchange at or after their cycle. Fire-once: removed when fired.
    chaos_coordination: Vec<FaultSpec>,
    /// Per-shard count of consecutive barriers whose policy timer was
    /// already due at the window start (see [`FROZEN_TICK_LIMIT`]).
    frozen_ticks: Vec<u64>,
    /// Scratch: per-thread counter views for `run_ticks` (reused across
    /// barriers; the old code allocated fresh `Vec`s per due timer).
    scratch_retired: Vec<u64>,
    scratch_misses: Vec<u64>,
    scratch_service: Vec<u64>,
}

impl MultiSystem {
    /// Builds a multi-controller system running `workload`.
    ///
    /// `controllers` supplies one policy instance per controller of
    /// `cfg.topology` (see `PolicyKind::build_controller`); `meta` is
    /// the coordinating meta-controller for policies that need one (see
    /// `PolicyKind::build_meta`). `seed_base` decorrelates benchmark
    /// instances exactly as in the single-controller engine.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation, the workload's thread
    /// count differs from `cfg.num_threads`, or `controllers` does not
    /// match the topology's controller count.
    pub fn new(
        cfg: &SystemConfig,
        workload: &WorkloadSpec,
        controllers: Vec<Box<dyn Scheduler>>,
        meta: Option<Box<dyn MetaScheduler>>,
        seed_base: u64,
    ) -> Self {
        cfg.validate().expect("invalid system config");
        assert_eq!(
            workload.threads.len(),
            cfg.num_threads,
            "workload must have one profile per hardware thread"
        );
        assert_eq!(
            controllers.len(),
            cfg.topology.num_controllers(),
            "one scheduler instance per memory controller"
        );
        let shape = MachineShape::from(cfg);
        let cores = (0..cfg.num_threads)
            .map(|i| {
                Core::new(
                    ThreadId::new(i),
                    cfg.issue_width,
                    cfg.window_size,
                    cfg.mshrs_per_core,
                )
            })
            .collect();
        let generators = workload
            .threads
            .iter()
            .enumerate()
            .map(|(i, profile)| {
                if TraceGenerator::is_compute_only(profile) {
                    None
                } else {
                    Some(TraceGenerator::new(
                        profile,
                        shape,
                        seed_base.wrapping_mul(1000).wrapping_add(i as u64),
                    ))
                }
            })
            .collect();
        let spill_bound = cfg.num_threads * cfg.mshrs_per_core;
        let mut owner = Vec::with_capacity(cfg.num_channels());
        let shards: Vec<Shard> = cfg
            .topology
            .controllers()
            .zip(controllers)
            .map(|(mc, scheduler)| {
                let range = cfg.topology.channel_range(mc);
                let channel_base = range.start;
                let channels: Vec<Channel> = range
                    .clone()
                    .map(|c| {
                        owner.push(mc.index());
                        Channel::with_threads(
                            ChannelId::new(c),
                            cfg.banks_per_channel,
                            cfg.request_buffer,
                            cfg.num_threads,
                        )
                    })
                    .collect();
                let next_tick = None; // armed in bootstrap
                Shard {
                    channel_base,
                    spill: (0..channels.len()).map(|_| VecDeque::new()).collect(),
                    channels,
                    scheduler,
                    spilled: 0,
                    events: MsgQueue::default(),
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    pending_error: None,
                    next_tick,
                    timing: cfg.timing,
                    spill_bound,
                    num_threads: cfg.num_threads,
                    mshrs_per_core: cfg.mshrs_per_core,
                    scratch_banks: Vec::with_capacity(cfg.banks_per_channel),
                    now: 0,
                }
            })
            .collect();
        let mut sys = Self {
            cores,
            generators,
            pending_accesses: vec![Vec::new(); cfg.num_threads],
            core_epoch: vec![0; cfg.num_threads],
            events: EventQueue::new(),
            now: 0,
            next_request_id: 0,
            injected: 0,
            completed: 0,
            last_retire: 0,
            events_since_retire: 0,
            stall_limit: Some(DEFAULT_STALL_LIMIT),
            cancel: None,
            shards,
            owner,
            meta_tick: meta.as_ref().and_then(|m| m.next_tick(0)),
            meta,
            window: cfg.timing.round_trip(RowState::Hit),
            hosts: 1,
            scratch_ids: Vec::new(),
            telemetry: Telemetry::disabled(),
            chaos_flood: None,
            chaos_coordination: Vec::new(),
            frozen_ticks: vec![0; cfg.topology.num_controllers()],
            scratch_retired: Vec::new(),
            scratch_misses: Vec::new(),
            scratch_service: Vec::new(),
            cfg: cfg.clone(),
        };
        if std::env::var_os("TCM_VERIFY").is_some_and(|v| v != "0") {
            sys.enable_verification();
        }
        for shard in &mut sys.shards {
            shard.next_tick = shard.scheduler.next_tick(0);
        }
        for t in 0..sys.cfg.num_threads {
            sys.arm_next_burst(t);
            sys.poll_core(t);
        }
        sys
    }

    /// Sets the number of host threads the controller phase uses
    /// (clamped to the controller count; 1 runs shards inline). Results
    /// are bit-identical for any value — this only trades wall-clock.
    pub fn set_hosts(&mut self, hosts: usize) {
        self.hosts = hosts.max(1);
    }

    /// Turns on the DRAM protocol invariant checker on every channel
    /// (observation-only; results are bit-identical with it on or off).
    pub fn enable_verification(&mut self) {
        for shard in &mut self.shards {
            for ch in &mut shard.channels {
                ch.enable_verification();
            }
        }
    }

    /// Sets the forward-progress watchdog limit (checked at every window
    /// barrier); `None` disables it.
    pub fn set_watchdog(&mut self, stall_limit: Option<Cycle>) {
        self.stall_limit = stall_limit;
    }

    /// Installs a cooperative cancellation token, polled at every window
    /// barrier.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Installs OS thread weights on the meta-controller and every
    /// per-controller policy.
    pub fn set_thread_weights(&mut self, weights: &[f64]) {
        if let Some(meta) = &mut self.meta {
            meta.set_thread_weights(weights);
        }
        for shard in &mut self.shards {
            shard.scheduler.set_thread_weights(weights);
        }
    }

    /// Shares a telemetry handle with every channel, every controller's
    /// policy, and the meta-controller. Observation-only.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        for shard in &mut self.shards {
            for ch in &mut shard.channels {
                ch.set_telemetry(telemetry);
            }
            shard.scheduler.attach_telemetry(telemetry);
        }
        if let Some(meta) = &mut self.meta {
            meta.attach_telemetry(telemetry);
        }
    }

    /// Installs a fault-injection plan (see the `tcm-chaos` crate),
    /// mirroring `System::install_chaos` on the sharded engine.
    ///
    /// Routes each fault to its execution site via the topology's
    /// channel partition: channel faults to the owning shard's
    /// [`Channel`], monitor faults to the meta-controller (or the target
    /// controller's policy when uncoordinated), the spill flood to the
    /// owning shard's admission path, scheduler spins to the target
    /// controller's policy (wrapped in a [`ChaosScheduler`]), and
    /// coordination faults (controller blackout / monitor skew) to the
    /// quantum-exchange harvest.
    ///
    /// Also enables protocol verification on every channel: injecting
    /// faults without the detectors armed would be undetectable by
    /// design. Installing an *empty* plan still installs the (inert)
    /// chaos state everywhere, so tests can prove the zero-fault plan is
    /// bit-identical to no plan at all.
    pub fn install_chaos(&mut self, plan: &FaultPlan) {
        self.enable_verification();
        for shard in &mut self.shards {
            for (local, ch) in shard.channels.iter_mut().enumerate() {
                ch.set_chaos(Some(plan.channel_chaos(shard.channel_base + local)));
            }
        }
        for fault in plan.monitor_faults() {
            if let Some(meta) = &mut self.meta {
                meta.inject_monitor_fault(&fault);
            } else {
                let c = fault.controller.min(self.shards.len() - 1);
                self.shards[c].scheduler.inject_monitor_fault(&fault);
            }
        }
        self.chaos_flood = plan.flood();
        self.chaos_coordination = plan.coordination_faults().collect();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some(spin_at) = plan.spin_for(i) {
                // Placeholder swap: Box<dyn Scheduler> has no cheap
                // default, and the wrapper needs ownership of the inner
                // policy.
                let inner =
                    std::mem::replace(&mut shard.scheduler, Box::new(tcm_sched::Fcfs::new()));
                shard.scheduler = Box::new(ChaosScheduler::new(inner, spin_at));
                // Policies without timers never armed a tick; the
                // wrapper needs one for the spin to engage.
                shard.next_tick = shard.scheduler.next_tick(shard.now);
            }
        }
    }

    /// Executes an armed spill-flood fault: routes phantom requests to
    /// the target channel's shard until its buffer and spill queue both
    /// overflow, tripping the resource-bound detector in `Shard::admit`
    /// during the next controller phase.
    fn trigger_flood(&mut self, fault: FaultSpec, at: Cycle) {
        self.telemetry.emit(|| TraceEvent::ChaosInjected {
            cycle: at,
            kind: FaultKind::SpillFlood,
        });
        let channel = fault.channel.min(self.cfg.num_channels() - 1);
        let addr = MemAddress::new(
            ChannelId::new(channel),
            BankId::new(0),
            tcm_types::Row::new(0),
        );
        let thread = ThreadId::new(fault.thread.min(self.cfg.num_threads - 1));
        let spill_bound = self.cfg.num_threads * self.cfg.mshrs_per_core;
        let phantoms = self.cfg.request_buffer + spill_bound + 1;
        // All phantoms go to the inbox up front; the shard stops
        // admitting the moment the bound trips (its event loop breaks on
        // a pending error), and poll_faults surfaces it at the barrier.
        for _ in 0..phantoms {
            let id = RequestId::new(self.next_request_id);
            self.next_request_id += 1;
            let request = Request::new(id, thread, addr, at);
            self.route(at, request, ShardMsg::Arrival(request));
        }
    }

    /// Applies due coordination faults to this exchange's harvested
    /// sample vector: a blackout deletes the target controller's sample
    /// (its monitor went dark), a skew corrupts it into physical
    /// impossibility (more shadow hits than accesses). Fire-once.
    fn apply_coordination_faults(&mut self, at: Cycle, samples: &mut [Option<MonitorSample>]) {
        let mut i = 0;
        while i < self.chaos_coordination.len() {
            let fault = self.chaos_coordination[i];
            if fault.at > at {
                i += 1;
                continue;
            }
            self.chaos_coordination.remove(i);
            let c = fault.controller.min(samples.len() - 1);
            match fault.kind {
                FaultKind::ControllerBlackout => samples[c] = None,
                FaultKind::MonitorSkew => {
                    if let Some(sample) = &mut samples[c] {
                        let t = fault
                            .thread
                            .min(sample.shadow_accesses.len().saturating_sub(1));
                        sample.shadow_hits[t] = sample.shadow_accesses[t]
                            .saturating_mul(2)
                            .saturating_add(1_000);
                    }
                }
                _ => unreachable!("coordination_faults yields only coordination kinds"),
            }
            self.telemetry.emit(|| TraceEvent::ChaosInjected {
                cycle: at,
                kind: fault.kind,
            });
        }
    }

    /// The meta-controller's plausibility-guard anomaly log (empty
    /// without a meta-controller or a guard).
    pub fn degradation_events(&self) -> &[DegradationAnomaly] {
        self.meta
            .as_deref()
            .map(MetaScheduler::degradation_events)
            .unwrap_or(&[])
    }

    fn arm_next_burst(&mut self, t: usize) {
        let Some(generator) = self.generators[t].as_mut() else {
            return;
        };
        let gap = generator.next_burst_into(&mut self.pending_accesses[t]);
        self.cores[t].schedule_burst(gap, self.pending_accesses[t].len());
    }

    fn poll_core(&mut self, t: usize) {
        match self.cores[t].poll(self.now) {
            CoreStatus::WillBurst { at } => {
                self.core_epoch[t] += 1;
                self.events.push(
                    at,
                    Event::CoreBurst {
                        thread: ThreadId::new(t),
                        epoch: self.core_epoch[t],
                    },
                );
            }
            CoreStatus::Blocked | CoreStatus::ComputeOnly => {}
        }
    }

    /// Routes a message to the shard owning its request's channel,
    /// stamping coordinator processing order.
    fn route(&mut self, cycle: Cycle, request: Request, msg: ShardMsg) {
        let shard = self.owner[request.addr.channel.index()];
        self.shards[shard].inbox.push((cycle, msg));
    }

    /// Injects thread `t`'s pending burst: requests are routed to their
    /// owning shards as arrivals at the current cycle.
    fn inject_burst(&mut self, t: usize) {
        let accesses = std::mem::take(&mut self.pending_accesses[t]);
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        for addr in &accesses {
            let id = RequestId::new(self.next_request_id);
            self.next_request_id += 1;
            ids.push(id);
            let request = Request::new(id, ThreadId::new(t), *addr, self.now);
            self.route(self.now, request, ShardMsg::Arrival(request));
        }
        self.cores[t].issue_burst(&ids);
        self.injected += ids.len() as u64;
        self.scratch_ids = ids;
        self.pending_accesses[t] = accesses;
        self.arm_next_burst(t);
        self.poll_core(t);
    }

    /// Phase 1: processes core-side events below `bound`.
    fn phase_cores(&mut self, bound: Cycle) {
        // `bound >= t + 1 >= 1`, so the inclusive form cannot underflow.
        while let Some((cycle, event)) = self.events.pop_at_or_before(bound - 1) {
            debug_assert!(cycle >= self.now, "coordinator queue went backwards");
            self.now = cycle;
            self.events_since_retire += 1;
            match event {
                Event::CoreBurst { thread, epoch } => {
                    let t = thread.index();
                    if epoch != self.core_epoch[t] {
                        continue; // stale
                    }
                    match self.cores[t].poll(cycle) {
                        CoreStatus::WillBurst { at } if at <= cycle => self.inject_burst(t),
                        CoreStatus::WillBurst { .. } => self.poll_core(t),
                        _ => {}
                    }
                }
                Event::Completion { request } => {
                    let t = request.thread.index();
                    self.cores[t].complete(request.id);
                    self.completed += 1;
                    self.last_retire = cycle;
                    self.events_since_retire = 0;
                    self.route(cycle, request, ShardMsg::Completed(request));
                    self.poll_core(t);
                }
                Event::BankReady { .. } | Event::SchedTick => {
                    unreachable!("coordinator queue carries core events only")
                }
            }
        }
    }

    /// Phase 2: steps every shard to `bound`, chunked over host threads
    /// when more than one is configured. Shards own disjoint state and
    /// are joined in spawn order, so the thread count is unobservable —
    /// which also makes the adaptive fast path safe: a window whose
    /// total pending work is below [`INLINE_WINDOW_THRESHOLD`] messages
    /// runs inline, because spawning threads costs more than stepping a
    /// near-empty window (the 200-cycle hit-round-trip windows of a
    /// typical run carry a handful of messages each; per-window spawns
    /// were the dominant cost of the sharded engine).
    fn step_shards(&mut self, bound: Cycle) {
        let hosts = self.hosts.min(self.shards.len()).max(1);
        if hosts > 1 {
            let work: usize = self
                .shards
                .iter()
                .map(|s| s.inbox.len() + s.events.len())
                .sum();
            if work >= INLINE_WINDOW_THRESHOLD {
                let chunk = self.shards.len().div_ceil(hosts);
                std::thread::scope(|scope| {
                    for shards in self.shards.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for shard in shards {
                                shard.step(bound);
                            }
                        });
                    }
                });
                return;
            }
        }
        for shard in &mut self.shards {
            shard.step(bound);
        }
    }

    /// Barrier: merges every shard's completions into the coordinator
    /// queue, in controller order.
    fn merge_outboxes(&mut self) {
        for shard in &mut self.shards {
            for (cycle, request) in shard.outbox.drain(..) {
                self.events.push(cycle, Event::Completion { request });
            }
        }
    }

    /// Surfaces any fault recorded during the window, in controller
    /// order: typed shard errors first, then protocol-checker
    /// violations.
    fn poll_faults(&mut self) -> Result<(), SimError> {
        for shard in &mut self.shards {
            if let Some(err) = shard.pending_error.take() {
                return Err(err);
            }
        }
        for shard in &self.shards {
            for ch in &shard.channels {
                if let Some(violation) = ch.violation() {
                    return Err(SimError::InvariantViolation(violation.clone()));
                }
            }
        }
        Ok(())
    }

    /// Global per-thread counter view (service summed over every
    /// controller) for the meta-controller.
    fn view_arrays(&self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let n = self.cfg.num_threads;
        let retired = self.cores.iter().map(Core::retired).collect();
        let misses = self.cores.iter().map(Core::misses_issued).collect();
        let mut service = vec![0u64; n];
        for shard in &self.shards {
            for (t, s) in shard.local_service(n).iter().enumerate() {
                service[t] += s;
            }
        }
        (retired, misses, service)
    }

    /// Runs every timer due at `at`: the meta-controller's exchange
    /// first (harvest → aggregate → broadcast), then per-controller
    /// policy timers in controller order. Counter views are built in
    /// reused scratch buffers — timers fire every barrier for some
    /// policies, and allocating three vectors per firing was measurable.
    fn run_ticks(&mut self, at: Cycle) {
        let mut retired = std::mem::take(&mut self.scratch_retired);
        let mut misses = std::mem::take(&mut self.scratch_misses);
        let mut service = std::mem::take(&mut self.scratch_service);
        if self.meta_tick.is_some_and(|due| due <= at) {
            retired.clear();
            retired.extend(self.cores.iter().map(Core::retired));
            misses.clear();
            misses.extend(self.cores.iter().map(Core::misses_issued));
            service.clear();
            service.resize(self.cfg.num_threads, 0);
            for shard in &self.shards {
                for ch in &shard.channels {
                    for (t, s) in ch.stats().thread_service_all().iter().enumerate() {
                        if t < self.cfg.num_threads {
                            service[t] += s;
                        }
                    }
                }
            }
            let meta = self.meta.as_mut().expect("meta_tick without a meta");
            let harvested = meta.needs_samples(at);
            let mut samples: Vec<Option<MonitorSample>> = if harvested {
                self.shards
                    .iter_mut()
                    .map(|s| s.scheduler.quantum_exchange(at))
                    .collect()
            } else {
                vec![None; self.shards.len()]
            };
            if harvested && !self.chaos_coordination.is_empty() {
                self.apply_coordination_faults(at, &mut samples);
            }
            let meta = self.meta.as_mut().expect("meta_tick without a meta");
            let view = SystemView {
                retired: &retired,
                misses: &misses,
                service: &service,
            };
            let plan = meta.exchange(at, &view, &samples);
            if plan.quarantined.is_empty() {
                for shard in &mut self.shards {
                    shard.scheduler.apply_broadcast(&plan, at);
                }
            } else {
                // A quarantined controller gets the degenerate all-zero
                // ranking — Algorithm 3 with equal ranks is row-hit then
                // oldest, i.e. local FR-FCFS — while the healthy shards
                // keep the real TCM clustering for this quantum.
                let fallback = ClusterPlan {
                    priorities: vec![0; self.cfg.num_threads],
                    degraded: true,
                    quarantined: plan.quarantined.clone(),
                };
                for (i, shard) in self.shards.iter_mut().enumerate() {
                    if plan.quarantined.get(i).copied().unwrap_or(false) {
                        shard.scheduler.apply_broadcast(&fallback, at);
                    } else {
                        shard.scheduler.apply_broadcast(&plan, at);
                    }
                }
            }
            let meta = self.meta.as_mut().expect("meta_tick without a meta");
            self.meta_tick = meta.next_tick(at);
        }
        for i in 0..self.shards.len() {
            if self.shards[i].next_tick.is_some_and(|due| due <= at) {
                retired.clear();
                retired.extend(self.cores.iter().map(Core::retired));
                misses.clear();
                misses.extend(self.cores.iter().map(Core::misses_issued));
                self.shards[i].local_service_into(self.cfg.num_threads, &mut service);
                let view = SystemView {
                    retired: &retired,
                    misses: &misses,
                    service: &service,
                };
                self.shards[i].scheduler.tick(at, &view);
                self.shards[i].next_tick = self.shards[i].scheduler.next_tick(at);
            }
        }
        self.scratch_retired = retired;
        self.scratch_misses = misses;
        self.scratch_service = service;
    }

    /// Whether no event anywhere can ever fire again (timers alone never
    /// create events).
    fn drained(&self) -> bool {
        self.events.is_empty() && self.shards.iter().all(Shard::idle)
    }

    /// Processes windows until `horizon`, then settles all cores and
    /// reports the run — panicking wrapper over [`MultiSystem::try_run`].
    ///
    /// # Panics
    ///
    /// Panics if the run stalls or trips a protocol invariant.
    pub fn run(&mut self, horizon: Cycle) -> RunResult {
        match self.try_run(horizon) {
            Ok(result) => result,
            Err(err) => panic!("simulation failed: {err}"),
        }
    }

    /// Processes windows until `horizon`, then settles all cores at the
    /// horizon and reports the run's results — or a typed error.
    ///
    /// # Errors
    ///
    /// Same contract as the single-controller engine: `Stalled` when the
    /// watchdog fires or the queues drain with requests in flight,
    /// `InvariantViolation` from the protocol checker or the spill
    /// bound, `Cancelled` when the token fires.
    pub fn try_run(&mut self, horizon: Cycle) -> Result<RunResult, SimError> {
        let mut t: Cycle = 0;
        while t <= horizon {
            if self.drained() {
                break;
            }
            t = self.skip_empty_windows(t, horizon);
            let mut bound = (t + self.window).min(horizon + 1);
            if let Some(due) = self.meta_tick {
                bound = bound.min(due.max(t + 1));
            }
            for i in 0..self.shards.len() {
                if let Some(due) = self.shards[i].next_tick {
                    bound = bound.min(due.max(t + 1));
                    // A timer already due at the window start means the
                    // policy's clock refuses to advance — the sharded
                    // analogue of a same-cycle event-loop spin.
                    if due <= t {
                        self.frozen_ticks[i] += 1;
                        if self.frozen_ticks[i] > FROZEN_TICK_LIMIT {
                            return Err(SimError::Stalled(Box::new(self.stall_report_for(Some(i)))));
                        }
                    } else {
                        self.frozen_ticks[i] = 0;
                    }
                } else {
                    self.frozen_ticks[i] = 0;
                }
            }
            if let Some(fault) = self.chaos_flood {
                if fault.at < bound {
                    self.chaos_flood = None;
                    self.trigger_flood(fault, fault.at.max(t));
                }
            }
            self.phase_cores(bound);
            self.step_shards(bound);
            self.poll_faults()?;
            self.merge_outboxes();
            self.now = bound.min(horizon);
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(SimError::Cancelled(self.now));
                }
            }
            if let Some(limit) = self.stall_limit {
                if self.injected > self.completed
                    && bound.saturating_sub(self.last_retire) > limit
                {
                    return Err(SimError::Stalled(Box::new(self.stall_report())));
                }
            }
            if bound <= horizon {
                self.run_ticks(bound);
            }
            t = bound;
        }
        if self.stall_limit.is_some() && self.injected > self.completed && self.drained() {
            return Err(SimError::Stalled(Box::new(self.stall_report())));
        }
        self.now = horizon;
        for t in 0..self.cfg.num_threads {
            self.cores[t].poll(horizon);
        }
        for shard in &mut self.shards {
            for ch in &mut shard.channels {
                ch.finish_verification(horizon)?;
            }
        }
        Ok(self.collect(horizon))
    }

    /// Fast-forwards `t` over windows that are provable no-ops: no event
    /// (coordinator or shard) fires in them, no scheduler or
    /// meta-controller timer is due, no armed flood would fire, and the
    /// retirement watchdog cannot trip. Returns the new window start —
    /// always a whole number of windows ahead, so the barrier grid (and
    /// with it every same-cycle ordering decision) is exactly the grid
    /// the per-window loop would have walked.
    ///
    /// Soundness: a window `[t, t+W)` with no event below its bound and
    /// no timer due at it runs `phase_cores`/`step_shards` over nothing,
    /// merges empty outboxes, and skips `run_ticks` — a strict no-op
    /// apart from the barrier bookkeeping, which is also unobservable in
    /// the skipped range: `frozen_ticks` stays 0 (every due is strictly
    /// beyond the range), the stall check is capped below (we never skip
    /// past `last_retire + limit`, so a watchdog error surfaces at the
    /// same barrier bound it always did), and nothing in the range can
    /// change `injected`/`completed`/`last_retire`. The skip target is
    /// held strictly below the first constraint (`limit - 1` in the
    /// divide) so the barrier *at* a due cycle still runs its ticks.
    fn skip_empty_windows(&self, t: Cycle, horizon: Cycle) -> Cycle {
        let mut limit = horizon + 1;
        let mut clamp = |c: Cycle| limit = limit.min(c);
        if let Some(at) = self.events.peek_cycle() {
            clamp(at);
        }
        for shard in &self.shards {
            debug_assert!(shard.inbox.is_empty(), "inboxes drain at every barrier");
            if let Some(at) = shard.events.peek_cycle() {
                clamp(at);
            }
            if let Some(due) = shard.next_tick {
                clamp(due);
            }
        }
        if let Some(due) = self.meta_tick {
            clamp(due);
        }
        if let Some(fault) = self.chaos_flood {
            clamp(fault.at);
        }
        if let Some(stall) = self.stall_limit {
            if self.injected > self.completed {
                clamp(self.last_retire.saturating_add(stall).saturating_add(1));
            }
        }
        if limit <= t {
            return t;
        }
        let windows = (limit - 1 - t) / self.window;
        t + windows * self.window
    }

    fn stall_report(&self) -> StallReport {
        // No specific culprit known: attribute the controller with the
        // deepest backlog (queues + spill), ties to the lowest index —
        // on a multi-controller machine that is where progress died.
        let suspect = (self.shards.len() > 1).then(|| {
            let load = |s: &Shard| {
                s.channels.iter().map(|ch| ch.queue().len()).sum::<usize>()
                    + s.spill.iter().map(VecDeque::len).sum::<usize>()
            };
            self.shards
                .iter()
                .enumerate()
                .max_by_key(|(i, s)| (load(s), Reverse(*i)))
                .map_or(0, |(i, _)| i)
        });
        self.stall_report_for(suspect)
    }

    /// A stall report attributing `controller` (when known and the
    /// machine actually has more than one).
    fn stall_report_for(&self, controller: Option<usize>) -> StallReport {
        StallReport {
            controller: controller
                .filter(|_| self.shards.len() > 1)
                .map(ControllerId::new),
            now: self.now,
            last_retire: self.last_retire,
            events_since_retire: self.events_since_retire,
            outstanding: self.cores.iter().map(Core::outstanding).collect(),
            queue_depths: self
                .shards
                .iter()
                .flat_map(|s| s.channels.iter().map(|ch| ch.queue().len()))
                .collect(),
            spill_depths: self
                .shards
                .iter()
                .flat_map(|s| s.spill.iter().map(VecDeque::len))
                .collect(),
            busy_banks: self
                .shards
                .iter()
                .flat_map(|s| s.channels.iter().map(Channel::busy_bank_count))
                .collect(),
        }
    }

    /// Folds the run's final counters into the metrics registry, with
    /// per-controller labels alongside the global aggregates.
    fn absorb_metrics(&self, run: &RunResult) {
        self.telemetry.with_metrics(|m| {
            m.set_counter("requests_serviced", run.total_serviced);
            m.set_counter("requests_spilled", run.spilled);
            m.set_counter("peak_queue_depth", run.peak_queue as u64);
            m.set_gauge("row_hit_rate", run.row_hit_rate);
            for (i, shard) in self.shards.iter().enumerate() {
                let midx = i.to_string();
                let mlabel: &[(&str, &str)] = &[("controller", &midx)];
                let serviced: u64 =
                    shard.channels.iter().map(|c| c.stats().total_serviced()).sum();
                let hits: u64 = shard.channels.iter().map(|c| c.stats().total_row_hits()).sum();
                let busy: u64 = shard.channels.iter().map(|c| c.stats().bus_busy_cycles).sum();
                m.set_counter(&labeled("requests_serviced", mlabel), serviced);
                m.set_counter(&labeled("bus_busy_cycles", mlabel), busy);
                m.set_gauge(
                    &labeled("bus_utilization", mlabel),
                    busy as f64 / (run.cycles.max(1) as f64 * shard.channels.len() as f64),
                );
                m.set_gauge(
                    &labeled("row_hit_rate", mlabel),
                    if serviced == 0 {
                        0.0
                    } else {
                        hits as f64 / serviced as f64
                    },
                );
                for ch in &shard.channels {
                    let stats = ch.stats();
                    let cidx = ch.id().to_string();
                    let labels: &[(&str, &str)] = &[("controller", &midx), ("channel", &cidx)];
                    m.set_counter(&labeled("bus_busy_cycles", labels), stats.bus_busy_cycles);
                    m.set_gauge(
                        &labeled("bus_utilization", labels),
                        stats.bus_busy_cycles as f64 / run.cycles.max(1) as f64,
                    );
                }
            }
            for (t, (&svc, &miss)) in run.service.iter().zip(&run.misses).enumerate() {
                let tidx = t.to_string();
                let labels: &[(&str, &str)] = &[("thread", &tidx)];
                m.set_counter(&labeled("service_cycles", labels), svc);
                m.set_counter(&labeled("misses", labels), miss);
            }
        });
    }

    fn collect(&self, horizon: Cycle) -> RunResult {
        let (retired, misses, service) = self.view_arrays();
        let ipc = retired
            .iter()
            .map(|&r| r as f64 / horizon.max(1) as f64)
            .collect();
        let channels = || self.shards.iter().flat_map(|s| s.channels.iter());
        let total_serviced: u64 = channels().map(|c| c.stats().total_serviced()).sum();
        let total_hits: u64 = channels().map(|c| c.stats().total_row_hits()).sum();
        let result = RunResult {
            cycles: horizon,
            retired,
            ipc,
            misses,
            service,
            total_serviced,
            row_hit_rate: if total_serviced == 0 {
                0.0
            } else {
                total_hits as f64 / total_serviced as f64
            },
            spilled: self.shards.iter().map(|s| s.spilled).sum(),
            peak_queue: channels()
                .map(|c| c.stats().peak_queue_depth)
                .max()
                .unwrap_or(0),
        };
        if self.telemetry.is_enabled() {
            self.absorb_metrics(&result);
        }
        result
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::PolicyKind;
    use tcm_core::TcmParams;
    use tcm_types::Topology;
    use tcm_workload::{random_workload, BenchmarkProfile};

    fn cfg(threads: usize, topology: Topology) -> SystemConfig {
        SystemConfig::builder()
            .num_threads(threads)
            .topology(topology)
            .build()
            .unwrap()
    }

    fn build(cfg: &SystemConfig, policy: &PolicyKind, workload: &WorkloadSpec) -> MultiSystem {
        let n = cfg.num_threads;
        let controllers = (0..cfg.topology.num_controllers())
            .map(|_| policy.build_controller(n, cfg))
            .collect();
        MultiSystem::new(cfg, workload, controllers, policy.build_meta(n, cfg), 7)
    }

    /// TCM with quanta short enough that a test-sized run crosses
    /// several meta-controller exchanges.
    fn fast_tcm(threads: usize) -> PolicyKind {
        let mut params = TcmParams::paper_default(threads);
        params.quantum = 20_000;
        PolicyKind::Tcm(params)
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_sequential() {
        let cfg = cfg(6, Topology::uniform(3, 2));
        let w = random_workload(11, 6, 0.75);
        let policy = fast_tcm(6);
        let mut sequential = build(&cfg, &policy, &w);
        sequential.set_hosts(1);
        let baseline = sequential.run(120_000);
        for hosts in [2, 3, 8] {
            let mut sharded = build(&cfg, &policy, &w);
            sharded.set_hosts(hosts);
            assert_eq!(
                sharded.run(120_000),
                baseline,
                "hosts={hosts} must be bit-identical to sequential"
            );
        }
        assert!(baseline.total_serviced > 0);
    }

    #[test]
    fn reruns_are_deterministic() {
        let cfg = cfg(4, Topology::asymmetric([3, 1]));
        let w = random_workload(3, 4, 0.75);
        let a = build(&cfg, &PolicyKind::FrFcfs, &w).run(80_000);
        let b = build(&cfg, &PolicyKind::FrFcfs, &w).run(80_000);
        assert_eq!(a, b);
    }

    #[test]
    fn uncoordinated_policies_run_per_controller_timers() {
        // ATLAS keeps its own quantum timer in each controller instance.
        let cfg = cfg(4, Topology::uniform(2, 2));
        let w = random_workload(5, 4, 1.0);
        let policy = PolicyKind::Atlas(tcm_sched::AtlasParams::paper_default());
        let r = build(&cfg, &policy, &w).run(100_000);
        assert!(r.total_serviced > 0);
        assert!(r.ipc.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn coordinated_tcm_crosses_quanta_without_degrading() {
        let cfg = cfg(4, Topology::uniform(2, 1));
        let w = random_workload(9, 4, 1.0);
        let mut sys = build(&cfg, &fast_tcm(4), &w);
        let r = sys.run(100_000); // five 20k-cycle quanta
        assert!(r.total_serviced > 0);
        assert!(
            sys.degradation_events().is_empty(),
            "clean run must not trip the plausibility guard"
        );
        // After the final exchange every controller has harvested and
        // holds broadcast state; a fresh harvest still works.
        for shard in &mut sys.shards {
            assert!(shard.scheduler.quantum_exchange(200_000).is_some());
        }
    }

    #[test]
    fn compute_only_workload_drains_cleanly() {
        let cfg = cfg(2, Topology::uniform(2, 1));
        let w = WorkloadSpec::new(
            "idle",
            vec![
                BenchmarkProfile::new("idle-a", 0.0, 0.5, 1.0),
                BenchmarkProfile::new("idle-b", 0.0, 0.5, 1.0),
            ],
        );
        let r = build(&cfg, &PolicyKind::FrFcfs, &w).run(10_000);
        assert_eq!(r.retired, vec![30_000, 30_000]);
        assert_eq!(r.total_serviced, 0);
    }

    #[test]
    fn verification_is_observation_only() {
        let cfg = cfg(4, Topology::uniform(2, 2));
        let w = random_workload(2, 4, 0.75);
        let plain = build(&cfg, &PolicyKind::FrFcfs, &w).run(60_000);
        let mut verified = build(&cfg, &PolicyKind::FrFcfs, &w);
        verified.enable_verification();
        assert_eq!(verified.try_run(60_000).unwrap(), plain);
    }
}
