//! Plain-text table rendering for experiment binaries.

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use tcm_sim::report::Table;
///
/// let mut t = Table::new(vec!["policy", "WS", "MS"]);
/// t.row(vec!["TCM".into(), "14.2".into(), "5.9".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("policy"));
/// assert!(rendered.contains("TCM"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Self {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect();
            parts.join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places (the paper's typical precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage change `new` vs `baseline` (positive = higher).
pub fn pct_change(new: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", (new - baseline) / baseline * 100.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bad_row_width_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(3.21987), "3.22");
        assert_eq!(f3(3.21987), "3.220");
        assert_eq!(pct_change(110.0, 100.0), "+10.0%");
        assert_eq!(pct_change(90.0, 100.0), "-10.0%");
        assert_eq!(pct_change(1.0, 0.0), "n/a");
    }
}
