//! Incremental sweep checkpointing (see [`Sweep::checkpoint`]).
//!
//! A checkpoint is a JSONL file: one header line naming the grid
//! (policy labels, workload names, seed values, horizon) followed by one
//! line per *completed* cell. Every `f64` is stored as the decimal
//! rendering of its IEEE-754 bit pattern, so a resumed sweep reproduces
//! results **bit-identically** — no decimal round-trip error, NaN and
//! infinity included.
//!
//! Durability: every append rewrites the full buffer to `<path>.tmp` and
//! atomically renames it over `<path>` — fsyncing the temp file before
//! the rename and the parent directory after it — so the file on disk
//! is always a complete, durable prefix of the sweep: a killed process
//! (or lost power) never leaves a torn or stale published checkpoint
//! behind. Loading is tolerant: a missing file or a mismatched
//! header starts fresh, and a trailing partial line (from a pre-rename
//! crash of some other writer) is ignored.
//!
//! The format is an internal detail of [`Sweep::checkpoint`] /
//! `tcm-run --resume`; the grid identity check means a checkpoint can
//! never silently graft results from a different experiment.
//!
//! [`Sweep::checkpoint`]: crate::Sweep::checkpoint

use crate::metrics::WorkloadMetrics;
use crate::runner::EvalResult;
use crate::sweep::SweepCell;
use crate::system::RunResult;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use tcm_telemetry::{MetricsRegistry, TelemetrySnapshot};

/// Schema tag of the only supported checkpoint version.
const SCHEMA: &str = "tcm-sweep-checkpoint-v1";

/// The grid a checkpoint belongs to. Two sweeps may share a checkpoint
/// file only if their headers are identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CheckpointHeader {
    /// Policy labels, in sweep order.
    pub policies: Vec<String>,
    /// Workload names, in sweep order.
    pub workloads: Vec<String>,
    /// Seed axis values.
    pub seeds: Vec<u64>,
    /// Simulation horizon in cycles.
    pub horizon: u64,
}

/// A loaded checkpoint: the grid header plus every completed cell.
#[derive(Debug)]
pub(crate) struct Checkpoint {
    pub header: CheckpointHeader,
    pub cells: Vec<SweepCell>,
}

/// Loads the checkpoint at `path`. Returns `Ok(None)` if the file does
/// not exist; unparsable *trailing* cell lines are ignored (a torn
/// write), but a bad header is an error so grid mismatches are loud.
pub(crate) fn load(path: &Path) -> io::Result<Option<Checkpoint>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return Ok(None);
    };
    let header = parse_header(first)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint header"))?;
    let mut cells = Vec::new();
    for line in lines {
        match parse_cell(line) {
            Some(cell) => cells.push(cell),
            None => break, // torn tail: keep the cells before it
        }
    }
    Ok(Some(Checkpoint { header, cells }))
}

/// Append-only checkpoint writer. Keeps the full serialized file in
/// memory (header first) and atomically republishes it on every append.
#[derive(Debug)]
pub(crate) struct CheckpointWriter {
    path: PathBuf,
    lines: Vec<String>,
}

impl CheckpointWriter {
    /// A writer for `path` starting from `header` and the already-known
    /// `cells` (the resumed prefix). Publishes the initial state
    /// immediately so a fresh sweep leaves a valid header-only file even
    /// if it is killed before the first cell completes.
    pub fn create(
        path: PathBuf,
        header: &CheckpointHeader,
        cells: &[SweepCell],
    ) -> io::Result<Self> {
        let mut lines = Vec::with_capacity(cells.len() + 1);
        lines.push(write_header(header));
        lines.extend(cells.iter().map(write_cell));
        let writer = Self { path, lines };
        writer.publish()?;
        Ok(writer)
    }

    /// Records one completed cell and republishes the file atomically.
    pub fn append(&mut self, cell: &SweepCell) -> io::Result<()> {
        self.lines.push(write_cell(cell));
        self.publish()
    }

    fn publish(&self) -> io::Result<()> {
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut buffer = self.lines.join("\n");
        buffer.push('\n');
        // Crash-consistent publish: fsync the temp file *before* the
        // rename (so the rename can never install a file whose data is
        // still in the page cache) and fsync the parent directory
        // *after* it (so the rename itself — a directory mutation — is
        // durable). Without both, power loss or SIGKILL in the window
        // between write and rename can surface a stale or torn
        // checkpoint on restart.
        {
            use std::io::Write;
            let mut file = fs::File::create(&tmp)?;
            file.write_all(buffer.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => std::path::Path::new("."),
        };
        fs::File::open(parent)?.sync_all()
    }
}

// ---------------------------------------------------------------------
// Serialization. The writer emits exactly the subset of JSON the parser
// below accepts: objects, arrays, strings, and unsigned integers. All
// floats travel as `f64::to_bits` integers.
// ---------------------------------------------------------------------

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_u64_array(out: &mut String, values: impl IntoIterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn write_f64_array(out: &mut String, values: &[f64]) {
    write_u64_array(out, values.iter().map(|v| v.to_bits()));
}

fn write_header(header: &CheckpointHeader) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    write_str(&mut out, SCHEMA);
    out.push_str(",\"policies\":[");
    for (i, p) in header.policies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, p);
    }
    out.push_str("],\"workloads\":[");
    for (i, w) in header.workloads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, w);
    }
    out.push_str("],\"seeds\":");
    write_u64_array(&mut out, header.seeds.iter().copied());
    out.push_str(&format!(",\"horizon\":{}}}", header.horizon));
    out
}

fn write_cell(cell: &SweepCell) -> String {
    let r = &cell.result;
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"policy\":{},\"workload\":{},\"seed\":{},\"result\":{{\"policy\":",
        cell.policy, cell.workload, cell.seed
    ));
    write_str(&mut out, &r.policy);
    out.push_str(",\"workload\":");
    write_str(&mut out, &r.workload);
    out.push_str(",\"metrics\":");
    write_f64_array(
        &mut out,
        &[
            r.metrics.weighted_speedup,
            r.metrics.harmonic_speedup,
            r.metrics.max_slowdown,
        ],
    );
    out.push_str(",\"slowdowns\":");
    write_f64_array(&mut out, &r.slowdowns);
    out.push_str(",\"speedups\":");
    write_f64_array(&mut out, &r.speedups);
    let run = &r.run;
    out.push_str(&format!(",\"run\":{{\"cycles\":{},\"retired\":", run.cycles));
    write_u64_array(&mut out, run.retired.iter().copied());
    out.push_str(",\"ipc\":");
    write_f64_array(&mut out, &run.ipc);
    out.push_str(",\"misses\":");
    write_u64_array(&mut out, run.misses.iter().copied());
    out.push_str(",\"service\":");
    write_u64_array(&mut out, run.service.iter().copied());
    out.push_str(&format!(
        ",\"total_serviced\":{},\"row_hit_rate\":{},\"spilled\":{},\"peak_queue\":{}}}",
        run.total_serviced,
        run.row_hit_rate.to_bits(),
        run.spilled,
        run.peak_queue
    ));
    // Only the metric *summary* (counters + gauges) of a telemetry
    // snapshot is checkpointed; the event log and histogram/series data
    // are run artifacts, not resumable state. A resumed cell therefore
    // carries an empty event log — documented on `RunConfig::telemetry`.
    if let Some(snapshot) = &r.telemetry {
        let metrics = &snapshot.metrics;
        out.push_str(",\"telemetry\":{\"counters\":{");
        for (i, (name, value)) in metrics.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in metrics.gauges().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push_str(&format!(":{}", value.to_bits()));
        }
        out.push_str("}}");
    }
    out.push_str("}}");
    out
}

// ---------------------------------------------------------------------
// Parsing: a minimal recursive-descent reader for the subset above.
// Returns `None` on any malformed input; callers decide whether that is
// a torn tail (ignore) or a bad header (error).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    UInt(u64),
}

impl Json {
    fn field<'a>(&'a self, name: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn u64_array(&self) -> Option<Vec<u64>> {
        match self {
            Json::Arr(items) => items.iter().map(Json::as_u64).collect(),
            _ => None,
        }
    }

    fn f64_array(&self) -> Option<Vec<f64>> {
        Some(self.u64_array()?.into_iter().map(f64::from_bits).collect())
    }

    fn str_array(&self) -> Option<Vec<String>> {
        match self {
            Json::Arr(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(Json::Str(self.string()?)),
            b'0'..=b'9' => self.uint(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn uint(&mut self) -> Option<Json> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_digit)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse().ok().map(Json::UInt)
    }

    fn finish(mut self, value: Json) -> Option<Json> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Some(value)
        } else {
            None
        }
    }
}

fn parse(text: &str) -> Option<Json> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.finish(value)
}

fn parse_header(line: &str) -> Option<CheckpointHeader> {
    let json = parse(line)?;
    if json.field("schema")?.as_str()? != SCHEMA {
        return None;
    }
    Some(CheckpointHeader {
        policies: json.field("policies")?.str_array()?,
        workloads: json.field("workloads")?.str_array()?,
        seeds: json.field("seeds")?.u64_array()?,
        horizon: json.field("horizon")?.as_u64()?,
    })
}

fn parse_cell(line: &str) -> Option<SweepCell> {
    let json = parse(line)?;
    let result = json.field("result")?;
    let metrics = result.field("metrics")?.f64_array()?;
    if metrics.len() != 3 {
        return None;
    }
    let run = result.field("run")?;
    Some(SweepCell {
        policy: json.field("policy")?.as_u64()? as usize,
        workload: json.field("workload")?.as_u64()? as usize,
        seed: json.field("seed")?.as_u64()? as usize,
        result: EvalResult {
            policy: result.field("policy")?.as_str()?.to_string(),
            workload: result.field("workload")?.as_str()?.to_string(),
            metrics: WorkloadMetrics {
                weighted_speedup: metrics[0],
                harmonic_speedup: metrics[1],
                max_slowdown: metrics[2],
            },
            slowdowns: result.field("slowdowns")?.f64_array()?,
            speedups: result.field("speedups")?.f64_array()?,
            run: RunResult {
                cycles: run.field("cycles")?.as_u64()?,
                retired: run.field("retired")?.u64_array()?,
                ipc: run.field("ipc")?.f64_array()?,
                misses: run.field("misses")?.u64_array()?,
                service: run.field("service")?.u64_array()?,
                total_serviced: run.field("total_serviced")?.as_u64()?,
                row_hit_rate: f64::from_bits(run.field("row_hit_rate")?.as_u64()?),
                spilled: run.field("spilled")?.as_u64()?,
                peak_queue: run.field("peak_queue")?.as_u64()? as usize,
            },
            telemetry: match result.field("telemetry") {
                Some(json) => Some(Box::new(parse_telemetry(json)?)),
                None => None,
            },
        },
    })
}

/// Rebuilds the checkpointed metric summary of a telemetry snapshot.
/// Only counters and gauges are persisted (see [`write_cell`]); the
/// event log comes back empty.
fn parse_telemetry(json: &Json) -> Option<TelemetrySnapshot> {
    let mut metrics = MetricsRegistry::default();
    let Json::Obj(counters) = json.field("counters")? else {
        return None;
    };
    for (name, value) in counters {
        metrics.set_counter(name, value.as_u64()?);
    }
    let Json::Obj(gauges) = json.field("gauges")? else {
        return None;
    };
    for (name, value) in gauges {
        metrics.set_gauge(name, f64::from_bits(value.as_u64()?));
    }
    Some(TelemetrySnapshot {
        events: Vec::new(),
        dropped: 0,
        metrics,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_cell() -> SweepCell {
        SweepCell {
            policy: 1,
            workload: 2,
            seed: 0,
            result: EvalResult {
                policy: "TCM".into(),
                workload: "w \"quoted\" \\slash\u{7}".into(),
                metrics: WorkloadMetrics {
                    weighted_speedup: 3.25,
                    harmonic_speedup: f64::NAN,
                    max_slowdown: f64::INFINITY,
                },
                slowdowns: vec![1.5, 2.5, -0.0],
                speedups: vec![0.1, 0.9],
                run: RunResult {
                    cycles: 60_000,
                    retired: vec![1, 2, u64::MAX],
                    ipc: vec![0.25, 3.0],
                    misses: vec![10, 20],
                    service: vec![100, 200],
                    total_serviced: 42,
                    row_hit_rate: 0.123_456_789_012_345_67,
                    spilled: 7,
                    peak_queue: 99,
                },
                telemetry: Some(Box::new({
                    let mut snapshot = TelemetrySnapshot::default();
                    snapshot.metrics.set_counter("requests_serviced", 42);
                    snapshot
                        .metrics
                        .set_gauge("row_hit_rate", 0.123_456_789_012_345_67);
                    snapshot
                })),
            },
        }
    }

    fn sample_header() -> CheckpointHeader {
        CheckpointHeader {
            policies: vec!["FR-FCFS".into(), "TCM".into()],
            workloads: vec!["w0".into(), "w1".into(), "w2".into()],
            seeds: vec![0, 7],
            horizon: 60_000,
        }
    }

    #[test]
    fn header_round_trips() {
        let header = sample_header();
        assert_eq!(parse_header(&write_header(&header)).unwrap(), header);
    }

    #[test]
    fn cell_round_trips_bit_exactly_including_nan_and_infinity() {
        let cell = sample_cell();
        let parsed = parse_cell(&write_cell(&cell)).unwrap();
        // PartialEq fails on NaN by design; compare bit patterns.
        assert_eq!(
            parsed.result.metrics.harmonic_speedup.to_bits(),
            cell.result.metrics.harmonic_speedup.to_bits()
        );
        assert_eq!(parsed.result.metrics.max_slowdown, f64::INFINITY);
        assert_eq!(parsed.result.slowdowns[2].to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            parsed.result.run.row_hit_rate.to_bits(),
            cell.result.run.row_hit_rate.to_bits()
        );
        assert_eq!(parsed.result.workload, cell.result.workload);
        assert_eq!(parsed.result.run.retired, cell.result.run.retired);
        assert_eq!((parsed.policy, parsed.workload, parsed.seed), (1, 2, 0));
        let telemetry = parsed.result.telemetry.as_ref().unwrap();
        assert_eq!(
            telemetry.metrics.counters().get("requests_serviced"),
            Some(&42)
        );
        assert_eq!(
            telemetry
                .metrics
                .gauges()
                .get("row_hit_rate")
                .map(|v| v.to_bits()),
            Some(0.123_456_789_012_345_67f64.to_bits()),
            "gauges round-trip bit-exactly"
        );
        assert!(telemetry.events.is_empty(), "event logs are not persisted");
    }

    #[test]
    fn torn_tail_is_ignored_but_header_errors_are_loud() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tcm-ckpt-test-{}.jsonl", std::process::id()));
        let header = sample_header();
        let mut text = write_header(&header);
        text.push('\n');
        text.push_str(&write_cell(&sample_cell()));
        text.push('\n');
        text.push_str("{\"policy\":1,\"work"); // torn mid-write
        fs::write(&path, &text).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.header, header);
        assert_eq!(loaded.cells.len(), 1, "torn tail dropped");

        fs::write(&path, "{\"schema\":\"something-else\"}\n").unwrap();
        assert!(load(&path).is_err(), "wrong schema must not load silently");
        fs::remove_file(&path).unwrap();
        assert!(load(&path).unwrap().is_none(), "missing file starts fresh");
    }

    #[test]
    fn writer_publishes_atomically_and_appends() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tcm-ckpt-writer-{}.jsonl", std::process::id()));
        let header = sample_header();
        let mut writer = CheckpointWriter::create(path.clone(), &header, &[]).unwrap();
        let after_create = load(&path).unwrap().unwrap();
        assert!(after_create.cells.is_empty(), "header-only file is valid");
        writer.append(&sample_cell()).unwrap();
        writer.append(&sample_cell()).unwrap();
        let loaded = load(&path).unwrap().unwrap();
        assert_eq!(loaded.cells.len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_trailing_garbage_and_non_subset_json() {
        assert!(parse("{\"a\":1} extra").is_none());
        assert!(parse("-5").is_none(), "negative ints are outside the subset");
        assert!(parse("1.5").is_none(), "floats travel as bit patterns only");
        assert!(parse("true").is_none(), "booleans are outside the subset");
    }
}
