//! ASCII scatter plots for the paper's fairness-vs-throughput figures.
//!
//! Figures 1, 4 and 6 of the paper are scatter plots of maximum slowdown
//! against weighted speedup; [`Scatter`] renders the same picture in
//! plain text so the experiment binaries can show the *geometry* (who is
//! closest to the ideal lower-right corner), not just the numbers.

/// A labelled 2-D point set rendered as an ASCII grid.
///
/// # Example
///
/// ```
/// use tcm_sim::scatter::Scatter;
///
/// let mut plot = Scatter::new("WS", "maxSD", 40, 12);
/// plot.point('A', 8.0, 14.0);
/// plot.point('T', 8.4, 9.8);
/// let rendered = plot.render();
/// assert!(rendered.contains('A'));
/// assert!(rendered.contains('T'));
/// ```
#[derive(Debug, Clone)]
pub struct Scatter {
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    points: Vec<(char, f64, f64)>,
}

impl Scatter {
    /// Creates an empty plot of `width × height` character cells.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is smaller than 2.
    pub fn new(x_label: &str, y_label: &str, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "plot must be at least 2x2");
        Self {
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            width,
            height,
            points: Vec::new(),
        }
    }

    /// Adds a point drawn as `marker`.
    pub fn point(&mut self, marker: char, x: f64, y: f64) {
        self.points.push((marker, x, y));
    }

    /// Number of points added.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plot has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the plot. The y axis is drawn *inverted* (smaller values
    /// at the bottom) so that — as in the paper's figures — the ideal
    /// operating point (high throughput, low unfairness) is the lower
    /// right corner.
    pub fn render(&self) -> String {
        if self.points.is_empty() {
            return format!("(no points)  x={}, y={}\n", self.x_label, self.y_label);
        }
        let (mut min_x, mut max_x) = (f64::MAX, f64::MIN);
        let (mut min_y, mut max_y) = (f64::MAX, f64::MIN);
        for &(_, x, y) in &self.points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        // Pad degenerate ranges so single points render mid-plot.
        if (max_x - min_x).abs() < 1e-12 {
            min_x -= 1.0;
            max_x += 1.0;
        }
        if (max_y - min_y).abs() < 1e-12 {
            min_y -= 1.0;
            max_y += 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(marker, x, y) in &self.points {
            let cx = ((x - min_x) / (max_x - min_x) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - min_y) / (max_y - min_y) * (self.height - 1) as f64).round() as usize;
            // Row 0 is the top: the largest y.
            grid[self.height - 1 - cy][cx] = marker;
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} {:.2} (top) .. {:.2} (bottom)\n",
            self.y_label, max_y, min_y
        ));
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            " {} {:.2} .. {:.2}  (ideal = lower right)\n",
            self.x_label, min_x, max_x
        ));
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_markers_in_bounds() {
        let mut p = Scatter::new("WS", "maxSD", 30, 10);
        p.point('F', 6.6, 14.5);
        p.point('S', 7.2, 10.9);
        p.point('P', 7.5, 9.0);
        p.point('A', 8.0, 17.5);
        p.point('T', 8.4, 9.8);
        let s = p.render();
        for marker in ['F', 'S', 'P', 'A', 'T'] {
            assert!(s.contains(marker), "missing {marker}");
        }
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn ideal_corner_is_lower_right() {
        let mut p = Scatter::new("WS", "maxSD", 20, 8);
        p.point('B', 1.0, 10.0); // bad: slow + unfair -> upper left
        p.point('G', 9.0, 1.0); // good: fast + fair -> lower right
        let s = p.render();
        let lines: Vec<&str> = s.lines().collect();
        // 'B' appears above 'G'.
        let b_row = lines.iter().position(|l| l.contains('B')).unwrap();
        let g_row = lines.iter().position(|l| l.contains('G')).unwrap();
        assert!(b_row < g_row);
        // 'G' is to the right of 'B'.
        assert!(
            lines[g_row].find('G').unwrap() > lines[b_row].find('B').unwrap()
        );
    }

    #[test]
    fn degenerate_inputs_render_safely() {
        let mut p = Scatter::new("x", "y", 10, 5);
        p.point('X', 3.0, 3.0);
        let s = p.render();
        assert!(s.contains('X'));
        let empty = Scatter::new("x", "y", 10, 5);
        assert!(empty.render().contains("no points"));
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn tiny_plots_rejected() {
        Scatter::new("x", "y", 1, 5);
    }
}
