//! Evaluation metrics: the three measures the paper reports.
//!
//! * **Weighted speedup** (system throughput): `Σ IPC_shared / IPC_alone`
//! * **Harmonic speedup** (balance): `N / Σ (IPC_alone / IPC_shared)`
//! * **Maximum slowdown** (unfairness): `max IPC_alone / IPC_shared`

/// Per-thread IPC pair from the shared and alone runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcPair {
    /// IPC when running with the full workload.
    pub shared: f64,
    /// IPC when running alone on the same machine.
    pub alone: f64,
}

impl IpcPair {
    /// This thread's slowdown (`alone / shared`, ≥ 0; ∞ if fully
    /// starved).
    pub fn slowdown(&self) -> f64 {
        if self.shared <= 0.0 {
            f64::INFINITY
        } else {
            self.alone / self.shared
        }
    }

    /// This thread's speedup relative to running alone
    /// (`shared / alone` ≤ 1 in contended systems).
    pub fn speedup(&self) -> f64 {
        if self.alone <= 0.0 {
            0.0
        } else {
            self.shared / self.alone
        }
    }
}

/// The paper's three workload-level metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMetrics {
    /// Weighted speedup (higher is better; ≤ N).
    pub weighted_speedup: f64,
    /// Harmonic speedup (higher is better; ≤ 1 under contention).
    pub harmonic_speedup: f64,
    /// Maximum slowdown (lower is better; ≥ 1 up to sampling noise).
    pub max_slowdown: f64,
}

/// Computes all three metrics from per-thread IPC pairs.
///
/// # Panics
///
/// Panics if `pairs` is empty.
pub fn workload_metrics(pairs: &[IpcPair]) -> WorkloadMetrics {
    assert!(!pairs.is_empty(), "metrics need at least one thread");
    let ws: f64 = pairs.iter().map(|p| p.speedup()).sum();
    let slowdown_sum: f64 = pairs.iter().map(|p| p.slowdown()).sum();
    let hs = pairs.len() as f64 / slowdown_sum;
    let ms = pairs
        .iter()
        .map(|p| p.slowdown())
        .fold(f64::MIN, f64::max);
    WorkloadMetrics {
        weighted_speedup: ws,
        harmonic_speedup: hs,
        max_slowdown: ms,
    }
}

/// Arithmetic mean of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn variance(values: &[f64]) -> f64 {
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ideal_system_scores_perfectly() {
        let pairs = vec![IpcPair { shared: 2.0, alone: 2.0 }; 4];
        let m = workload_metrics(&pairs);
        assert!((m.weighted_speedup - 4.0).abs() < 1e-12);
        assert!((m.harmonic_speedup - 1.0).abs() < 1e-12);
        assert!((m.max_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdowns_drive_all_metrics() {
        let pairs = vec![
            IpcPair { shared: 1.0, alone: 2.0 }, // slowdown 2
            IpcPair { shared: 0.5, alone: 2.0 }, // slowdown 4
        ];
        let m = workload_metrics(&pairs);
        assert!((m.weighted_speedup - 0.75).abs() < 1e-12);
        assert!((m.harmonic_speedup - 2.0 / 6.0).abs() < 1e-12);
        assert!((m.max_slowdown - 4.0).abs() < 1e-12);
    }

    #[test]
    fn starved_thread_is_infinite_slowdown() {
        let p = IpcPair { shared: 0.0, alone: 1.0 };
        assert!(p.slowdown().is_infinite());
        assert_eq!(p.speedup(), 0.0);
    }

    #[test]
    fn weighted_speedup_bounded_by_thread_count() {
        let pairs = vec![
            IpcPair { shared: 1.9, alone: 2.0 },
            IpcPair { shared: 2.0, alone: 2.0 },
            IpcPair { shared: 0.1, alone: 2.0 },
        ];
        let m = workload_metrics(&pairs);
        assert!(m.weighted_speedup <= 3.0);
        assert!(m.max_slowdown >= 1.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_metrics_panic() {
        workload_metrics(&[]);
    }
}
