//! Property tests for the core model: progress bounds and window
//! semantics under arbitrary burst/completion interleavings.

use proptest::prelude::*;
use tcm_cpu::{Core, CoreStatus};
use tcm_types::{RequestId, ThreadId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Retired instructions are monotone, never exceed `issue_width *
    /// cycles`, and never run more than `window` past the oldest
    /// outstanding miss.
    #[test]
    fn progress_is_bounded(
        issue_width in 1usize..4,
        window in 4usize..64,
        gaps in proptest::collection::vec(1u64..200, 1..20),
        poll_step in 1u64..500,
    ) {
        let mut core = Core::new(ThreadId::new(0), issue_width, window, 64);
        let mut next_id = 0u64;
        let mut outstanding: Vec<(RequestId, u64)> = Vec::new();
        let mut gap_iter = gaps.iter().cycle();
        core.schedule_burst(*gap_iter.next().unwrap(), 1);
        let mut now = 0u64;
        let mut last_retired = 0u64;
        let mut issued_instr: Vec<u64> = Vec::new();
        for _ in 0..200 {
            let status = core.poll(now);
            // Monotonicity and the raw issue-rate bound.
            prop_assert!(core.retired() >= last_retired);
            prop_assert!(core.retired() <= now * issue_width as u64);
            // Window bound: retired <= oldest outstanding instr + window.
            if let Some(&min_instr) = issued_instr.iter().min() {
                if !outstanding.is_empty() {
                    prop_assert!(core.retired() <= min_instr + window as u64);
                }
            }
            last_retired = core.retired();
            match status {
                CoreStatus::WillBurst { at } if at <= now => {
                    let id = RequestId::new(next_id);
                    next_id += 1;
                    outstanding.push((id, core.retired()));
                    issued_instr.push(core.retired());
                    core.issue_burst(&[id]);
                    core.schedule_burst(*gap_iter.next().unwrap(), 1);
                }
                CoreStatus::WillBurst { at } => {
                    now = at;
                    continue;
                }
                CoreStatus::Blocked => {
                    // Complete the oldest miss to unblock.
                    if let Some((id, instr)) = outstanding.first().copied() {
                        core.complete(id);
                        outstanding.remove(0);
                        if let Some(pos) = issued_instr.iter().position(|&x| x == instr) {
                            issued_instr.remove(pos);
                        }
                    }
                    now += poll_step;
                }
                CoreStatus::ComputeOnly => break,
            }
        }
    }

    /// A core with no scheduled bursts retires exactly
    /// `issue_width * cycles` instructions.
    #[test]
    fn compute_only_rate_is_exact(
        issue_width in 1usize..4,
        cycles in 1u64..10_000,
    ) {
        let mut core = Core::new(ThreadId::new(0), issue_width, 128, 8);
        prop_assert_eq!(core.poll(cycles), CoreStatus::ComputeOnly);
        prop_assert_eq!(core.retired(), cycles * issue_width as u64);
    }

    /// Completions always unblock a window-blocked core (the core never
    /// deadlocks with completions flowing).
    #[test]
    fn completions_unblock(
        window in 2usize..32,
        gap in 1u64..10,
    ) {
        let mut core = Core::new(ThreadId::new(0), 1, window, 4);
        core.schedule_burst(gap, 1);
        let mut now = 0;
        let mut pending = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..50 {
            match core.poll(now) {
                CoreStatus::WillBurst { at } if at <= now => {
                    let id = RequestId::new(next_id);
                    next_id += 1;
                    core.issue_burst(&[id]);
                    pending.push(id);
                    core.schedule_burst(gap, 1);
                }
                CoreStatus::WillBurst { at } => now = at,
                CoreStatus::Blocked => {
                    prop_assert!(!pending.is_empty(), "blocked without outstanding misses");
                    core.complete(pending.remove(0));
                    // After completing the oldest miss, the core must not
                    // be Blocked at the same instant anymore unless MSHRs
                    // are still full (they cannot be: we just freed one).
                    let status = core.poll(now);
                    prop_assert_ne!(status, CoreStatus::Blocked);
                }
                CoreStatus::ComputeOnly => unreachable!("bursts always rescheduled"),
            }
        }
    }
}
