//! CPU core model: instruction-window-occupancy stall semantics.
//!
//! Each simulated core executes a single thread at up to `issue_width`
//! instructions per cycle (3 in the paper's baseline) and tolerates cache
//! misses with a `window_size`-entry instruction window (128 in the
//! baseline): the core may run ahead of an outstanding miss by at most
//! `window_size` instructions before the full window stalls it. This is
//! exactly the latency-tolerance model the paper's arguments rely on:
//!
//! * a *latency-sensitive* thread misses rarely, so each miss finds an
//!   empty window and the stall time is roughly the full memory latency —
//!   every cycle of memory latency is a lost compute cycle;
//! * a *bandwidth-sensitive* thread misses constantly, keeps several
//!   misses outstanding (bank-level parallelism), and its progress is
//!   bounded by memory throughput rather than latency.
//!
//! [`Core`] is event-driven and lazily evaluated: it only recomputes
//! progress when polled, and reports as its next event the cycle at which
//! it will inject its next miss burst (or that it is blocked until a
//! completion arrives). The simulation driver in `tcm-sim` owns the event
//! queue.
//!
//! # Example
//!
//! ```
//! use tcm_cpu::{Core, CoreStatus};
//! use tcm_types::{RequestId, ThreadId};
//!
//! let mut core = Core::new(ThreadId::new(0), 3, 128, 32);
//! core.schedule_burst(300, 1); // one miss, 300 instructions from now
//! // 300 instructions at 3 IPC take 100 cycles:
//! assert_eq!(core.poll(0), CoreStatus::WillBurst { at: 100 });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

use std::collections::VecDeque;
use tcm_types::{Cycle, RequestId, ThreadId};

/// What a core is doing, as reported by [`Core::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// The core reaches its next miss burst at cycle `at` (≥ the polled
    /// cycle) provided no earlier window/MSHR block intervenes — and
    /// `poll` guarantees none does. When `at` equals the polled cycle the
    /// burst is due now and the driver must call [`Core::issue_burst`].
    WillBurst {
        /// Cycle at which the burst instruction is reached.
        at: Cycle,
    },
    /// The core cannot reach its next burst: its window (or MSHR pool) is
    /// exhausted behind an outstanding miss. No timed event — progress
    /// resumes when a completion arrives (re-poll then).
    Blocked,
    /// No miss burst is scheduled; the core executes freely. (Compute-only
    /// threads stay in this state forever.)
    ComputeOnly,
}

/// One simulated core running one thread.
///
/// Lazy/event-driven: internal progress is only materialized on
/// [`Core::poll`], which must be called with non-decreasing cycles.
#[derive(Debug, Clone)]
pub struct Core {
    thread: ThreadId,
    issue_width: u64,
    window: u64,
    mshrs: usize,
    /// Instructions executed as of `anchor_cycle`.
    anchor_instr: u64,
    anchor_cycle: Cycle,
    /// Outstanding misses: `(request id, instruction index at issue)`.
    outstanding: Vec<(RequestId, u64)>,
    /// Outstanding misses grouped by issuing burst, oldest first:
    /// `(instruction index, live miss count)`. Bursts issue at strictly
    /// increasing instruction indices (`schedule_burst` requires a
    /// positive gap), so this deque is always sorted by instruction index
    /// and the window limit is the front entry alone — O(1) instead of a
    /// scan over the whole MSHR pool on every poll.
    bursts: VecDeque<(u64, usize)>,
    /// Next burst: `(absolute instruction index, number of accesses)`.
    next_burst: Option<(u64, usize)>,
    /// Instruction index of the most recently issued burst.
    last_burst_instr: u64,
    misses_issued: u64,
    misses_completed: u64,
}

impl Core {
    /// Creates a core for `thread` with the given issue width, window
    /// size and MSHR count.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width`, `window_size` or `mshrs` is zero.
    pub fn new(thread: ThreadId, issue_width: usize, window_size: usize, mshrs: usize) -> Self {
        assert!(issue_width > 0, "issue width must be non-zero");
        assert!(window_size > 0, "window must be non-zero");
        assert!(mshrs > 0, "mshr count must be non-zero");
        Self {
            thread,
            issue_width: issue_width as u64,
            window: window_size as u64,
            mshrs,
            anchor_instr: 0,
            anchor_cycle: 0,
            outstanding: Vec::new(),
            bursts: VecDeque::new(),
            next_burst: None,
            last_burst_instr: 0,
            misses_issued: 0,
            misses_completed: 0,
        }
    }

    /// The thread this core runs.
    #[inline]
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Instructions executed as of the last poll.
    #[inline]
    pub fn retired(&self) -> u64 {
        self.anchor_instr
    }

    /// Misses injected into the memory system so far.
    #[inline]
    pub fn misses_issued(&self) -> u64 {
        self.misses_issued
    }

    /// Misses that have completed so far.
    #[inline]
    pub fn misses_completed(&self) -> u64 {
        self.misses_completed
    }

    /// Number of currently outstanding misses.
    #[inline]
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Schedules the next miss burst: `size` concurrent misses, `gap`
    /// instructions after the previously issued burst (or after
    /// instruction 0 for the first burst).
    ///
    /// # Panics
    ///
    /// Panics if a burst is already scheduled, if `gap` is zero, or if
    /// `size` is zero or exceeds the MSHR count (such a burst could never
    /// issue).
    pub fn schedule_burst(&mut self, gap: u64, size: usize) {
        assert!(self.next_burst.is_none(), "burst already scheduled");
        assert!(gap > 0, "burst gap must be positive");
        assert!(size > 0, "burst must contain at least one access");
        assert!(
            size <= self.mshrs,
            "burst larger than MSHR pool can never issue"
        );
        self.next_burst = Some((self.last_burst_instr + gap, size));
    }

    /// First instruction index that cannot execute because of the window:
    /// `min(outstanding issue index) + window`, or `u64::MAX` when no
    /// miss is outstanding. The oldest live burst holds the minimum, so
    /// only the deque front is consulted (drained fronts are popped
    /// eagerly in [`Core::complete`]).
    fn window_limit(&self) -> u64 {
        self.bursts
            .front()
            .map_or(u64::MAX, |&(instr, _)| instr.saturating_add(self.window))
    }

    /// Advances execution to `now` and reports the core's status.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than a previous poll (time must be
    /// non-decreasing).
    pub fn poll(&mut self, now: Cycle) -> CoreStatus {
        assert!(now >= self.anchor_cycle, "core polled backwards in time");
        let window_limit = self.window_limit();
        let burst_at = self.next_burst.map(|(at, _)| at).unwrap_or(u64::MAX);
        let target = window_limit.min(burst_at);

        // Materialize progress up to `now`, capped at the target.
        let elapsed = now - self.anchor_cycle;
        let possible = self
            .anchor_instr
            .saturating_add(elapsed.saturating_mul(self.issue_width));
        self.anchor_instr = possible.min(target);
        self.anchor_cycle = now;

        let Some((at, size)) = self.next_burst else {
            return CoreStatus::ComputeOnly;
        };

        if self.anchor_instr >= at {
            // At the burst instruction: can the misses actually enter the
            // machine? The burst instruction must fit in the window and
            // the MSHR pool must have room.
            let window_ok = at < window_limit || self.outstanding.is_empty();
            let mshr_ok = self.outstanding.len() + size <= self.mshrs;
            if window_ok && mshr_ok {
                CoreStatus::WillBurst { at: now }
            } else {
                CoreStatus::Blocked
            }
        } else if window_limit > self.anchor_instr && window_limit >= at {
            // Nothing blocks before the burst instruction.
            let remaining = at - self.anchor_instr;
            let cycles = remaining.div_ceil(self.issue_width);
            CoreStatus::WillBurst { at: now + cycles }
        } else {
            // The window will fill (or already has) before the burst.
            CoreStatus::Blocked
        }
    }

    /// Injects the scheduled burst at the current cycle, registering one
    /// outstanding miss per id in `ids`.
    ///
    /// Must only be called when [`Core::poll`] returned
    /// `WillBurst { at: now }` for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if no burst is scheduled, if `ids.len()` differs from the
    /// scheduled burst size, if the core has not reached the burst
    /// instruction, or if the MSHR pool would overflow.
    pub fn issue_burst(&mut self, ids: &[RequestId]) {
        let (at, size) = self.next_burst.expect("no burst scheduled");
        assert_eq!(ids.len(), size, "id count must match burst size");
        assert!(
            self.anchor_instr >= at,
            "burst issued before the core reached it"
        );
        assert!(
            self.outstanding.len() + size <= self.mshrs,
            "burst issued past MSHR capacity"
        );
        for &id in ids {
            self.outstanding.push((id, at));
        }
        // `at > last_burst_instr` (positive gap), so the deque stays
        // sorted by pushing at the back.
        self.bursts.push_back((at, size));
        self.misses_issued += size as u64;
        self.last_burst_instr = at;
        self.next_burst = None;
    }

    /// Records completion of the miss with request id `id`.
    ///
    /// The caller should re-poll the core afterwards: a completion can
    /// unblock the window or MSHR pool and move the next burst time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not outstanding.
    pub fn complete(&mut self, id: RequestId) {
        let idx = self
            .outstanding
            .iter()
            .position(|&(rid, _)| rid == id)
            .expect("completion for unknown request");
        let (_, instr) = self.outstanding.swap_remove(idx);
        let burst = self
            .bursts
            .iter()
            .position(|&(at, _)| at == instr)
            .expect("outstanding miss without a live burst entry");
        self.bursts[burst].1 -= 1;
        // Drained middle entries are harmless (the front is always the
        // minimum), but a drained front must go so `window_limit` sees
        // the next live burst.
        while self.bursts.front().is_some_and(|&(_, count)| count == 0) {
            self.bursts.pop_front();
        }
        self.misses_completed += 1;
    }

    /// Whether this core currently has a burst pending injection.
    pub fn has_pending_burst(&self) -> bool {
        self.next_burst.is_some()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn rid(n: u64) -> RequestId {
        RequestId::new(n)
    }

    fn core() -> Core {
        Core::new(ThreadId::new(0), 3, 128, 32)
    }

    #[test]
    fn compute_only_core_runs_at_issue_width() {
        let mut c = core();
        assert_eq!(c.poll(0), CoreStatus::ComputeOnly);
        c.poll(100);
        assert_eq!(c.retired(), 300);
        c.poll(1000);
        assert_eq!(c.retired(), 3000);
    }

    #[test]
    fn burst_time_is_gap_over_issue_width() {
        let mut c = core();
        c.schedule_burst(299, 2);
        // ceil(299/3) = 100.
        assert_eq!(c.poll(0), CoreStatus::WillBurst { at: 100 });
        assert_eq!(c.poll(100), CoreStatus::WillBurst { at: 100 });
        c.issue_burst(&[rid(0), rid(1)]);
        assert_eq!(c.retired(), 299);
        assert_eq!(c.outstanding(), 2);
    }

    #[test]
    fn core_runs_ahead_until_window_fills_then_blocks() {
        let mut c = Core::new(ThreadId::new(0), 1, 8, 4);
        c.schedule_burst(1, 1);
        assert_eq!(c.poll(0), CoreStatus::WillBurst { at: 1 });
        c.poll(1);
        c.issue_burst(&[rid(0)]);
        // Next burst far away: the window (8) fills first.
        c.schedule_burst(100, 1);
        assert_eq!(c.poll(1), CoreStatus::Blocked);
        c.poll(50);
        // Executed up to miss instr (1) + window (8) = 9 instructions.
        assert_eq!(c.retired(), 9);
        // Completion unblocks and re-times the burst: burst is at
        // instruction 101, 92 instructions past the current 9.
        c.complete(rid(0));
        assert_eq!(c.poll(50), CoreStatus::WillBurst { at: 50 + 92 });
    }

    #[test]
    fn mshr_exhaustion_blocks_burst() {
        let mut c = Core::new(ThreadId::new(0), 1, 1024, 2);
        c.schedule_burst(1, 2);
        c.poll(1);
        c.issue_burst(&[rid(0), rid(1)]);
        c.schedule_burst(1, 1);
        // Window is huge, but both MSHRs are taken.
        assert_eq!(c.poll(2), CoreStatus::Blocked);
        c.complete(rid(1));
        assert_eq!(c.poll(2), CoreStatus::WillBurst { at: 2 });
    }

    #[test]
    fn latency_sensitive_thread_stalls_full_latency() {
        // Window 4, one miss, the thread stalls from (miss instr + 4)
        // until completion.
        let mut c = Core::new(ThreadId::new(0), 1, 4, 4);
        c.schedule_burst(10, 1);
        assert_eq!(c.poll(0), CoreStatus::WillBurst { at: 10 });
        c.poll(10);
        c.issue_burst(&[rid(7)]);
        c.schedule_burst(100, 1);
        c.poll(200); // memory takes 190 cycles, say
        assert_eq!(c.retired(), 14, "ran ahead only window-many instructions");
        c.complete(rid(7));
        let status = c.poll(200);
        // The next burst is at instruction 110; 96 instructions remain.
        assert_eq!(status, CoreStatus::WillBurst { at: 200 + 96 });
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn polling_backwards_panics() {
        let mut c = core();
        c.poll(10);
        c.poll(5);
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    fn completing_unknown_request_panics() {
        let mut c = core();
        c.complete(rid(3));
    }

    #[test]
    #[should_panic(expected = "already scheduled")]
    fn double_scheduling_panics() {
        let mut c = core();
        c.schedule_burst(10, 1);
        c.schedule_burst(10, 1);
    }

    #[test]
    fn issue_requires_reaching_burst_instruction() {
        let mut c = core();
        c.schedule_burst(300, 1);
        c.poll(0);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.issue_burst(&[rid(0)])));
        assert!(result.is_err(), "issuing early must panic");
    }

    #[test]
    fn miss_counters_track_lifecycle() {
        let mut c = core();
        c.schedule_burst(3, 2);
        c.poll(1);
        c.issue_burst(&[rid(0), rid(1)]);
        assert_eq!(c.misses_issued(), 2);
        assert!(!c.has_pending_burst());
        c.complete(rid(0));
        assert_eq!(c.outstanding(), 1);
        assert_eq!(c.misses_completed(), 1);
    }

    #[test]
    fn blocked_core_does_not_pass_window_even_with_long_poll_gaps() {
        let mut c = Core::new(ThreadId::new(0), 3, 16, 8);
        c.schedule_burst(2, 1);
        c.poll(1);
        c.issue_burst(&[rid(0)]);
        c.schedule_burst(1000, 1);
        for t in [10u64, 100, 10_000] {
            c.poll(t);
            assert_eq!(c.retired(), 2 + 16);
        }
    }
}
