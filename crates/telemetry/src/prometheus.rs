//! Prometheus text-exposition rendering for a [`MetricsRegistry`].
//!
//! The registry stores flat label-qualified names (`name{k=v,...}`, see
//! [`labeled`](crate::labeled)); this module parses those back into a
//! base name plus label pairs and renders the standard text exposition
//! format (version 0.0.4):
//!
//! * one `# TYPE` line per metric family, families grouped by base name
//!   and emitted in deterministic (sorted) order — counters first, then
//!   gauges, then histograms;
//! * label values escaped per the exposition rules (`\\`, `\"`, `\n`);
//! * histograms expanded into cumulative `_bucket{le="..."}` series, a
//!   final `le="+Inf"` bucket, `_sum`, and `_count` (the `_sum` of a
//!   histogram rebuilt from pre-bucketed counts is zero — the exact
//!   observations are unknown; see [`Histogram::sum`]).
//!
//! Time series are *not* exposed: they are per-cycle simulator traces
//! that belong to the JSONL/Perfetto exporters, not to a scrape.

use std::collections::BTreeMap;

use crate::metrics::{Histogram, MetricsRegistry};

/// Renders the registry in Prometheus text exposition format. Output is
/// deterministic: byte-identical registries render byte-identically.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();

    let counters = group(registry.counters().iter().map(|(k, v)| (k.as_str(), *v)));
    for (family, rows) in &counters {
        push_type(&mut out, family, "counter");
        for (labels, value) in rows {
            push_sample(&mut out, family, "", labels, &[], &value.to_string());
        }
    }

    let gauges = group(registry.gauges().iter().map(|(k, v)| (k.as_str(), *v)));
    for (family, rows) in &gauges {
        push_type(&mut out, family, "gauge");
        for (labels, value) in rows {
            push_sample(&mut out, family, "", labels, &[], &format_f64(*value));
        }
    }

    let histograms = group(registry.histograms().iter().map(|(k, v)| (k.as_str(), v)));
    for (family, rows) in &histograms {
        push_type(&mut out, family, "histogram");
        for (labels, hist) in rows {
            push_histogram(&mut out, family, labels, hist);
        }
    }

    out
}

/// One metric family's samples: `(label pairs, value)` in registry
/// (sorted-name) order.
type Rows<T> = Vec<(Vec<(String, String)>, T)>;

/// Buckets flat `name{k=v,...}` keys into families keyed by sanitized
/// base name, preserving the registry's sorted order within a family.
fn group<'a, T>(entries: impl Iterator<Item = (&'a str, T)>) -> BTreeMap<String, Rows<T>> {
    let mut families: BTreeMap<String, Rows<T>> = BTreeMap::new();
    for (key, value) in entries {
        let (base, labels) = parse_key(key);
        families.entry(base).or_default().push((labels, value));
    }
    families
}

/// Splits a registry key into its sanitized base name and label pairs.
fn parse_key(key: &str) -> (String, Vec<(String, String)>) {
    let (base, rest) = match key.find('{') {
        Some(idx) => (&key[..idx], key[idx + 1..].strip_suffix('}').unwrap_or(&key[idx + 1..])),
        None => (key, ""),
    };
    let mut labels = Vec::new();
    for pair in rest.split(',').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => labels.push((sanitize(k), v.to_string())),
            None => labels.push((sanitize(pair), String::new())),
        }
    }
    (sanitize(base), labels)
}

/// Maps a name onto the exposition-legal alphabet `[a-zA-Z0-9_:]`,
/// replacing anything else with `_` (and prefixing `_` when the name
/// would otherwise start with a digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { c } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way the exposition format expects (`Display`
/// covers finite values; specials get their spec spellings).
fn format_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() }
    } else {
        format!("{value}")
    }
}

fn push_type(out: &mut String, family: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(family);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Appends one sample line: `family[suffix]{labels,extra} value`.
fn push_sample(
    out: &mut String,
    family: &str,
    suffix: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(family);
    out.push_str(suffix);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Expands one histogram into cumulative buckets + `_sum` + `_count`.
fn push_histogram(out: &mut String, family: &str, labels: &[(String, String)], hist: &Histogram) {
    let mut cumulative = 0u64;
    for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
        cumulative += count;
        let le = bound.to_string();
        push_sample(out, family, "_bucket", labels, &[("le", &le)], &cumulative.to_string());
    }
    let total = hist.total();
    push_sample(out, family, "_bucket", labels, &[("le", "+Inf")], &total.to_string());
    push_sample(out, family, "_sum", labels, &[], &hist.sum().to_string());
    push_sample(out, family, "_count", labels, &[], &total.to_string());
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::metrics::labeled;

    #[test]
    fn golden_exposition_round_trip() {
        let mut m = MetricsRegistry::new();
        m.add("requests_total", 3);
        m.add(&labeled("requests_total", &[("state", "done")]), 2);
        m.add(&labeled("requests_total", &[("state", "failed")]), 1);
        m.set_gauge("queue_depth", 4.0);
        m.set_gauge(&labeled("share", &[("cluster", "lat")]), 0.25);
        let mut h = Histogram::with_bounds(vec![1, 10]);
        h.observe(0);
        h.observe(5);
        h.observe(7);
        h.observe(100);
        m.merge_histogram("latency_ms", h);

        let text = render(&m);
        let expected = "\
# TYPE requests_total counter
requests_total 3
requests_total{state=\"done\"} 2
requests_total{state=\"failed\"} 1
# TYPE queue_depth gauge
queue_depth 4
# TYPE share gauge
share{cluster=\"lat\"} 0.25
# TYPE latency_ms histogram
latency_ms_bucket{le=\"1\"} 1
latency_ms_bucket{le=\"10\"} 3
latency_ms_bucket{le=\"+Inf\"} 4
latency_ms_sum 112
latency_ms_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut m = MetricsRegistry::new();
        m.add(&labeled("jobs", &[("path", "a\\b\"c\nd")]), 1);
        let text = render(&m);
        assert_eq!(text, "# TYPE jobs counter\njobs{path=\"a\\\\b\\\"c\\nd\"} 1\n");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let mut m = MetricsRegistry::new();
        let mut h = Histogram::log2(4);
        for v in [0u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        m.merge_histogram(&labeled("depth", &[("mc", "0")]), h);
        let text = render(&m);
        let expected = "\
# TYPE depth histogram
depth_bucket{mc=\"0\",le=\"0\"} 1
depth_bucket{mc=\"0\",le=\"1\"} 2
depth_bucket{mc=\"0\",le=\"3\"} 4
depth_bucket{mc=\"0\",le=\"+Inf\"} 5
depth_sum{mc=\"0\"} 106
depth_count{mc=\"0\"} 5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn ordering_is_deterministic_and_families_group() {
        let mut m = MetricsRegistry::new();
        // Insert in scrambled order; BTreeMap + family grouping must
        // still render sorted, with the bare name ahead of labeled rows
        // even when an unrelated name would sort between them as a raw
        // string ("zz2" < "zz{" byte-wise).
        m.add(&labeled("zz", &[("k", "1")]), 1);
        m.add("zz2", 5);
        m.add("zz", 2);
        m.add("aa", 9);
        let a = render(&m);
        let expected = "\
# TYPE aa counter
aa 9
# TYPE zz counter
zz 2
zz{k=\"1\"} 1
# TYPE zz2 counter
zz2 5
";
        assert_eq!(a, expected);
        assert_eq!(a, render(&m.clone()), "render is a pure function of the registry");
    }

    #[test]
    fn names_are_sanitized_and_series_are_skipped() {
        let mut m = MetricsRegistry::new();
        m.add("bad-name.total", 1);
        m.push_series("bw_share", 100, 0.5);
        let text = render(&m);
        assert_eq!(text, "# TYPE bad_name_total counter\nbad_name_total 1\n");
    }

    #[test]
    fn gauge_specials_use_spec_spellings() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("g", f64::INFINITY);
        assert!(render(&m).contains("g +Inf\n"));
        m.set_gauge("g", f64::NEG_INFINITY);
        assert!(render(&m).contains("g -Inf\n"));
    }
}
