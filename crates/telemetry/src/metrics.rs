//! A small metrics registry: counters, gauges, fixed-bucket histograms
//! and time series, keyed by flat label-qualified names.
//!
//! Names follow the Prometheus-style `name{key=value,...}` convention
//! (see [`labeled`]); the registry itself treats them as opaque strings,
//! stored in `BTreeMap`s so iteration order — and therefore every
//! export — is deterministic.

use std::collections::BTreeMap;

/// Formats a label-qualified metric name: `name{k=v,k2=v2}` (or just
/// `name` when `labels` is empty). Keys and values are used verbatim;
/// keep them free of `{`, `}`, `,` and `=`.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]` (and greater than the
/// previous bound); the final slot counts overflow past the last bound,
/// so `counts.len() == bounds.len() + 1`. Alongside the buckets the
/// histogram tracks the running sum of observed values (for
/// Prometheus-style `_sum` exposition); histograms reconstructed from
/// pre-bucketed counts have an unknown sum, reported as zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
}

impl Histogram {
    /// A histogram with explicit ascending upper bounds.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = vec![0; bounds.len() + 1];
        Self { bounds, counts, sum: 0 }
    }

    /// A power-of-two histogram matching log2 bucketing: with `slots`
    /// total slots, bucket 0 holds value 0, bucket `k` (1-based) holds
    /// values in `[2^(k-1), 2^k - 1]`, and the final slot overflows.
    pub fn log2(slots: usize) -> Self {
        assert!(slots >= 2, "need at least one bound plus overflow");
        // Bounds [0, 1, 3, 7, ...]: slot k's bound is 2^k - 1.
        let bounds = (0..slots - 1).map(|i| (1u64 << i) - 1).collect();
        Self::with_bounds(bounds)
    }

    /// Reconstructs a log2 histogram from pre-bucketed counts (bucket =
    /// bit-length of the value, overflow in the last slot) — the layout
    /// `tcm-dram`'s always-on queue-depth counters use.
    pub fn from_log2_counts(counts: &[u64]) -> Self {
        let mut h = Self::log2(counts.len().max(2));
        let last = h.counts.len() - 1;
        for (slot, &c) in counts.iter().enumerate() {
            h.counts[slot.min(last)] += c;
        }
        h
    }

    /// Rebuilds a histogram from exported parts. Returns `None` when the
    /// shapes disagree. The sum of observations is unknown and reported
    /// as zero.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>) -> Option<Self> {
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        Some(Self { bounds, counts, sum: 0 })
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Upper bounds, ascending (exclusive of the overflow slot).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final slot is overflow.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Running sum of observed values (zero for histograms rebuilt from
    /// pre-bucketed counts, whose exact observations are unknown).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "histogram shapes must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// Counters, gauges, histograms and `(cycle, value)` series under flat
/// string names. Deterministic iteration (sorted by name).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.entry_counter(name) += delta;
    }

    /// Sets a counter to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        *self.entry_counter(name) = value;
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into a histogram, creating it with
    /// 12-slot log2 bounds on first use.
    pub fn observe(&mut self, name: &str, value: u64) {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_string(), Histogram::log2(12));
        }
        self.histograms
            .get_mut(name)
            .expect("just inserted")
            .observe(value);
    }

    /// Installs (or merges into an existing, identically-shaped) whole
    /// histogram under `name`.
    pub fn merge_histogram(&mut self, name: &str, hist: Histogram) {
        match self.histograms.get_mut(name) {
            Some(existing) => existing.merge(&hist),
            None => {
                self.histograms.insert(name.to_string(), hist);
            }
        }
    }

    /// Appends one `(cycle, value)` point to a series.
    pub fn push_series(&mut self, name: &str, at: u64, value: f64) {
        self.series.entry(name.to_string()).or_default().push((at, value));
    }

    /// A counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A series' points, if present.
    pub fn series(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// All series, sorted by name.
    pub fn all_series(&self) -> &BTreeMap<String, Vec<(u64, f64)>> {
        &self.series
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// A compact, wire-friendly digest of the registry: every counter
    /// verbatim plus every gauge as its IEEE-754 bit pattern, both in
    /// name order. The shape the `tcm-serve` daemon streams to
    /// subscribed clients as `TelemetrySummary` events — integers only,
    /// so the digest survives any JSON round trip bit-identically.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauge_bits: self
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_bits()))
                .collect(),
        }
    }
}

/// Wire-friendly registry digest (see [`MetricsRegistry::summary`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSummary {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, f64::to_bits(value))` gauge pairs, sorted by name.
    pub gauge_bits: Vec<(String, u64)>,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn labels_format_prometheus_style() {
        assert_eq!(labeled("row_hits", &[]), "row_hits");
        assert_eq!(
            labeled("row_hits", &[("channel", "0"), ("bank", "3")]),
            "row_hits{channel=0,bank=3}"
        );
    }

    #[test]
    fn log2_histogram_buckets_by_bit_length() {
        let mut h = Histogram::log2(12);
        assert_eq!(h.bounds(), &[0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023]);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 5000] {
            h.observe(v);
        }
        // value 0 -> slot 0; 1 -> 1; 2,3 -> 2; 4..7 -> 3; 8 -> 4;
        // 1023 -> 10; 1024+ -> overflow slot 11.
        assert_eq!(h.counts(), &[1, 1, 2, 2, 1, 0, 0, 0, 0, 0, 1, 2]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn from_log2_counts_matches_observe() {
        let mut by_observe = Histogram::log2(12);
        let mut raw = [0u64; 12];
        for depth in [0u64, 1, 5, 64, 2000] {
            by_observe.observe(depth);
            let slot = (64 - depth.leading_zeros()).min(11) as usize;
            raw[slot] += 1;
        }
        let rebuilt = Histogram::from_log2_counts(&raw);
        assert_eq!(rebuilt.bounds(), by_observe.bounds());
        assert_eq!(rebuilt.counts(), by_observe.counts());
        // The exact observations are gone after pre-bucketing; only
        // `observe` can track the running sum.
        assert_eq!(rebuilt.sum(), 0);
        assert_eq!(by_observe.sum(), 2070);
    }

    #[test]
    fn parts_round_trip_and_reject_shape_mismatch() {
        let mut h = Histogram::with_bounds(vec![10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        let rebuilt =
            Histogram::from_parts(h.bounds().to_vec(), h.counts().to_vec()).unwrap();
        assert_eq!(rebuilt.bounds(), h.bounds());
        assert_eq!(rebuilt.counts(), h.counts());
        assert_eq!(rebuilt.sum(), 0, "parts carry no sum");
        assert_eq!(h.sum(), 5055);
        assert!(Histogram::from_parts(vec![1, 2], vec![0]).is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::log2(4);
        let mut b = Histogram::log2(4);
        a.observe(1);
        b.observe(1);
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.counts(), &[0, 2, 0, 1]);
    }

    #[test]
    fn registry_records_all_four_kinds() {
        let mut m = MetricsRegistry::new();
        m.add("serviced", 3);
        m.add("serviced", 4);
        m.set_counter("spilled", 9);
        m.set_gauge("row_hit_rate", 0.75);
        m.observe("queue_depth", 6);
        m.push_series("bw_share", 1_000_000, 0.5);
        m.push_series("bw_share", 2_000_000, 0.25);
        assert_eq!(m.counter("serviced"), Some(7));
        assert_eq!(m.counter("spilled"), Some(9));
        assert_eq!(m.gauge("row_hit_rate"), Some(0.75));
        assert_eq!(m.histogram("queue_depth").unwrap().total(), 1);
        assert_eq!(
            m.series("bw_share").unwrap(),
            &[(1_000_000, 0.5), (2_000_000, 0.25)]
        );
        assert!(!m.is_empty());
        assert!(MetricsRegistry::new().is_empty());
    }
}
