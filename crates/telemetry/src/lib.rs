//! Structured tracing and metrics for the TCM simulator.
//!
//! Three pieces:
//!
//! * A **tracer**: a ring-buffered log of typed [`TraceEvent`]s —
//!   quantum boundaries, cluster assignments with niceness ranks,
//!   shuffle applications, row hits/misses/conflicts, bank
//!   activates/precharges, degradation fallbacks and chaos injections —
//!   with JSONL and Chrome-trace exporters (see [`export`] helpers
//!   re-exported at the crate root).
//! * A **metrics registry** ([`MetricsRegistry`]): counters, gauges,
//!   fixed-bucket histograms and per-quantum series under
//!   label-qualified names.
//! * The [`Telemetry`] handle that the simulator threads through its
//!   layers. A *disabled* handle (the default) is a null pointer: every
//!   hook is an inlined `if None` test, the event-construction closure
//!   is never called, and results are bit-identical with telemetry on
//!   or off — tracing is observation-only by construction.
//!
//! # Zero overhead when disabled
//!
//! Hooks take `impl FnOnce() -> TraceEvent`, so argument formatting and
//! allocation happen only when a sink is attached. For A/B overhead
//! measurement the `off` cargo feature removes the hook bodies
//! entirely ([`TELEMETRY_IMPL`] reports which build this is); the
//! repo's bench harness asserts the default (hooks-in, disabled)
//! build's throughput stays within the documented bound of the
//! compiled-out build.
//!
//! # Example
//!
//! ```
//! use tcm_telemetry::{Telemetry, TelemetryConfig, TraceEvent};
//!
//! let telemetry = Telemetry::new(&TelemetryConfig::default());
//! telemetry.emit(|| TraceEvent::QuantumBoundary {
//!     cycle: 1_000_000,
//!     index: 0,
//!     degraded: false,
//! });
//! telemetry.with_metrics(|m| m.add("quanta", 1));
//! if let Some(snapshot) = telemetry.snapshot() {
//!     assert_eq!(snapshot.events.len(), 1);
//!     assert_eq!(snapshot.metrics.counter("quanta"), Some(1));
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod event;
mod export;
mod metrics;
pub mod prometheus;

pub use event::{
    ClusterKind, DegradationAnomaly, MonitorCounter, QuarantineReason, RowOutcome, ShuffleAlgo,
    TraceEvent,
};
pub use export::{
    chrome_counter, chrome_event, chrome_process_name, event_to_jsonl, events_to_jsonl,
    json_number, parse_event, parse_jsonl,
};
pub use metrics::{labeled, Histogram, MetricsRegistry, MetricsSummary};

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Which telemetry implementation this build carries: `"hooks"` (the
/// default — hooks compiled in, enabled at runtime per run) or `"off"`
/// (the `off` cargo feature: hooks compiled out, for overhead A/B).
pub const TELEMETRY_IMPL: &str = if cfg!(feature = "off") { "off" } else { "hooks" };

/// Sizing knobs for an enabled [`Telemetry`] sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Ring-buffer capacity of the tracer, in events. When full, the
    /// oldest event is dropped (and counted) per new event.
    pub trace_capacity: usize,
    /// Cycle stride between periodic samples (queue depth, bus
    /// utilization) taken by the simulator's event loop.
    pub sample_interval: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            trace_capacity: 65_536,
            sample_interval: 100_000,
        }
    }
}

/// Everything an enabled telemetry sink captured: the (possibly
/// truncated) event log and the metrics registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Traced events, oldest first. At most `trace_capacity` entries;
    /// when the ring wrapped, these are the **newest** events.
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring buffer was full.
    pub dropped: u64,
    /// The metrics registry's final state.
    pub metrics: MetricsRegistry,
}

#[derive(Debug)]
struct TraceBuffer {
    #[cfg_attr(feature = "off", allow(dead_code))]
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    // Only the hooks build records; `off` still links the buffer so
    // snapshots keep their shape.
    #[cfg_attr(feature = "off", allow(dead_code))]
    fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[derive(Debug)]
struct Shared {
    config: TelemetryConfig,
    tracer: Mutex<TraceBuffer>,
    metrics: Mutex<MetricsRegistry>,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Telemetry is observation-only; a panic mid-record at worst leaves
    // a partially-updated registry, which is still safe to read.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cheap, cloneable telemetry handle.
///
/// Disabled (the default) it is a null pointer and every hook is a
/// no-op; enabled, clones share one tracer + registry, so the handle
/// can be fanned out to every channel and the scheduler while the
/// run's owner later takes one [`Telemetry::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

impl Telemetry {
    /// The disabled handle: all hooks no-ops, [`Telemetry::snapshot`]
    /// returns `None`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled sink with the given sizing. Under the `off` cargo
    /// feature this returns a *disabled* handle — the hook bodies do
    /// not exist in that build.
    #[cfg(not(feature = "off"))]
    pub fn new(config: &TelemetryConfig) -> Self {
        Self {
            inner: Some(Arc::new(Shared {
                tracer: Mutex::new(TraceBuffer {
                    capacity: config.trace_capacity,
                    events: VecDeque::with_capacity(config.trace_capacity.min(4096)),
                    dropped: 0,
                }),
                metrics: Mutex::new(MetricsRegistry::new()),
                config: config.clone(),
            })),
        }
    }

    /// An enabled sink with the given sizing. Under the `off` cargo
    /// feature this returns a *disabled* handle — the hook bodies do
    /// not exist in that build.
    #[cfg(feature = "off")]
    pub fn new(_config: &TelemetryConfig) -> Self {
        Self::disabled()
    }

    /// Whether a sink is attached (always `false` under `off`).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The configured sampling stride, when enabled.
    pub fn sample_interval(&self) -> Option<u64> {
        self.inner.as_ref().map(|s| s.config.sample_interval)
    }

    /// Records one trace event. The closure runs only when a sink is
    /// attached, so a disabled handle pays one pointer test.
    #[inline]
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        #[cfg(not(feature = "off"))]
        if let Some(shared) = &self.inner {
            lock(&shared.tracer).push(event());
        }
        #[cfg(feature = "off")]
        let _ = event;
    }

    /// Runs `f` against the shared metrics registry. The closure runs
    /// only when a sink is attached.
    #[inline]
    pub fn with_metrics(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        #[cfg(not(feature = "off"))]
        if let Some(shared) = &self.inner {
            f(&mut lock(&shared.metrics));
        }
        #[cfg(feature = "off")]
        let _ = f;
    }

    /// Clones out everything captured so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let shared = self.inner.as_ref()?;
        let tracer = lock(&shared.tracer);
        let metrics = lock(&shared.metrics);
        Some(TelemetrySnapshot {
            events: tracer.events.iter().cloned().collect(),
            dropped: tracer.dropped,
            metrics: metrics.clone(),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_runs_closures() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.sample_interval(), None);
        t.emit(|| unreachable!("emit closure must not run when disabled"));
        t.with_metrics(|_| unreachable!("metrics closure must not run when disabled"));
        assert!(t.snapshot().is_none());
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::new(&TelemetryConfig::default());
        let clone = t.clone();
        clone.emit(|| TraceEvent::BankPrecharge { cycle: 5, channel: 0, bank: 1 });
        clone.with_metrics(|m| m.add("x", 2));
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.metrics.counter("x"), Some(2));
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn ring_buffer_keeps_newest_and_counts_drops() {
        let t = Telemetry::new(&TelemetryConfig {
            trace_capacity: 3,
            ..TelemetryConfig::default()
        });
        for cycle in 0..10 {
            t.emit(|| TraceEvent::BankPrecharge { cycle, channel: 0, bank: 0 });
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.dropped, 7);
        assert_eq!(
            snap.events.iter().map(TraceEvent::cycle).collect::<Vec<_>>(),
            vec![7, 8, 9],
            "the ring keeps the newest events"
        );
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn zero_capacity_drops_everything() {
        let t = Telemetry::new(&TelemetryConfig {
            trace_capacity: 0,
            ..TelemetryConfig::default()
        });
        t.emit(|| TraceEvent::BankPrecharge { cycle: 1, channel: 0, bank: 0 });
        let snap = t.snapshot().unwrap();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 1);
    }

    #[cfg(feature = "off")]
    #[test]
    fn off_feature_compiles_hooks_out() {
        assert_eq!(TELEMETRY_IMPL, "off");
        let t = Telemetry::new(&TelemetryConfig::default());
        assert!(!t.is_enabled(), "off builds cannot enable telemetry");
        t.emit(|| unreachable!());
        assert!(t.snapshot().is_none());
    }
}
