//! The typed trace-event vocabulary.
//!
//! Every observable state transition the simulator can report is one
//! [`TraceEvent`] variant. Events are plain data: emitting one never
//! influences the simulation (telemetry is observation-only by
//! construction — there is no way back from an event to the scheduler).

use std::fmt;
use tcm_chaos::FaultKind;
use tcm_types::Cycle;

/// Which cluster a thread was assigned to at a quantum boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// Latency-sensitive (low MPKI): prioritized over everything.
    Latency,
    /// Bandwidth-sensitive: shuffled to spread the interference.
    Bandwidth,
}

impl ClusterKind {
    /// Stable lowercase name used in exports and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            ClusterKind::Latency => "latency",
            ClusterKind::Bandwidth => "bandwidth",
        }
    }

    /// Parses the output of [`ClusterKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "latency" => Some(ClusterKind::Latency),
            "bandwidth" => Some(ClusterKind::Bandwidth),
            _ => None,
        }
    }
}

/// Which shuffling algorithm a quantum ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleAlgo {
    /// Niceness-driven insertion shuffle.
    Insertion,
    /// Uniform random permutations.
    Random,
    /// Plain round-robin rotation.
    RoundRobin,
    /// Weight-proportional random permutations (paper §3.6).
    WeightedRandom,
    /// Ablation: fixed ascending-niceness ranking, never advanced.
    Static,
}

impl ShuffleAlgo {
    /// Every algorithm, for parse tables.
    pub const ALL: [ShuffleAlgo; 5] = [
        ShuffleAlgo::Insertion,
        ShuffleAlgo::Random,
        ShuffleAlgo::RoundRobin,
        ShuffleAlgo::WeightedRandom,
        ShuffleAlgo::Static,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ShuffleAlgo::Insertion => "insertion",
            ShuffleAlgo::Random => "random",
            ShuffleAlgo::RoundRobin => "round-robin",
            ShuffleAlgo::WeightedRandom => "weighted-random",
            ShuffleAlgo::Static => "static",
        }
    }

    /// Parses the output of [`ShuffleAlgo::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.name() == name)
    }
}

/// Row-buffer state a serviced request encountered, as trace vocabulary
/// (mirrors `tcm_types::RowState` without depending on scheduler code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank was precharged; an activate was needed.
    Closed,
    /// A different row was open; precharge + activate were needed.
    Conflict,
}

impl RowOutcome {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            RowOutcome::Hit => "hit",
            RowOutcome::Closed => "closed",
            RowOutcome::Conflict => "conflict",
        }
    }

    /// Parses the output of [`RowOutcome::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hit" => Some(RowOutcome::Hit),
            "closed" => Some(RowOutcome::Closed),
            "conflict" => Some(RowOutcome::Conflict),
            _ => None,
        }
    }
}

/// Which monitor counter tripped TCM's plausibility guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorCounter {
    /// Misses per kilo-instruction.
    Mpki,
    /// Row-buffer locality (fraction in `[0, 1]`).
    Rbl,
    /// Bank-level parallelism (banks in `[0, total_banks]`).
    Blp,
}

impl MonitorCounter {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            MonitorCounter::Mpki => "mpki",
            MonitorCounter::Rbl => "rbl",
            MonitorCounter::Blp => "blp",
        }
    }

    /// Parses the output of [`MonitorCounter::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "mpki" => Some(MonitorCounter::Mpki),
            "rbl" => Some(MonitorCounter::Rbl),
            "blp" => Some(MonitorCounter::Blp),
            _ => None,
        }
    }
}

/// Why the TCM meta-controller quarantined one controller's monitor
/// samples instead of degrading the whole system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// A controller that used to supply monitor samples at quantum
    /// boundaries suddenly reported none.
    StaleSample,
    /// A controller reported physically impossible aggregates (e.g.
    /// more shadow row hits than accesses).
    ImplausibleAggregate,
}

impl QuarantineReason {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            QuarantineReason::StaleSample => "stale-sample",
            QuarantineReason::ImplausibleAggregate => "implausible-aggregate",
        }
    }

    /// Parses the output of [`QuarantineReason::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "stale-sample" => Some(QuarantineReason::StaleSample),
            "implausible-aggregate" => Some(QuarantineReason::ImplausibleAggregate),
            _ => None,
        }
    }
}

/// One trip of a policy's self-protection machinery at a quantum
/// boundary.
///
/// [`ImplausibleCounter`](DegradationAnomaly::ImplausibleCounter) is
/// the whole-system guard: a monitor counter fell outside what the
/// hardware can physically produce, so the policy degrades to a
/// fallback ordering for the quantum. The two controller variants are
/// the meta-controller's *per-controller* guard on multi-controller
/// topologies: one controller's samples are quarantined (that shard
/// falls back to local FR-FCFS) while the healthy majority keeps TCM
/// clustering, and the controller is re-admitted after enough clean
/// quanta.
///
/// The `Display` form of `ImplausibleCounter` reproduces the
/// historical free-form anomaly string exactly, so `anomalies()`-style
/// shims stay byte-compatible.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationAnomaly {
    /// A monitor counter was implausible; the whole policy degraded
    /// for this quantum.
    ImplausibleCounter {
        /// Cycle of the quantum boundary that detected the anomaly.
        cycle: Cycle,
        /// Thread whose counter was implausible.
        thread: usize,
        /// The offending counter.
        counter: MonitorCounter,
        /// The implausible value observed.
        value: f64,
        /// Upper bound of the legal range (1.0 for RBL, total banks
        /// for BLP; unused for MPKI, whose only bound is `>= 0`).
        upper: f64,
    },
    /// The meta-controller quarantined one controller's samples.
    ControllerQuarantined {
        /// Cycle of the quantum boundary that detected the anomaly.
        cycle: Cycle,
        /// Index of the quarantined controller.
        controller: usize,
        /// What tripped the guard.
        reason: QuarantineReason,
    },
    /// A quarantined controller supplied enough consecutive clean
    /// samples and was re-admitted to the cluster aggregation.
    ControllerReadmitted {
        /// Cycle of the quantum boundary that re-admitted it.
        cycle: Cycle,
        /// Index of the re-admitted controller.
        controller: usize,
        /// Consecutive clean quanta it took to earn re-admission.
        clean_quanta: u64,
    },
}

impl DegradationAnomaly {
    /// Cycle of the quantum boundary the anomaly was detected at.
    pub fn cycle(&self) -> Cycle {
        match self {
            DegradationAnomaly::ImplausibleCounter { cycle, .. }
            | DegradationAnomaly::ControllerQuarantined { cycle, .. }
            | DegradationAnomaly::ControllerReadmitted { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for DegradationAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationAnomaly::ImplausibleCounter {
                cycle,
                thread: t,
                counter,
                value: v,
                upper,
            } => {
                write!(f, "cycle {cycle}: implausible monitor data (")?;
                match counter {
                    MonitorCounter::Mpki => write!(f, "thread {t} MPKI {v} (must be >= 0)")?,
                    MonitorCounter::Rbl => write!(f, "thread {t} RBL {v} (must be in [0, 1])")?,
                    MonitorCounter::Blp => {
                        write!(f, "thread {t} BLP {v} (must be in [0, {upper}])")?;
                    }
                }
                write!(f, "); falling back to FR-FCFS for this quantum")
            }
            DegradationAnomaly::ControllerQuarantined {
                cycle,
                controller,
                reason,
            } => write!(
                f,
                "cycle {cycle}: controller mc{controller} quarantined ({}); healthy \
                 controllers keep TCM clustering, mc{controller} falls back to local \
                 FR-FCFS",
                reason.name()
            ),
            DegradationAnomaly::ControllerReadmitted {
                cycle,
                controller,
                clean_quanta,
            } => write!(
                f,
                "cycle {cycle}: controller mc{controller} re-admitted after \
                 {clean_quanta} clean quanta"
            ),
        }
    }
}

/// One structured trace event. See the module docs of `tcm-telemetry`
/// for the taxonomy; every variant carries the cycle it happened at.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A TCM quantum boundary ran (monitors harvested, clusters rebuilt
    /// — or, when `degraded`, the plausibility guard rejected the data).
    QuantumBoundary {
        /// Boundary cycle.
        cycle: Cycle,
        /// Zero-based quantum index.
        index: u64,
        /// Whether this quantum fell back to FR-FCFS ordering.
        degraded: bool,
    },
    /// One thread's cluster assignment at a quantum boundary, with the
    /// monitor inputs that drove it and the resulting priority rank.
    ClusterAssignment {
        /// Boundary cycle.
        cycle: Cycle,
        /// The thread.
        thread: usize,
        /// Cluster it landed in.
        cluster: ClusterKind,
        /// Priority rank after the boundary (higher = scheduled first);
        /// for the bandwidth cluster this is the niceness-shuffled rank.
        rank: usize,
        /// Weight-scaled MPKI input to clustering.
        mpki: f64,
        /// Row-buffer locality input.
        rbl: f64,
        /// Bank-level parallelism input.
        blp: f64,
    },
    /// A shuffle interval advanced the bandwidth cluster's permutation.
    ShuffleApplied {
        /// Shuffle cycle.
        cycle: Cycle,
        /// The algorithm in effect this quantum.
        algo: ShuffleAlgo,
    },
    /// A request was issued to its bank.
    RequestServiced {
        /// Issue cycle.
        cycle: Cycle,
        /// Requesting thread.
        thread: usize,
        /// Channel index.
        channel: usize,
        /// Bank index within the channel.
        bank: usize,
        /// Row-buffer state the request encountered.
        outcome: RowOutcome,
    },
    /// A bank opened a row (implied activate).
    BankActivate {
        /// Activate cycle.
        cycle: Cycle,
        /// Channel index.
        channel: usize,
        /// Bank index within the channel.
        bank: usize,
        /// The row opened.
        row: usize,
    },
    /// A bank closed its open row (implied precharge, before a
    /// conflicting activate).
    BankPrecharge {
        /// Precharge cycle.
        cycle: Cycle,
        /// Channel index.
        channel: usize,
        /// Bank index within the channel.
        bank: usize,
    },
    /// A policy's plausibility guard degraded it for one quantum.
    DegradationFallback(DegradationAnomaly),
    /// A `tcm-chaos` fault fired at its execution site.
    ChaosInjected {
        /// Injection cycle.
        cycle: Cycle,
        /// The fault class that fired.
        kind: FaultKind,
    },
}

impl TraceEvent {
    /// The cycle the event happened at.
    pub fn cycle(&self) -> Cycle {
        match self {
            TraceEvent::QuantumBoundary { cycle, .. }
            | TraceEvent::ClusterAssignment { cycle, .. }
            | TraceEvent::ShuffleApplied { cycle, .. }
            | TraceEvent::RequestServiced { cycle, .. }
            | TraceEvent::BankActivate { cycle, .. }
            | TraceEvent::BankPrecharge { cycle, .. }
            | TraceEvent::ChaosInjected { cycle, .. } => *cycle,
            TraceEvent::DegradationFallback(a) => a.cycle(),
        }
    }

    /// Stable snake_case kind tag (the `"event"` field of the JSONL
    /// export and the event name in the Chrome-trace export).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::QuantumBoundary { .. } => "quantum_boundary",
            TraceEvent::ClusterAssignment { .. } => "cluster_assignment",
            TraceEvent::ShuffleApplied { .. } => "shuffle_applied",
            TraceEvent::RequestServiced { .. } => "request_serviced",
            TraceEvent::BankActivate { .. } => "bank_activate",
            TraceEvent::BankPrecharge { .. } => "bank_precharge",
            TraceEvent::DegradationFallback(_) => "degradation_fallback",
            TraceEvent::ChaosInjected { .. } => "chaos_injected",
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn anomaly_display_matches_the_historical_string() {
        let a = DegradationAnomaly::ImplausibleCounter {
            cycle: 1_000_000,
            thread: 1,
            counter: MonitorCounter::Rbl,
            value: -3.5,
            upper: 1.0,
        };
        assert_eq!(
            a.to_string(),
            "cycle 1000000: implausible monitor data (thread 1 RBL -3.5 \
             (must be in [0, 1])); falling back to FR-FCFS for this quantum"
        );
        let b = DegradationAnomaly::ImplausibleCounter {
            cycle: 7,
            thread: 0,
            counter: MonitorCounter::Blp,
            value: 99.0,
            upper: 16.0,
        };
        assert!(b.to_string().contains("BLP 99 (must be in [0, 16])"));
        let c = DegradationAnomaly::ImplausibleCounter {
            cycle: 7,
            thread: 2,
            counter: MonitorCounter::Mpki,
            value: f64::NAN,
            upper: f64::INFINITY,
        };
        assert!(c.to_string().contains("MPKI NaN (must be >= 0)"));
    }

    #[test]
    fn quarantine_anomalies_name_the_controller() {
        let q = DegradationAnomaly::ControllerQuarantined {
            cycle: 2_000_000,
            controller: 3,
            reason: QuarantineReason::StaleSample,
        };
        let msg = q.to_string();
        assert!(msg.contains("cycle 2000000"), "{msg}");
        assert!(msg.contains("mc3 quarantined (stale-sample)"), "{msg}");
        assert!(msg.contains("falls back to local FR-FCFS"), "{msg}");
        assert_eq!(q.cycle(), 2_000_000);
        let r = DegradationAnomaly::ControllerReadmitted {
            cycle: 5_000_000,
            controller: 3,
            clean_quanta: 2,
        };
        let msg = r.to_string();
        assert!(msg.contains("mc3 re-admitted after 2 clean quanta"), "{msg}");
        assert_eq!(r.cycle(), 5_000_000);
    }

    #[test]
    fn names_round_trip() {
        for algo in ShuffleAlgo::ALL {
            assert_eq!(ShuffleAlgo::from_name(algo.name()), Some(algo));
        }
        for outcome in [RowOutcome::Hit, RowOutcome::Closed, RowOutcome::Conflict] {
            assert_eq!(RowOutcome::from_name(outcome.name()), Some(outcome));
        }
        for counter in [MonitorCounter::Mpki, MonitorCounter::Rbl, MonitorCounter::Blp] {
            assert_eq!(MonitorCounter::from_name(counter.name()), Some(counter));
        }
        for reason in [
            QuarantineReason::StaleSample,
            QuarantineReason::ImplausibleAggregate,
        ] {
            assert_eq!(QuarantineReason::from_name(reason.name()), Some(reason));
        }
        for cluster in [ClusterKind::Latency, ClusterKind::Bandwidth] {
            assert_eq!(ClusterKind::from_name(cluster.name()), Some(cluster));
        }
        assert_eq!(ShuffleAlgo::from_name("nope"), None);
    }

    #[test]
    fn cycle_accessor_covers_every_variant() {
        let events = [
            TraceEvent::QuantumBoundary { cycle: 1, index: 0, degraded: false },
            TraceEvent::ShuffleApplied { cycle: 2, algo: ShuffleAlgo::Random },
            TraceEvent::BankPrecharge { cycle: 3, channel: 0, bank: 0 },
            TraceEvent::DegradationFallback(DegradationAnomaly::ImplausibleCounter {
                cycle: 4,
                thread: 0,
                counter: MonitorCounter::Mpki,
                value: -1.0,
                upper: f64::INFINITY,
            }),
            TraceEvent::DegradationFallback(DegradationAnomaly::ControllerQuarantined {
                cycle: 5,
                controller: 1,
                reason: QuarantineReason::ImplausibleAggregate,
            }),
            TraceEvent::DegradationFallback(DegradationAnomaly::ControllerReadmitted {
                cycle: 6,
                controller: 1,
                clean_quanta: 3,
            }),
        ];
        assert_eq!(
            events.iter().map(TraceEvent::cycle).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
    }
}
