//! Trace exporters: JSONL (lossless, machine-first) and Chrome trace
//! format (loadable by Perfetto / `chrome://tracing`).
//!
//! The JSONL schema is one flat object per line with a snake_case
//! `"event"` tag. Floats travel as `*_bits` fields holding the decimal
//! rendering of their IEEE-754 bit pattern, so a parsed event is
//! bit-identical to the emitted one (NaN and infinity included) — the
//! same convention as the sweep checkpoint format. Lines whose
//! `"event"` tag is unknown are skipped, so writers may interleave
//! their own marker lines (e.g. `tcm-run`'s `cell_begin` separators).
//!
//! The Chrome export maps events to instant events (`"ph":"i"`) with
//! the simulated cycle as the microsecond timestamp, and offers
//! counter (`"C"`) and process-metadata (`"M"`) helpers so callers can
//! assemble a full multi-process trace (one process per sweep cell).

use crate::event::{
    ClusterKind, DegradationAnomaly, MonitorCounter, QuarantineReason, RowOutcome, ShuffleAlgo,
    TraceEvent,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tcm_chaos::FaultKind;

// ---------------------------------------------------------------------
// JSON writing helpers (the subset the parser below accepts: flat
// objects of strings, unsigned integers and booleans).
// ---------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn field_str(out: &mut String, key: &str, value: &str) {
    push_json_str(out, key);
    out.push(':');
    push_json_str(out, value);
    out.push(',');
}

fn field_u64(out: &mut String, key: &str, value: u64) {
    push_json_str(out, key);
    out.push(':');
    let _ = write!(out, "{value}");
    out.push(',');
}

fn field_bool(out: &mut String, key: &str, value: bool) {
    push_json_str(out, key);
    out.push(':');
    out.push_str(if value { "true" } else { "false" });
    out.push(',');
}

fn field_f64_bits(out: &mut String, key: &str, value: f64) {
    field_u64(out, key, value.to_bits());
}

fn finish_object(mut out: String) -> String {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
    out
}

/// Renders a finite `f64` as a JSON number; non-finite values (invalid
/// JSON) become `null`. For human-facing exports only — lossless
/// round-tripping uses `*_bits` fields instead.
pub fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Serializes one event as a single JSONL line (no trailing newline).
pub fn event_to_jsonl(event: &TraceEvent) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "event", event.kind_name());
    match event {
        TraceEvent::QuantumBoundary { cycle, index, degraded } => {
            field_u64(&mut out, "cycle", *cycle);
            field_u64(&mut out, "index", *index);
            field_bool(&mut out, "degraded", *degraded);
        }
        TraceEvent::ClusterAssignment { cycle, thread, cluster, rank, mpki, rbl, blp } => {
            field_u64(&mut out, "cycle", *cycle);
            field_u64(&mut out, "thread", *thread as u64);
            field_str(&mut out, "cluster", cluster.name());
            field_u64(&mut out, "rank", *rank as u64);
            field_f64_bits(&mut out, "mpki_bits", *mpki);
            field_f64_bits(&mut out, "rbl_bits", *rbl);
            field_f64_bits(&mut out, "blp_bits", *blp);
        }
        TraceEvent::ShuffleApplied { cycle, algo } => {
            field_u64(&mut out, "cycle", *cycle);
            field_str(&mut out, "algo", algo.name());
        }
        TraceEvent::RequestServiced { cycle, thread, channel, bank, outcome } => {
            field_u64(&mut out, "cycle", *cycle);
            field_u64(&mut out, "thread", *thread as u64);
            field_u64(&mut out, "channel", *channel as u64);
            field_u64(&mut out, "bank", *bank as u64);
            field_str(&mut out, "row_state", outcome.name());
        }
        TraceEvent::BankActivate { cycle, channel, bank, row } => {
            field_u64(&mut out, "cycle", *cycle);
            field_u64(&mut out, "channel", *channel as u64);
            field_u64(&mut out, "bank", *bank as u64);
            field_u64(&mut out, "row", *row as u64);
        }
        TraceEvent::BankPrecharge { cycle, channel, bank } => {
            field_u64(&mut out, "cycle", *cycle);
            field_u64(&mut out, "channel", *channel as u64);
            field_u64(&mut out, "bank", *bank as u64);
        }
        TraceEvent::DegradationFallback(a) => match a {
            DegradationAnomaly::ImplausibleCounter { cycle, thread, counter, value, upper } => {
                field_u64(&mut out, "cycle", *cycle);
                field_u64(&mut out, "thread", *thread as u64);
                field_str(&mut out, "counter", counter.name());
                field_f64_bits(&mut out, "value_bits", *value);
                field_f64_bits(&mut out, "upper_bits", *upper);
            }
            DegradationAnomaly::ControllerQuarantined { cycle, controller, reason } => {
                field_u64(&mut out, "cycle", *cycle);
                field_u64(&mut out, "controller", *controller as u64);
                field_str(&mut out, "reason", reason.name());
            }
            DegradationAnomaly::ControllerReadmitted { cycle, controller, clean_quanta } => {
                field_u64(&mut out, "cycle", *cycle);
                field_u64(&mut out, "controller", *controller as u64);
                field_u64(&mut out, "clean_quanta", *clean_quanta);
            }
        },
        TraceEvent::ChaosInjected { cycle, kind } => {
            field_u64(&mut out, "cycle", *cycle);
            field_str(&mut out, "kind", kind.name());
        }
    }
    finish_object(out)
}

/// Serializes a batch of events, one JSONL line each, with a trailing
/// newline when non-empty.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_to_jsonl(e));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// JSONL parsing: a minimal flat-object reader for the subset above.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Raw {
    U64(u64),
    Str(String),
    Bool(bool),
}

impl Raw {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Raw::U64(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Raw::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Raw::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (string / unsigned-int / bool values
/// only) into a field map. `None` on anything malformed or nested.
fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Raw>> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while bytes.get(*pos).is_some_and(u8::is_ascii_whitespace) {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Option<String> {
        skip_ws(pos);
        if bytes.get(*pos) != Some(&b'"') {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'u' => {
                            let hex = bytes.get(*pos + 1..*pos + 5)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    };
    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return None;
    }
    pos += 1;
    let mut fields = BTreeMap::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
        skip_ws(&mut pos);
        return (pos == bytes.len()).then_some(fields);
    }
    loop {
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return None;
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = match bytes.get(pos)? {
            b'"' => Raw::Str(parse_string(&mut pos)?),
            b'0'..=b'9' => {
                let start = pos;
                while bytes.get(pos).is_some_and(u8::is_ascii_digit) {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).ok()?;
                Raw::U64(text.parse().ok()?)
            }
            b't' if bytes[pos..].starts_with(b"true") => {
                pos += 4;
                Raw::Bool(true)
            }
            b'f' if bytes[pos..].starts_with(b"false") => {
                pos += 5;
                Raw::Bool(false)
            }
            _ => return None,
        };
        fields.insert(key, value);
        skip_ws(&mut pos);
        match bytes.get(pos)? {
            b',' => pos += 1,
            b'}' => {
                pos += 1;
                skip_ws(&mut pos);
                return (pos == bytes.len()).then_some(fields);
            }
            _ => return None,
        }
    }
}

/// Parses one JSONL line back into a [`TraceEvent`]. Returns `None`
/// for malformed lines **and** for well-formed objects whose `"event"`
/// tag is not a known kind (forward compatibility: writers may add
/// marker lines).
pub fn parse_event(line: &str) -> Option<TraceEvent> {
    let fields = parse_flat_object(line)?;
    let u = |key: &str| fields.get(key).and_then(Raw::as_u64);
    let s = |key: &str| fields.get(key).and_then(Raw::as_str);
    let f = |key: &str| u(key).map(f64::from_bits);
    let kind = s("event")?;
    Some(match kind {
        "quantum_boundary" => TraceEvent::QuantumBoundary {
            cycle: u("cycle")?,
            index: u("index")?,
            degraded: fields.get("degraded").and_then(Raw::as_bool)?,
        },
        "cluster_assignment" => TraceEvent::ClusterAssignment {
            cycle: u("cycle")?,
            thread: u("thread")? as usize,
            cluster: ClusterKind::from_name(s("cluster")?)?,
            rank: u("rank")? as usize,
            mpki: f("mpki_bits")?,
            rbl: f("rbl_bits")?,
            blp: f("blp_bits")?,
        },
        "shuffle_applied" => TraceEvent::ShuffleApplied {
            cycle: u("cycle")?,
            algo: ShuffleAlgo::from_name(s("algo")?)?,
        },
        "request_serviced" => TraceEvent::RequestServiced {
            cycle: u("cycle")?,
            thread: u("thread")? as usize,
            channel: u("channel")? as usize,
            bank: u("bank")? as usize,
            outcome: RowOutcome::from_name(s("row_state")?)?,
        },
        "bank_activate" => TraceEvent::BankActivate {
            cycle: u("cycle")?,
            channel: u("channel")? as usize,
            bank: u("bank")? as usize,
            row: u("row")? as usize,
        },
        "bank_precharge" => TraceEvent::BankPrecharge {
            cycle: u("cycle")?,
            channel: u("channel")? as usize,
            bank: u("bank")? as usize,
        },
        // The anomaly variant is discriminated by field presence: the
        // historical implausible-counter shape carries "counter", the
        // quarantine shapes carry "reason" / "clean_quanta".
        "degradation_fallback" if fields.contains_key("counter") => {
            TraceEvent::DegradationFallback(DegradationAnomaly::ImplausibleCounter {
                cycle: u("cycle")?,
                thread: u("thread")? as usize,
                counter: MonitorCounter::from_name(s("counter")?)?,
                value: f("value_bits")?,
                upper: f("upper_bits")?,
            })
        }
        "degradation_fallback" if fields.contains_key("reason") => {
            TraceEvent::DegradationFallback(DegradationAnomaly::ControllerQuarantined {
                cycle: u("cycle")?,
                controller: u("controller")? as usize,
                reason: QuarantineReason::from_name(s("reason")?)?,
            })
        }
        "degradation_fallback" => TraceEvent::DegradationFallback(
            DegradationAnomaly::ControllerReadmitted {
                cycle: u("cycle")?,
                controller: u("controller")? as usize,
                clean_quanta: u("clean_quanta")?,
            },
        ),
        "chaos_injected" => {
            let kind_name = s("kind")?;
            TraceEvent::ChaosInjected {
                cycle: u("cycle")?,
                kind: FaultKind::ALL.into_iter().find(|k| k.name() == kind_name)?,
            }
        }
        _ => return None,
    })
}

/// Parses a JSONL document, keeping events in line order and skipping
/// blank, malformed and unknown-kind lines.
pub fn parse_jsonl(text: &str) -> Vec<TraceEvent> {
    text.lines().filter_map(parse_event).collect()
}

// ---------------------------------------------------------------------
// Chrome trace format.
// ---------------------------------------------------------------------

/// One Chrome-trace *instant* event object for `event`, attributed to
/// process `pid`. Per-thread events use the simulated thread id as the
/// trace `tid`; machine-level events land on tid 0. The simulated
/// cycle becomes the microsecond timestamp.
pub fn chrome_event(event: &TraceEvent, pid: u64) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "name", event.kind_name());
    field_str(&mut out, "ph", "i");
    field_str(&mut out, "s", "p");
    field_u64(&mut out, "ts", event.cycle());
    field_u64(&mut out, "pid", pid);
    let tid = match event {
        TraceEvent::ClusterAssignment { thread, .. }
        | TraceEvent::RequestServiced { thread, .. } => *thread as u64,
        TraceEvent::DegradationFallback(DegradationAnomaly::ImplausibleCounter {
            thread, ..
        }) => *thread as u64,
        _ => 0,
    };
    field_u64(&mut out, "tid", tid);
    push_json_str(&mut out, "args");
    out.push(':');
    out.push_str(&chrome_args(event));
    out.push(',');
    finish_object(out)
}

fn chrome_args(event: &TraceEvent) -> String {
    let mut out = String::from("{");
    match event {
        TraceEvent::QuantumBoundary { index, degraded, .. } => {
            field_u64(&mut out, "index", *index);
            field_bool(&mut out, "degraded", *degraded);
        }
        TraceEvent::ClusterAssignment { cluster, rank, mpki, rbl, blp, .. } => {
            field_str(&mut out, "cluster", cluster.name());
            field_u64(&mut out, "rank", *rank as u64);
            for (key, v) in [("mpki", mpki), ("rbl", rbl), ("blp", blp)] {
                push_json_str(&mut out, key);
                out.push(':');
                out.push_str(&json_number(*v));
                out.push(',');
            }
        }
        TraceEvent::ShuffleApplied { algo, .. } => {
            field_str(&mut out, "algo", algo.name());
        }
        TraceEvent::RequestServiced { channel, bank, outcome, .. } => {
            field_u64(&mut out, "channel", *channel as u64);
            field_u64(&mut out, "bank", *bank as u64);
            field_str(&mut out, "row_state", outcome.name());
        }
        TraceEvent::BankActivate { channel, bank, row, .. } => {
            field_u64(&mut out, "channel", *channel as u64);
            field_u64(&mut out, "bank", *bank as u64);
            field_u64(&mut out, "row", *row as u64);
        }
        TraceEvent::BankPrecharge { channel, bank, .. } => {
            field_u64(&mut out, "channel", *channel as u64);
            field_u64(&mut out, "bank", *bank as u64);
        }
        TraceEvent::DegradationFallback(a) => match a {
            DegradationAnomaly::ImplausibleCounter { counter, value, .. } => {
                field_str(&mut out, "counter", counter.name());
                push_json_str(&mut out, "value");
                out.push(':');
                out.push_str(&json_number(*value));
                out.push(',');
            }
            DegradationAnomaly::ControllerQuarantined { controller, reason, .. } => {
                field_u64(&mut out, "controller", *controller as u64);
                field_str(&mut out, "reason", reason.name());
            }
            DegradationAnomaly::ControllerReadmitted { controller, clean_quanta, .. } => {
                field_u64(&mut out, "controller", *controller as u64);
                field_u64(&mut out, "clean_quanta", *clean_quanta);
            }
        },
        TraceEvent::ChaosInjected { kind, .. } => {
            field_str(&mut out, "kind", kind.name());
        }
    }
    finish_object(out)
}

/// A Chrome-trace process-name metadata event (`"ph":"M"`), naming the
/// track group for process `pid` in the Perfetto UI.
pub fn chrome_process_name(pid: u64, name: &str) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "name", "process_name");
    field_str(&mut out, "ph", "M");
    field_u64(&mut out, "pid", pid);
    push_json_str(&mut out, "args");
    out.push_str(":{");
    push_json_str(&mut out, "name");
    out.push(':');
    push_json_str(&mut out, name);
    out.push_str("}}");
    out
}

/// A Chrome-trace counter event (`"ph":"C"`): one sampled point of a
/// named counter series on process `pid` at timestamp `ts` (cycles).
pub fn chrome_counter(pid: u64, series: &str, ts: u64, value: f64) -> String {
    let mut out = String::from("{");
    field_str(&mut out, "name", series);
    field_str(&mut out, "ph", "C");
    field_u64(&mut out, "ts", ts);
    field_u64(&mut out, "pid", pid);
    push_json_str(&mut out, "args");
    out.push_str(":{");
    push_json_str(&mut out, "value");
    out.push(':');
    out.push_str(&json_number(value));
    out.push('}');
    out.push(',');
    finish_object(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn every_variant() -> Vec<TraceEvent> {
        vec![
            TraceEvent::QuantumBoundary { cycle: 1_000_000, index: 0, degraded: false },
            TraceEvent::ClusterAssignment {
                cycle: 1_000_000,
                thread: 3,
                cluster: ClusterKind::Bandwidth,
                rank: 2,
                mpki: 37.5,
                rbl: 0.25,
                blp: f64::INFINITY,
            },
            TraceEvent::ShuffleApplied { cycle: 1_000_800, algo: ShuffleAlgo::Insertion },
            TraceEvent::RequestServiced {
                cycle: 1_001_000,
                thread: 1,
                channel: 2,
                bank: 3,
                outcome: RowOutcome::Conflict,
            },
            TraceEvent::BankActivate { cycle: 1_001_100, channel: 2, bank: 3, row: 42 },
            TraceEvent::BankPrecharge { cycle: 1_001_050, channel: 2, bank: 3 },
            TraceEvent::DegradationFallback(DegradationAnomaly::ImplausibleCounter {
                cycle: 2_000_000,
                thread: 0,
                counter: MonitorCounter::Mpki,
                value: f64::NAN,
                upper: f64::INFINITY,
            }),
            TraceEvent::DegradationFallback(DegradationAnomaly::ControllerQuarantined {
                cycle: 2_000_000,
                controller: 2,
                reason: QuarantineReason::StaleSample,
            }),
            TraceEvent::DegradationFallback(DegradationAnomaly::ControllerReadmitted {
                cycle: 4_000_000,
                controller: 2,
                clean_quanta: 2,
            }),
            TraceEvent::ChaosInjected { cycle: 3_000_000, kind: FaultKind::SpillFlood },
            TraceEvent::ChaosInjected { cycle: 3_000_000, kind: FaultKind::ControllerBlackout },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant_in_order() {
        let events = every_variant();
        let text = events_to_jsonl(&events);
        let parsed = parse_jsonl(&text);
        assert_eq!(parsed.len(), events.len());
        for (p, e) in parsed.iter().zip(&events) {
            // NaN makes PartialEq fail by design; compare via the
            // serialized form, which is bit-exact.
            assert_eq!(event_to_jsonl(p), event_to_jsonl(e));
        }
    }

    #[test]
    fn unknown_and_malformed_lines_are_skipped() {
        let text = "\
            {\"event\":\"cell_begin\",\"policy\":\"TCM\"}\n\
            {\"event\":\"quantum_boundary\",\"cycle\":5,\"index\":1,\"degraded\":true}\n\
            not json at all\n\
            {\"event\":\"quantum_boundary\",\"cycle\":\"wrong type\"}\n\
            \n";
        let parsed = parse_jsonl(text);
        assert_eq!(
            parsed,
            vec![TraceEvent::QuantumBoundary { cycle: 5, index: 1, degraded: true }]
        );
    }

    #[test]
    fn nested_objects_are_rejected_by_the_flat_parser() {
        assert!(parse_event("{\"event\":\"quantum_boundary\",\"x\":{}}").is_none());
        assert!(parse_event("{\"a\":1} trailing").is_none());
    }

    #[test]
    fn chrome_events_are_flat_json_with_instant_phase() {
        for e in every_variant() {
            let json = chrome_event(&e, 7);
            assert!(json.contains("\"ph\":\"i\""), "{json}");
            assert!(json.contains("\"pid\":7"), "{json}");
            assert!(json.contains(&format!("\"ts\":{}", e.cycle())), "{json}");
            // NaN must never leak into the JSON (it is not valid JSON).
            assert!(!json.contains("NaN"), "{json}");
        }
    }

    #[test]
    fn chrome_metadata_and_counter_shapes() {
        let meta = chrome_process_name(3, "TCM × A");
        assert_eq!(
            meta,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\
             \"args\":{\"name\":\"TCM × A\"}}"
        );
        let counter = chrome_counter(3, "queue_depth", 500, 12.0);
        assert!(counter.contains("\"ph\":\"C\""));
        assert!(counter.contains("\"value\":12"));
    }

    #[test]
    fn json_number_guards_non_finite() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }
}
