//! Property tests for the DRAM substrate: timing legality and queue
//! bookkeeping under arbitrary request streams.
#![allow(clippy::explicit_counter_loop, clippy::needless_range_loop)]

use proptest::prelude::*;
use tcm_dram::Channel;
use tcm_types::{
    BankId, ChannelId, DramTiming, MemAddress, Request, RequestId, Row, RowState, ThreadId,
};

/// A compact request descriptor the strategy can generate.
#[derive(Debug, Clone, Copy)]
struct ReqSpec {
    thread: usize,
    bank: usize,
    row: usize,
}

fn req_spec() -> impl Strategy<Value = ReqSpec> {
    (0usize..8, 0usize..4, 0usize..8).prop_map(|(thread, bank, row)| ReqSpec { thread, bank, row })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Servicing any stream of requests (always picking the oldest per
    /// bank) produces legal timing: service intervals on one bank never
    /// overlap, bus transfers never overlap, completions are causal, and
    /// per-thread service accounting matches the outcomes exactly.
    #[test]
    fn service_timing_is_legal(specs in proptest::collection::vec(req_spec(), 1..80)) {
        let timing = DramTiming::ddr2_800();
        let mut ch = Channel::with_threads(ChannelId::new(0), 4, 128, 8);
        let mut now = 0u64;
        let mut bank_free = [0u64; 4];
        let mut expected_service = [0u64; 8];
        let mut last_bus_end = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            let request = Request::new(
                RequestId::new(i as u64),
                ThreadId::new(spec.thread),
                MemAddress::new(ChannelId::new(0), BankId::new(spec.bank), Row::new(spec.row)),
                now,
            );
            ch.enqueue(request).expect("capacity is ample");
            // Issue immediately at the bank's earliest legal time.
            let start = now.max(bank_free[spec.bank]);
            let outcome = ch.issue_at(spec.bank, 0, start, &timing);
            prop_assert!(outcome.bank_start >= bank_free[spec.bank]);
            prop_assert!(outcome.bank_free >= outcome.bank_start);
            prop_assert!(outcome.completes_at > outcome.bank_start);
            // The data transfer (completes_at - overhead) is bus-ordered.
            let bus_end = outcome.completes_at - timing.fixed_overhead;
            prop_assert!(bus_end >= last_bus_end + timing.bus_burst
                || last_bus_end == 0,
                "bus transfers must serialize");
            last_bus_end = bus_end;
            bank_free[spec.bank] = outcome.bank_free;
            expected_service[spec.thread] += outcome.bank_busy();
            now += 1;
        }
        for t in 0..8 {
            prop_assert_eq!(ch.stats().thread_service(ThreadId::new(t)), expected_service[t]);
        }
        prop_assert_eq!(ch.stats().total_serviced(), specs.len() as u64);
    }

    /// Row-state classification matches an independently tracked model of
    /// the open row.
    #[test]
    fn row_states_follow_open_row_model(specs in proptest::collection::vec(req_spec(), 1..60)) {
        let timing = DramTiming::ddr2_800();
        let mut ch = Channel::with_threads(ChannelId::new(0), 4, 128, 8);
        let mut model_open: [Option<usize>; 4] = [None; 4];
        let mut bank_free = [0u64; 4];
        for (i, spec) in specs.iter().enumerate() {
            let request = Request::new(
                RequestId::new(i as u64),
                ThreadId::new(spec.thread),
                MemAddress::new(ChannelId::new(0), BankId::new(spec.bank), Row::new(spec.row)),
                0,
            );
            ch.enqueue(request).expect("capacity");
            let outcome = ch.issue_at(spec.bank, 0, bank_free[spec.bank], &timing);
            let expected = match model_open[spec.bank] {
                Some(open) if open == spec.row => RowState::Hit,
                Some(_) => RowState::Conflict,
                None => RowState::Closed,
            };
            prop_assert_eq!(outcome.row_state, expected);
            model_open[spec.bank] = Some(spec.row);
            bank_free[spec.bank] = outcome.bank_free;
        }
    }

    /// The protocol checker is pure observation and silent on legal
    /// streams: any random request stream, serviced oldest-first at each
    /// bank's earliest legal cycle, never trips an invariant, and the
    /// end-of-run conservation check accounts for every request.
    #[test]
    fn checker_is_silent_on_legal_streams(specs in proptest::collection::vec(req_spec(), 1..80)) {
        let timing = DramTiming::ddr2_800();
        let mut ch = Channel::with_threads(ChannelId::new(0), 4, 128, 8);
        ch.enable_verification();
        let mut bank_free = [0u64; 4];
        let mut now = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            let request = Request::new(
                RequestId::new(i as u64),
                ThreadId::new(spec.thread),
                MemAddress::new(ChannelId::new(0), BankId::new(spec.bank), Row::new(spec.row)),
                now,
            );
            ch.enqueue(request).expect("capacity is ample");
            let start = now.max(bank_free[spec.bank]);
            let outcome = ch.issue_at(spec.bank, 0, start, &timing);
            bank_free[spec.bank] = outcome.bank_free;
            prop_assert!(ch.violation().is_none(), "violation: {:?}", ch.violation());
            now += 1;
        }
        let end = bank_free.iter().copied().max().unwrap_or(0);
        prop_assert!(ch.finish_verification(end).is_ok());
        let checker = ch.checker().expect("verification is enabled");
        prop_assert_eq!(checker.admitted(), specs.len());
        prop_assert_eq!(checker.serviced(), specs.len());
    }

    /// Conservation also holds on partial drains: requests left in the
    /// queue at end of run are accounted for, not reported lost.
    #[test]
    fn checker_accounts_for_queued_requests(
        specs in proptest::collection::vec(req_spec(), 2..60),
        serve_pct in 0usize..101,
    ) {
        let timing = DramTiming::ddr2_800();
        let mut ch = Channel::with_threads(ChannelId::new(0), 4, 256, 8);
        ch.enable_verification();
        for (i, spec) in specs.iter().enumerate() {
            let request = Request::new(
                RequestId::new(i as u64),
                ThreadId::new(spec.thread),
                MemAddress::new(ChannelId::new(0), BankId::new(spec.bank), Row::new(spec.row)),
                i as u64,
            );
            ch.enqueue(request).expect("capacity is ample");
        }
        let to_serve = specs.len() * serve_pct / 100;
        let mut now = specs.len() as u64;
        let mut served = 0usize;
        // Strictly sequential service: one bank busy at a time, so every
        // issue is trivially legal.
        while served < to_serve {
            let Some(bank) = ch.schedulable_banks(now).next() else { break };
            let outcome = ch.issue_at(bank.index(), 0, now, &timing);
            now = outcome.bank_free;
            served += 1;
            prop_assert!(ch.violation().is_none(), "violation: {:?}", ch.violation());
        }
        prop_assert!(ch.finish_verification(now).is_ok());
        let checker = ch.checker().expect("verification is enabled");
        prop_assert_eq!(checker.admitted(), specs.len());
        prop_assert_eq!(checker.serviced(), served);
    }

    /// Queue take/pending bookkeeping: pending positions always index
    /// correctly regardless of interleaving.
    #[test]
    fn queue_positions_are_consistent(
        specs in proptest::collection::vec(req_spec(), 1..40),
        picks in proptest::collection::vec(0usize..8, 1..40),
    ) {
        let timing = DramTiming::ddr2_800();
        let mut ch = Channel::with_threads(ChannelId::new(0), 4, 256, 8);
        for (i, spec) in specs.iter().enumerate() {
            let request = Request::new(
                RequestId::new(i as u64),
                ThreadId::new(spec.thread),
                MemAddress::new(ChannelId::new(0), BankId::new(spec.bank), Row::new(spec.row)),
                i as u64,
            );
            ch.enqueue(request).expect("capacity");
        }
        let mut serviced = 0usize;
        let mut now = 0u64;
        for &p in &picks {
            // Find any bank with pending work that is ready.
            let Some(bank) = ch.schedulable_banks(now).next() else { break };
            let pending = ch.pending_for_bank(bank);
            prop_assert!(!pending.is_empty());
            let pos = p % pending.len();
            let chosen = pending[pos];
            let outcome = ch.issue_at(bank.index(), pos, now, &timing);
            prop_assert_eq!(outcome.request.id, chosen.id, "issue honors positions");
            serviced += 1;
            now = now.max(outcome.bank_free);
        }
        prop_assert_eq!(ch.stats().total_serviced(), serviced as u64);
    }
}
