//! Model-based equivalence test for the indexed request queue.
//!
//! The reference model is the pre-refactor representation: one flat
//! arrival-ordered `Vec<Request>` answering every query by scan. For
//! arbitrary interleavings of push / take_for_bank / remove the real
//! queue must agree with the model on every observable: per-bank pending
//! slices (content *and* order), take results by position, per-thread
//! counts, the bank-occupancy set, and the len/full/empty bookkeeping.
//!
//! This is what makes the indexed representation trustworthy: the lane
//! layout, the occupancy bitmask and the incremental thread counters are
//! each redundant encodings of the flat queue's state, and this test
//! pins them to it under random traffic. (Both `RequestQueue` builds —
//! default indexed and `flat-queue` — pass it, which is how the A/B
//! benchmark variants are known to be interchangeable.)

use proptest::prelude::*;
use tcm_dram::{BankSet, RequestQueue};
use tcm_types::{BankId, ChannelId, MemAddress, Request, RequestId, Row, ThreadId};

const NUM_BANKS: usize = 4;
const NUM_THREADS: usize = 6;
const CAPACITY: usize = 24;

/// The reference: a flat arrival-ordered vector, scanned per query.
#[derive(Debug, Default)]
struct FlatModel {
    requests: Vec<Request>,
}

impl FlatModel {
    fn push(&mut self, request: Request) -> bool {
        if self.requests.len() >= CAPACITY {
            return false;
        }
        self.requests.push(request);
        true
    }

    fn pending_for_bank(&self, bank: BankId) -> Vec<Request> {
        self.requests
            .iter()
            .filter(|r| r.addr.bank == bank)
            .copied()
            .collect()
    }

    fn take_for_bank(&mut self, bank: BankId, pos: usize) -> Option<Request> {
        let idx = self
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.addr.bank == bank)
            .map(|(i, _)| i)
            .nth(pos)?;
        Some(self.requests.remove(idx))
    }

    fn remove(&mut self, id: RequestId) -> Option<Request> {
        let idx = self.requests.iter().position(|r| r.id == id)?;
        Some(self.requests.remove(idx))
    }

    fn count_for_thread(&self, thread: ThreadId) -> usize {
        self.requests.iter().filter(|r| r.thread == thread).count()
    }

    fn banks_with_pending(&self) -> BankSet {
        let mut set = BankSet::empty();
        for r in &self.requests {
            set.insert(r.addr.bank);
        }
        set
    }
}

/// One random operation against both queue and model.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push a request for (thread, bank, row).
    Push { thread: usize, bank: usize, row: usize },
    /// Take the `pos % pending`-th request of `bank`.
    Take { bank: usize, pos: usize },
    /// Remove by id, selected as the `nth % len`-th buffered request.
    Remove { nth: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice via a selector (the vendored proptest stub has no
    // prop_oneof): 3 parts push, 2 parts take, 1 part remove.
    (0usize..6, 0..NUM_THREADS, 0..NUM_BANKS, 0usize..32).prop_map(
        |(select, thread, bank, arg)| match select {
            0..=2 => Op::Push { thread, bank, row: arg % 8 },
            3..=4 => Op::Take { bank, pos: arg },
            _ => Op::Remove { nth: arg },
        },
    )
}

/// Every observable of `queue` must match `model`.
fn assert_equivalent(queue: &mut RequestQueue, model: &FlatModel) -> Result<(), TestCaseError> {
    prop_assert_eq!(queue.len(), model.requests.len());
    prop_assert_eq!(queue.is_empty(), model.requests.is_empty());
    prop_assert_eq!(queue.is_full(), model.requests.len() >= CAPACITY);
    prop_assert_eq!(queue.banks_with_pending(), model.banks_with_pending());
    prop_assert_eq!(queue.iter().count(), model.requests.len());
    for b in 0..NUM_BANKS {
        let bank = BankId::new(b);
        prop_assert_eq!(
            queue.has_pending_for_bank(bank),
            !model.pending_for_bank(bank).is_empty()
        );
        let expected = model.pending_for_bank(bank);
        prop_assert_eq!(
            queue.pending_for_bank(bank),
            expected.as_slice(),
            "bank {} pending slice (content and arrival order)",
            b
        );
    }
    for t in 0..NUM_THREADS {
        let thread = ThreadId::new(t);
        prop_assert_eq!(
            queue.count_for_thread(thread),
            model.count_for_thread(thread),
            "thread {} occupancy counter",
            t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random push/take/remove interleavings leave the indexed queue
    /// observably identical to the flat reference model at every step.
    #[test]
    fn indexed_queue_matches_flat_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut queue = RequestQueue::new(CAPACITY, NUM_BANKS);
        let mut model = FlatModel::default();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Push { thread, bank, row } => {
                    let request = Request::new(
                        RequestId::new(next_id),
                        ThreadId::new(thread),
                        MemAddress::new(ChannelId::new(0), BankId::new(bank), Row::new(row)),
                        next_id,
                    );
                    next_id += 1;
                    let fits = model.push(request);
                    prop_assert_eq!(
                        queue.push(request).is_ok(),
                        fits,
                        "capacity behavior must agree"
                    );
                }
                Op::Take { bank, pos } => {
                    let bank = BankId::new(bank);
                    let pending = model.pending_for_bank(bank).len();
                    // In-range positions must yield the same request;
                    // out-of-range must be None on both sides.
                    let pos = if pending == 0 { pos } else { pos % (pending + 1) };
                    prop_assert_eq!(
                        queue.take_for_bank(bank, pos),
                        model.take_for_bank(bank, pos)
                    );
                }
                Op::Remove { nth } => {
                    // Pick an id that usually exists (any buffered request)
                    // and occasionally does not (already drained).
                    let id = RequestId::new(if model.requests.is_empty() {
                        nth as u64
                    } else {
                        model.requests[nth % model.requests.len()].id.raw()
                    });
                    prop_assert_eq!(queue.remove(id), model.remove(id));
                }
            }
            assert_equivalent(&mut queue, &model)?;
        }
    }
}
