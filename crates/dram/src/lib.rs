//! DRAM timing substrate: banks, per-channel data buses, request queues.
//!
//! This crate models the memory system the schedulers arbitrate over, at
//! *bank service* granularity:
//!
//! * each bank serves one request at a time (state lives in the
//!   struct-of-arrays [`BankArray`]); the service latency depends on the
//!   row-buffer state (hit / closed / conflict) exactly as in the
//!   paper's DDR2-800 baseline (200/300/400-cycle round trips),
//! * each channel has one shared [`DataBus`]; 32-byte transfers from the
//!   channel's banks serialize on it,
//! * each [`Channel`] owns a bounded [`RequestQueue`] (the controller's
//!   request buffer) and per-thread bank-busy-cycle accounting — the
//!   paper's definition of a thread's *memory bandwidth usage* and of
//!   ATLAS's *attained service*,
//! * [`ShadowRowBuffer`] tracks, per thread and bank, the row that would
//!   be open if the thread ran alone — the paper's mechanism for
//!   measuring *inherent* row-buffer locality (used by TCM's monitor and
//!   by STFM's interference estimation).
//!
//! The simulation driver (in `tcm-sim`) decides *when* to schedule and
//! *which* request to pick (via a `tcm-sched` policy); this crate answers
//! *what happens* when a chosen request is issued to its bank.
//!
//! # Example
//!
//! ```
//! use tcm_dram::Channel;
//! use tcm_types::{BankId, ChannelId, DramTiming, MemAddress, Request, RequestId, Row,
//!     RowState, ThreadId};
//!
//! let timing = DramTiming::ddr2_800();
//! let mut ch = Channel::new(ChannelId::new(0), 4, 128);
//! let req = Request::new(
//!     RequestId::new(0),
//!     ThreadId::new(0),
//!     MemAddress::new(ChannelId::new(0), BankId::new(1), Row::new(42)),
//!     0,
//! );
//! ch.enqueue(req)?;
//! let outcome = ch.issue(1, 0, &timing); // bank 1, first pending request
//! assert_eq!(outcome.row_state, RowState::Closed);
//! assert_eq!(outcome.completes_at, 300); // closed-row round trip
//! # Ok::<(), tcm_dram::QueueFullError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::unwrap_used)]

mod bank;
mod bus;
mod channel;
mod queue;
mod shadow;
mod stats;
mod verify;

pub use bank::{BankArray, BankService};
pub use bus::DataBus;
pub use channel::{Channel, ServiceOutcome};
pub use queue::{BankSet, BankSetIter, QueueFullError, RequestQueue, QUEUE_IMPL};
pub use shadow::ShadowRowBuffer;
pub use stats::{BankStats, ChannelStats};
pub use verify::ProtocolChecker;
