//! Per-channel shared data bus.

use tcm_types::Cycle;

/// The data bus shared by all banks of one channel.
///
/// Every serviced request occupies the bus for one burst
/// ([`DramTiming::bus_burst`](tcm_types::DramTiming::bus_burst) cycles);
/// transfers from different banks of the same channel serialize here,
/// which is what bounds a channel's peak bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataBus {
    free_at: Cycle,
}

impl DataBus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        Self { free_at: 0 }
    }

    /// First cycle at which the bus is free.
    #[inline]
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Reserves the bus for a `burst`-cycle transfer that can start no
    /// earlier than `earliest`. Returns `(start, end)` of the transfer and
    /// marks the bus busy until `end`.
    pub fn reserve(&mut self, earliest: Cycle, burst: u64) -> (Cycle, Cycle) {
        let start = earliest.max(self.free_at);
        let end = start + burst;
        self.free_at = end;
        (start, end)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transfers_serialize() {
        let mut bus = DataBus::new();
        let (s1, e1) = bus.reserve(0, 50);
        assert_eq!((s1, e1), (0, 50));
        // Second transfer ready at cycle 10 must wait for the bus.
        let (s2, e2) = bus.reserve(10, 50);
        assert_eq!((s2, e2), (50, 100));
        assert_eq!(bus.free_at(), 100);
    }

    #[test]
    fn idle_gaps_are_respected() {
        let mut bus = DataBus::new();
        bus.reserve(0, 50);
        let (s, e) = bus.reserve(200, 50);
        assert_eq!((s, e), (200, 250));
    }

    #[test]
    fn zero_burst_is_degenerate_but_safe() {
        let mut bus = DataBus::new();
        let (s, e) = bus.reserve(5, 0);
        assert_eq!(s, e);
    }
}
