//! Per-channel service accounting.
//!
//! The counters here are the raw material of the evaluated scheduling
//! policies: per-thread *bank busy cycles* are the paper's definition of
//! memory bandwidth usage (TCM's clustering input) and of attained
//! service (ATLAS's ranking input); row-hit counters feed reporting.

use tcm_types::{Cycle, RowState, ThreadId};

/// Counters for a single bank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Requests serviced.
    pub serviced: u64,
    /// Requests that were row-buffer hits.
    pub row_hits: u64,
    /// Requests that found the bank precharged.
    pub row_closed: u64,
    /// Requests that were row-buffer conflicts.
    pub row_conflicts: u64,
    /// Total cycles the bank spent busy.
    pub busy_cycles: u64,
}

impl BankStats {
    /// Records one serviced request.
    pub fn record(&mut self, state: RowState, busy: u64) {
        self.serviced += 1;
        match state {
            RowState::Hit => self.row_hits += 1,
            RowState::Closed => self.row_closed += 1,
            RowState::Conflict => self.row_conflicts += 1,
        }
        self.busy_cycles += busy;
    }

    /// Fraction of serviced requests that were row hits (0 when no
    /// requests were serviced).
    pub fn hit_rate(&self) -> f64 {
        if self.serviced == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.serviced as f64
        }
    }
}

/// Counters for one channel: per-bank stats plus per-thread service time.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    banks: Vec<BankStats>,
    /// Bank-busy cycles consumed by each thread, cumulative since reset.
    thread_service: Vec<u64>,
    /// Total data-bus busy cycles.
    pub bus_busy_cycles: u64,
    /// Cycle of the last serviced request (coverage indicator).
    pub last_service_at: Cycle,
    /// Deepest the request buffer ever got (benchmark/report metric).
    pub peak_queue_depth: usize,
    /// Log2-bucketed queue-depth distribution: slot = bit length of the
    /// observed depth (0, 1, 2–3, 4–7, …), clamped into the final slot
    /// (depths ≥ 1024). One admission = one observation. Always on —
    /// a single array increment per enqueue — and absorbed into the
    /// telemetry metrics registry at end of run when telemetry is
    /// enabled.
    depth_histogram: [u64; 12],
}

impl ChannelStats {
    /// Creates zeroed stats for `num_banks` banks and `num_threads`
    /// threads.
    pub fn new(num_banks: usize, num_threads: usize) -> Self {
        Self {
            banks: vec![BankStats::default(); num_banks],
            thread_service: vec![0; num_threads],
            bus_busy_cycles: 0,
            last_service_at: 0,
            peak_queue_depth: 0,
            depth_histogram: [0; 12],
        }
    }

    /// Folds a queue-depth observation into the peak and the depth
    /// distribution.
    #[inline]
    pub fn observe_queue_depth(&mut self, depth: usize) {
        if depth > self.peak_queue_depth {
            self.peak_queue_depth = depth;
        }
        let slot = (usize::BITS - depth.leading_zeros()).min(11) as usize;
        self.depth_histogram[slot] += 1;
    }

    /// The log2-bucketed queue-depth distribution (slot = bit length of
    /// the depth; final slot collects depths ≥ 1024).
    pub fn depth_histogram(&self) -> &[u64; 12] {
        &self.depth_histogram
    }

    /// Records a serviced request.
    pub fn record(
        &mut self,
        bank: usize,
        thread: ThreadId,
        state: RowState,
        busy: u64,
        bus: u64,
        at: Cycle,
    ) {
        self.banks[bank].record(state, busy);
        if let Some(ts) = self.thread_service.get_mut(thread.index()) {
            *ts += busy;
        }
        self.bus_busy_cycles += bus;
        self.last_service_at = at;
    }

    /// Per-bank statistics.
    pub fn banks(&self) -> &[BankStats] {
        &self.banks
    }

    /// Cumulative bank-busy cycles consumed by `thread` on this channel.
    pub fn thread_service(&self, thread: ThreadId) -> u64 {
        self.thread_service
            .get(thread.index())
            .copied()
            .unwrap_or(0)
    }

    /// Cumulative bank-busy cycles for all threads (indexed by thread).
    pub fn thread_service_all(&self) -> &[u64] {
        &self.thread_service
    }

    /// Total requests serviced on this channel.
    pub fn total_serviced(&self) -> u64 {
        self.banks.iter().map(|b| b.serviced).sum()
    }

    /// Total row hits across banks.
    pub fn total_row_hits(&self) -> u64 {
        self.banks.iter().map(|b| b.row_hits).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bank_stats_accumulate_by_row_state() {
        let mut s = BankStats::default();
        s.record(RowState::Hit, 125);
        s.record(RowState::Hit, 125);
        s.record(RowState::Conflict, 275);
        s.record(RowState::Closed, 200);
        assert_eq!(s.serviced, 4);
        assert_eq!(s.row_hits, 2);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.row_closed, 1);
        assert_eq!(s.busy_cycles, 125 + 125 + 275 + 200);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(BankStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn channel_stats_track_threads_and_banks() {
        let mut s = ChannelStats::new(4, 2);
        s.record(0, ThreadId::new(0), RowState::Hit, 125, 50, 100);
        s.record(1, ThreadId::new(1), RowState::Conflict, 275, 50, 400);
        s.record(0, ThreadId::new(0), RowState::Hit, 125, 50, 500);
        assert_eq!(s.thread_service(ThreadId::new(0)), 250);
        assert_eq!(s.thread_service(ThreadId::new(1)), 275);
        assert_eq!(s.total_serviced(), 3);
        assert_eq!(s.total_row_hits(), 2);
        assert_eq!(s.bus_busy_cycles, 150);
        assert_eq!(s.last_service_at, 500);
        assert_eq!(s.banks()[0].serviced, 2);
    }

    #[test]
    fn queue_depth_histogram_buckets_by_bit_length() {
        let mut s = ChannelStats::new(1, 1);
        for depth in [0usize, 1, 2, 3, 8, 1023, 5000] {
            s.observe_queue_depth(depth);
        }
        let h = s.depth_histogram();
        assert_eq!(h[0], 1, "depth 0");
        assert_eq!(h[1], 1, "depth 1");
        assert_eq!(h[2], 2, "depths 2 and 3");
        assert_eq!(h[4], 1, "depth 8");
        assert_eq!(h[10], 1, "depth 1023");
        assert_eq!(h[11], 1, "depth 5000 clamps into the overflow slot");
        assert_eq!(h.iter().sum::<u64>(), 7);
        assert_eq!(s.peak_queue_depth, 5000);
    }

    #[test]
    fn out_of_range_thread_is_ignored() {
        let mut s = ChannelStats::new(1, 1);
        s.record(0, ThreadId::new(5), RowState::Hit, 10, 10, 1);
        assert_eq!(s.thread_service(ThreadId::new(5)), 0);
    }
}
