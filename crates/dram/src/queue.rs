//! The controller's bounded request buffer.

use std::error::Error;
use std::fmt;
use tcm_types::{BankId, Request, RequestId, ThreadId};

/// Error returned when the controller's request buffer is full.
///
/// In the simulator the core model applies backpressure (MSHR and window
/// limits) long before a 128-entry buffer fills at realistic intensities,
/// but the bound is enforced for fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    capacity: usize,
}

impl QueueFullError {
    /// The buffer capacity that was exceeded.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request buffer full (capacity {})", self.capacity)
    }
}

impl Error for QueueFullError {}

/// A bounded buffer of requests waiting at one memory controller.
///
/// Requests stay in the buffer until a scheduling policy picks them for
/// service; lookups are by *position within a bank's pending set*, which
/// is how scheduling decisions are phrased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestQueue {
    requests: Vec<Request>,
    capacity: usize,
}

impl RequestQueue {
    /// Creates an empty buffer with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            requests: Vec::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Number of buffered requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Whether the buffer is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.requests.len() >= self.capacity
    }

    /// Buffer capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the buffer is at capacity.
    pub fn push(&mut self, request: Request) -> Result<(), QueueFullError> {
        if self.is_full() {
            return Err(QueueFullError {
                capacity: self.capacity,
            });
        }
        self.requests.push(request);
        Ok(())
    }

    /// Iterates over all buffered requests (arrival order).
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }

    /// Collects the requests pending for `bank`, in arrival order.
    ///
    /// The returned vector's positions are the indices expected by
    /// [`RequestQueue::take_for_bank`].
    pub fn pending_for_bank(&self, bank: BankId) -> Vec<Request> {
        self.requests
            .iter()
            .filter(|r| r.addr.bank == bank)
            .copied()
            .collect()
    }

    /// Whether any request is pending for `bank`.
    pub fn has_pending_for_bank(&self, bank: BankId) -> bool {
        self.requests.iter().any(|r| r.addr.bank == bank)
    }

    /// Removes and returns the `pos`-th pending request for `bank`
    /// (position as in [`RequestQueue::pending_for_bank`]).
    ///
    /// Returns `None` if fewer than `pos + 1` requests are pending for the
    /// bank.
    pub fn take_for_bank(&mut self, bank: BankId, pos: usize) -> Option<Request> {
        let mut seen = 0usize;
        let mut idx = None;
        for (i, r) in self.requests.iter().enumerate() {
            if r.addr.bank == bank {
                if seen == pos {
                    idx = Some(i);
                    break;
                }
                seen += 1;
            }
        }
        idx.map(|i| self.requests.remove(i))
    }

    /// Removes a request by id, returning it if present.
    pub fn remove(&mut self, id: RequestId) -> Option<Request> {
        let idx = self.requests.iter().position(|r| r.id == id)?;
        Some(self.requests.remove(idx))
    }

    /// Number of buffered requests belonging to `thread`.
    pub fn count_for_thread(&self, thread: ThreadId) -> usize {
        self.requests.iter().filter(|r| r.thread == thread).count()
    }

    /// Set of banks (per-channel ids) with at least one pending request,
    /// deduplicated, in ascending order.
    pub fn banks_with_pending(&self) -> Vec<BankId> {
        let mut banks: Vec<BankId> = self.requests.iter().map(|r| r.addr.bank).collect();
        banks.sort_unstable();
        banks.dedup();
        banks
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{ChannelId, MemAddress, Row};

    fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(0), BankId::new(bank), Row::new(row as usize)),
            id,
        )
    }

    #[test]
    fn push_respects_capacity() {
        let mut q = RequestQueue::new(2);
        q.push(req(0, 0, 0, 0)).unwrap();
        q.push(req(1, 0, 0, 0)).unwrap();
        let err = q.push(req(2, 0, 0, 0)).unwrap_err();
        assert_eq!(err.capacity(), 2);
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pending_for_bank_filters_and_preserves_order() {
        let mut q = RequestQueue::new(16);
        q.push(req(0, 0, 1, 10)).unwrap();
        q.push(req(1, 1, 0, 20)).unwrap();
        q.push(req(2, 2, 1, 30)).unwrap();
        let pending = q.pending_for_bank(BankId::new(1));
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].id, RequestId::new(0));
        assert_eq!(pending[1].id, RequestId::new(2));
        assert!(q.has_pending_for_bank(BankId::new(0)));
        assert!(!q.has_pending_for_bank(BankId::new(3)));
    }

    #[test]
    fn take_for_bank_removes_selected_position() {
        let mut q = RequestQueue::new(16);
        q.push(req(0, 0, 1, 10)).unwrap();
        q.push(req(1, 1, 0, 20)).unwrap();
        q.push(req(2, 2, 1, 30)).unwrap();
        let taken = q.take_for_bank(BankId::new(1), 1).unwrap();
        assert_eq!(taken.id, RequestId::new(2));
        assert_eq!(q.len(), 2);
        assert!(q.take_for_bank(BankId::new(1), 1).is_none());
        let taken = q.take_for_bank(BankId::new(1), 0).unwrap();
        assert_eq!(taken.id, RequestId::new(0));
    }

    #[test]
    fn remove_by_id() {
        let mut q = RequestQueue::new(16);
        q.push(req(0, 0, 1, 10)).unwrap();
        q.push(req(1, 0, 1, 10)).unwrap();
        assert_eq!(q.remove(RequestId::new(0)).unwrap().id, RequestId::new(0));
        assert!(q.remove(RequestId::new(0)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn per_thread_counts_and_bank_sets() {
        let mut q = RequestQueue::new(16);
        q.push(req(0, 0, 1, 1)).unwrap();
        q.push(req(1, 0, 2, 1)).unwrap();
        q.push(req(2, 1, 2, 1)).unwrap();
        assert_eq!(q.count_for_thread(ThreadId::new(0)), 2);
        assert_eq!(q.count_for_thread(ThreadId::new(1)), 1);
        assert_eq!(q.count_for_thread(ThreadId::new(9)), 0);
        assert_eq!(q.banks_with_pending(), vec![BankId::new(1), BankId::new(2)]);
    }
}
