//! The controller's bounded request buffer.
//!
//! Two implementations sit behind one API:
//!
//! * **indexed** (default) — requests are stored in per-bank *lanes*
//!   with incrementally maintained per-thread occupancy counters and a
//!   bank-occupancy bitmask ([`BankSet`]). Every scheduler-facing query
//!   is allocation-free: [`RequestQueue::pending_for_bank`] returns a
//!   borrowed slice, [`RequestQueue::banks_with_pending`] is a bitmask
//!   read, [`RequestQueue::has_pending_for_bank`] and
//!   [`RequestQueue::count_for_thread`] are O(1) counter reads, and
//!   [`RequestQueue::take_for_bank`] is a direct position lookup within
//!   one bank's lane. This mirrors the paper's Table 2 argument that
//!   scheduler state must be cheap incremental hardware counters, not
//!   full-queue scans.
//! * **flat** (`flat-queue` feature) — the pre-refactor reference: one
//!   arrival-ordered `Vec<Request>` scanned (and, for
//!   `pending_for_bank`, re-collected) on every query. Kept only so the
//!   wall-clock benchmark harness (`scripts/bench.sh`) can measure the
//!   indexed hot path against its predecessor; results are
//!   bit-identical between the two.

use std::error::Error;
use std::fmt;
use tcm_types::{BankId, Request, RequestId, ThreadId};

/// Which request-queue implementation this build uses (`"indexed"` by
/// default, `"flat"` under the `flat-queue` feature). Surfaced in the
/// benchmark harness's JSON output.
#[cfg(not(feature = "flat-queue"))]
pub const QUEUE_IMPL: &str = "indexed";
/// Which request-queue implementation this build uses (`"indexed"` by
/// default, `"flat"` under the `flat-queue` feature). Surfaced in the
/// benchmark harness's JSON output.
#[cfg(feature = "flat-queue")]
pub const QUEUE_IMPL: &str = "flat";

/// Error returned when the controller's request buffer is full.
///
/// In the simulator the core model applies backpressure (MSHR and window
/// limits) long before a 128-entry buffer fills at realistic intensities,
/// but the bound is enforced for fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    capacity: usize,
}

impl QueueFullError {
    /// The buffer capacity that was exceeded.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request buffer full (capacity {})", self.capacity)
    }
}

impl Error for QueueFullError {}

/// A set of per-channel bank ids backed by a `u128` bitmask.
///
/// The scheduler's "which banks have pending work" question is answered
/// by handing out one of these: membership tests are single bit
/// operations and [`BankSet::iter`] walks the set bits in ascending
/// bank order with no allocation or sorting (the same ascending order
/// the flat queue produced via sort + dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankSet(u128);

impl BankSet {
    /// Most banks per channel the bitmask can track. The paper baseline
    /// uses 4 and the Table 8 sensitivity sweeps stay far below this.
    pub const MAX_BANKS: usize = 128;

    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// Whether no bank is in the set.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of banks in the set.
    #[inline]
    pub const fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `bank` is in the set.
    #[inline]
    pub fn contains(&self, bank: BankId) -> bool {
        bank.index() < Self::MAX_BANKS && self.0 & (1u128 << bank.index()) != 0
    }

    /// Adds `bank` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is beyond [`BankSet::MAX_BANKS`].
    #[inline]
    pub fn insert(&mut self, bank: BankId) {
        assert!(
            bank.index() < Self::MAX_BANKS,
            "bank {} exceeds BankSet capacity {}",
            bank.index(),
            Self::MAX_BANKS
        );
        self.0 |= 1u128 << bank.index();
    }

    /// Removes `bank` from the set.
    #[inline]
    pub fn remove(&mut self, bank: BankId) {
        if bank.index() < Self::MAX_BANKS {
            self.0 &= !(1u128 << bank.index());
        }
    }

    /// Set difference: the banks in `self` that are not in `other`
    /// (`self & !other`). One mask operation; the schedulability kernel
    /// uses it to strip busy banks from the pending set.
    #[inline]
    pub const fn and_not(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Iterates the set banks in ascending id order.
    #[inline]
    pub fn iter(&self) -> BankSetIter {
        BankSetIter(self.0)
    }
}

impl IntoIterator for BankSet {
    type Item = BankId;
    type IntoIter = BankSetIter;

    fn into_iter(self) -> BankSetIter {
        self.iter()
    }
}

/// Ascending-order iterator over a [`BankSet`] (see [`BankSet::iter`]).
#[derive(Debug, Clone)]
pub struct BankSetIter(u128);

impl Iterator for BankSetIter {
    type Item = BankId;

    #[inline]
    fn next(&mut self) -> Option<BankId> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1; // clear lowest set bit
        Some(BankId::new(bit))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BankSetIter {}

/// A bounded buffer of requests waiting at one memory controller.
///
/// Requests stay in the buffer until a scheduling policy picks them for
/// service; lookups are by *position within a bank's pending set*, which
/// is how scheduling decisions are phrased. See the [module docs](self)
/// for the indexed/flat implementation split.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg(not(feature = "flat-queue"))]
pub struct RequestQueue {
    /// Per-bank lanes, each in arrival order. A request lives in exactly
    /// one lane, so `pending_for_bank` *is* the lane.
    lanes: Vec<Vec<Request>>,
    /// Buffered requests per thread, maintained on push/take/remove;
    /// grows on demand for out-of-range thread ids.
    thread_counts: Vec<u32>,
    /// Banks whose lane is non-empty.
    occupied: BankSet,
    /// Total buffered requests across all lanes.
    len: usize,
    capacity: usize,
}

#[cfg(not(feature = "flat-queue"))]
impl RequestQueue {
    /// Creates an empty buffer with room for `capacity` requests spread
    /// over `num_banks` per-bank lanes.
    ///
    /// Each lane pre-allocates `capacity / num_banks` (rounded up)
    /// entries — the expected occupancy under an even spread — so total
    /// pre-allocation is bounded by `capacity + num_banks` entries
    /// rather than the pathological `num_banks * capacity` a
    /// full-capacity lane reservation would cost. Skewed traffic (e.g.
    /// a streaming thread parked on one bank) grows its lane amortized
    /// up to `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` exceeds [`BankSet::MAX_BANKS`].
    pub fn new(capacity: usize, num_banks: usize) -> Self {
        assert!(
            num_banks <= BankSet::MAX_BANKS,
            "num_banks {num_banks} exceeds BankSet capacity {}",
            BankSet::MAX_BANKS
        );
        let per_lane = capacity.div_ceil(num_banks.max(1)).min(capacity);
        Self {
            lanes: (0..num_banks).map(|_| Vec::with_capacity(per_lane)).collect(),
            thread_counts: Vec::new(),
            occupied: BankSet::empty(),
            len: 0,
            capacity,
        }
    }

    /// Number of buffered requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Buffer capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a request to its bank's lane.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the buffer is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if the request's bank exceeds [`BankSet::MAX_BANKS`].
    pub fn push(&mut self, request: Request) -> Result<(), QueueFullError> {
        if self.is_full() {
            return Err(QueueFullError {
                capacity: self.capacity,
            });
        }
        let bank = request.addr.bank;
        if bank.index() >= self.lanes.len() {
            // Standalone uses may push banks the constructor did not
            // announce; grow (bounded by the BankSet insert below).
            self.lanes.resize_with(bank.index() + 1, Vec::new);
        }
        self.occupied.insert(bank);
        self.bump_thread(request.thread, 1);
        self.lanes[bank.index()].push(request);
        self.len += 1;
        Ok(())
    }

    /// Iterates over all buffered requests, bank-major (each bank's
    /// requests in arrival order; order *across* banks is not the
    /// global arrival order).
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.lanes.iter().flatten()
    }

    /// The requests pending for `bank`, in arrival order, as a borrowed
    /// slice of the bank's lane — no copy, no allocation.
    ///
    /// The slice's positions are the indices expected by
    /// [`RequestQueue::take_for_bank`]. Takes `&mut self` only for
    /// signature parity with the flat reference implementation (which
    /// materializes the answer into internal scratch).
    #[inline]
    pub fn pending_for_bank(&mut self, bank: BankId) -> &[Request] {
        self.lanes.get(bank.index()).map_or(&[], Vec::as_slice)
    }

    /// Whether any request is pending for `bank` (one bit test).
    #[inline]
    pub fn has_pending_for_bank(&self, bank: BankId) -> bool {
        self.occupied.contains(bank)
    }

    /// Removes and returns the `pos`-th pending request for `bank`
    /// (position as in [`RequestQueue::pending_for_bank`]).
    ///
    /// Returns `None` if fewer than `pos + 1` requests are pending for
    /// the bank. The position lookup is O(1); the removal shifts only
    /// the tail of that one bank's lane.
    pub fn take_for_bank(&mut self, bank: BankId, pos: usize) -> Option<Request> {
        let lane = self.lanes.get_mut(bank.index())?;
        if pos >= lane.len() {
            return None;
        }
        let request = lane.remove(pos);
        if lane.is_empty() {
            self.occupied.remove(bank);
        }
        self.bump_thread(request.thread, -1);
        self.len -= 1;
        Some(request)
    }

    /// Removes a request by id, returning it if present.
    pub fn remove(&mut self, id: RequestId) -> Option<Request> {
        for (bank, lane) in self.lanes.iter_mut().enumerate() {
            if let Some(pos) = lane.iter().position(|r| r.id == id) {
                let request = lane.remove(pos);
                if lane.is_empty() {
                    self.occupied.remove(BankId::new(bank));
                }
                self.bump_thread(request.thread, -1);
                self.len -= 1;
                return Some(request);
            }
        }
        None
    }

    /// Number of buffered requests belonging to `thread` (a counter
    /// read, maintained incrementally on push/take/remove).
    #[inline]
    pub fn count_for_thread(&self, thread: ThreadId) -> usize {
        self.thread_counts
            .get(thread.index())
            .map_or(0, |&c| c as usize)
    }

    /// The set of banks with at least one pending request; iterating it
    /// yields ascending bank ids with no sort or allocation.
    #[inline]
    pub fn banks_with_pending(&self) -> BankSet {
        self.occupied
    }

    fn bump_thread(&mut self, thread: ThreadId, delta: i32) {
        let idx = thread.index();
        if idx >= self.thread_counts.len() {
            self.thread_counts.resize(idx + 1, 0);
        }
        let c = &mut self.thread_counts[idx];
        *c = c
            .checked_add_signed(delta)
            .expect("per-thread occupancy counter underflow");
    }
}

/// A bounded buffer of requests waiting at one memory controller —
/// the pre-refactor flat reference implementation (`flat-queue`
/// feature), kept for A/B wall-clock benchmarking. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg(feature = "flat-queue")]
pub struct RequestQueue {
    requests: Vec<Request>,
    capacity: usize,
    /// Holder for the freshly collected `pending_for_bank` answer, so
    /// the flat queue can expose the same borrowed-slice signature as
    /// the indexed one while keeping its original collect-per-call
    /// cost profile.
    scratch: Vec<Request>,
}

#[cfg(feature = "flat-queue")]
impl RequestQueue {
    /// Creates an empty buffer with the given capacity (`num_banks` is
    /// accepted for signature parity with the indexed queue; the flat
    /// layout has no per-bank structure to size).
    pub fn new(capacity: usize, _num_banks: usize) -> Self {
        Self {
            requests: Vec::with_capacity(capacity.min(1024)),
            capacity,
            scratch: Vec::new(),
        }
    }

    /// Number of buffered requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Whether the buffer is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.requests.len() >= self.capacity
    }

    /// Buffer capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the buffer is at capacity.
    pub fn push(&mut self, request: Request) -> Result<(), QueueFullError> {
        if self.is_full() {
            return Err(QueueFullError {
                capacity: self.capacity,
            });
        }
        self.requests.push(request);
        Ok(())
    }

    /// Iterates over all buffered requests (arrival order).
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }

    /// The requests pending for `bank`, in arrival order, collected by
    /// a fresh full-queue scan (the pre-refactor cost profile).
    pub fn pending_for_bank(&mut self, bank: BankId) -> &[Request] {
        self.scratch = self
            .requests
            .iter()
            .filter(|r| r.addr.bank == bank)
            .copied()
            .collect();
        &self.scratch
    }

    /// Whether any request is pending for `bank` (full scan).
    pub fn has_pending_for_bank(&self, bank: BankId) -> bool {
        self.requests.iter().any(|r| r.addr.bank == bank)
    }

    /// Removes and returns the `pos`-th pending request for `bank`
    /// (position as in [`RequestQueue::pending_for_bank`]).
    ///
    /// Returns `None` if fewer than `pos + 1` requests are pending for
    /// the bank.
    pub fn take_for_bank(&mut self, bank: BankId, pos: usize) -> Option<Request> {
        let mut seen = 0usize;
        let mut idx = None;
        for (i, r) in self.requests.iter().enumerate() {
            if r.addr.bank == bank {
                if seen == pos {
                    idx = Some(i);
                    break;
                }
                seen += 1;
            }
        }
        idx.map(|i| self.requests.remove(i))
    }

    /// Removes a request by id, returning it if present.
    pub fn remove(&mut self, id: RequestId) -> Option<Request> {
        let idx = self.requests.iter().position(|r| r.id == id)?;
        Some(self.requests.remove(idx))
    }

    /// Number of buffered requests belonging to `thread` (full scan).
    pub fn count_for_thread(&self, thread: ThreadId) -> usize {
        self.requests.iter().filter(|r| r.thread == thread).count()
    }

    /// The set of banks with at least one pending request, built by a
    /// full scan (the pre-refactor cost profile, minus its sort).
    pub fn banks_with_pending(&self) -> BankSet {
        let mut set = BankSet::empty();
        for r in &self.requests {
            set.insert(r.addr.bank);
        }
        set
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tcm_types::{ChannelId, MemAddress, Row};

    fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            RequestId::new(id),
            ThreadId::new(thread),
            MemAddress::new(ChannelId::new(0), BankId::new(bank), Row::new(row as usize)),
            id,
        )
    }

    #[test]
    fn push_respects_capacity() {
        let mut q = RequestQueue::new(2, 4);
        q.push(req(0, 0, 0, 0)).unwrap();
        q.push(req(1, 0, 0, 0)).unwrap();
        let err = q.push(req(2, 0, 0, 0)).unwrap_err();
        assert_eq!(err.capacity(), 2);
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pending_for_bank_filters_and_preserves_order() {
        let mut q = RequestQueue::new(16, 4);
        q.push(req(0, 0, 1, 10)).unwrap();
        q.push(req(1, 1, 0, 20)).unwrap();
        q.push(req(2, 2, 1, 30)).unwrap();
        let pending = q.pending_for_bank(BankId::new(1));
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].id, RequestId::new(0));
        assert_eq!(pending[1].id, RequestId::new(2));
        assert!(q.has_pending_for_bank(BankId::new(0)));
        assert!(!q.has_pending_for_bank(BankId::new(3)));
    }

    #[test]
    fn take_for_bank_removes_selected_position() {
        let mut q = RequestQueue::new(16, 4);
        q.push(req(0, 0, 1, 10)).unwrap();
        q.push(req(1, 1, 0, 20)).unwrap();
        q.push(req(2, 2, 1, 30)).unwrap();
        let taken = q.take_for_bank(BankId::new(1), 1).unwrap();
        assert_eq!(taken.id, RequestId::new(2));
        assert_eq!(q.len(), 2);
        assert!(q.take_for_bank(BankId::new(1), 1).is_none());
        let taken = q.take_for_bank(BankId::new(1), 0).unwrap();
        assert_eq!(taken.id, RequestId::new(0));
    }

    #[test]
    fn remove_by_id() {
        let mut q = RequestQueue::new(16, 4);
        q.push(req(0, 0, 1, 10)).unwrap();
        q.push(req(1, 0, 1, 10)).unwrap();
        assert_eq!(q.remove(RequestId::new(0)).unwrap().id, RequestId::new(0));
        assert!(q.remove(RequestId::new(0)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.count_for_thread(ThreadId::new(0)), 1);
    }

    #[test]
    fn per_thread_counts_and_bank_sets() {
        let mut q = RequestQueue::new(16, 4);
        q.push(req(0, 0, 1, 1)).unwrap();
        q.push(req(1, 0, 2, 1)).unwrap();
        q.push(req(2, 1, 2, 1)).unwrap();
        assert_eq!(q.count_for_thread(ThreadId::new(0)), 2);
        assert_eq!(q.count_for_thread(ThreadId::new(1)), 1);
        assert_eq!(q.count_for_thread(ThreadId::new(9)), 0);
        assert_eq!(
            q.banks_with_pending().iter().collect::<Vec<_>>(),
            vec![BankId::new(1), BankId::new(2)]
        );
        assert_eq!(q.banks_with_pending().len(), 2);
        assert!(q.banks_with_pending().contains(BankId::new(2)));
        assert!(!q.banks_with_pending().contains(BankId::new(0)));
    }

    #[test]
    fn counts_track_takes_and_removes() {
        let mut q = RequestQueue::new(16, 4);
        for i in 0..6u64 {
            q.push(req(i, (i % 2) as usize, (i % 3) as usize, i)).unwrap();
        }
        assert_eq!(q.count_for_thread(ThreadId::new(0)), 3);
        let taken = q.take_for_bank(BankId::new(0), 0).unwrap();
        assert_eq!(q.count_for_thread(ThreadId::new(taken.thread.index())), 2);
        q.remove(RequestId::new(1)).unwrap();
        assert_eq!(q.count_for_thread(ThreadId::new(1)), 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.iter().count(), 4);
    }

    #[test]
    fn bank_set_iterates_ascending_and_supports_edits() {
        let mut set = BankSet::empty();
        assert!(set.is_empty());
        for b in [5usize, 0, 127, 63] {
            set.insert(BankId::new(b));
        }
        assert_eq!(
            set.iter().map(|b| b.index()).collect::<Vec<_>>(),
            vec![0, 5, 63, 127]
        );
        assert_eq!(set.iter().len(), 4);
        set.remove(BankId::new(5));
        assert!(!set.contains(BankId::new(5)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn draining_every_bank_empties_the_set() {
        let mut q = RequestQueue::new(32, 8);
        for i in 0..12u64 {
            q.push(req(i, 0, (i % 5) as usize, i)).unwrap();
        }
        for bank in q.banks_with_pending() {
            while q.take_for_bank(bank, 0).is_some() {}
        }
        assert!(q.banks_with_pending().is_empty());
        assert!(q.is_empty());
        assert_eq!(q.count_for_thread(ThreadId::new(0)), 0);
    }

    #[test]
    fn config_bank_cap_mirrors_the_bitmask_width() {
        // tcm-types cannot depend on this crate, so it duplicates the
        // bitmask width as MAX_BANKS_PER_CHANNEL; the two must agree.
        assert_eq!(tcm_types::MAX_BANKS_PER_CHANNEL, BankSet::MAX_BANKS);
    }
}
