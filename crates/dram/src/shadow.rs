//! Shadow row-buffers: per-thread, per-bank "what row would be open if
//! this thread ran alone".
//!
//! The paper (Section 3.4) uses a *shadow row-buffer index* per thread per
//! bank to measure a thread's inherent row-buffer locality (RBL) free of
//! interference from other threads: an access counts as a shadow hit when
//! it targets the row that the *same thread's previous access to that
//! bank* opened, regardless of what other threads did to the physical
//! row-buffer in between. STFM uses the same structure to estimate the
//! extra latency caused by row-buffer interference.

use tcm_types::{BankId, Row, ThreadId};

/// Shadow row-buffer state for every `(thread, bank)` pair of one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowRowBuffer {
    banks_per_channel: usize,
    /// `rows[thread * banks_per_channel + bank]`
    rows: Vec<Option<Row>>,
    hits: Vec<u64>,
    accesses: Vec<u64>,
}

impl ShadowRowBuffer {
    /// Creates shadow state for `num_threads` threads over
    /// `banks_per_channel` banks.
    pub fn new(num_threads: usize, banks_per_channel: usize) -> Self {
        let n = num_threads * banks_per_channel;
        Self {
            banks_per_channel,
            rows: vec![None; n],
            hits: vec![0; n],
            accesses: vec![0; n],
        }
    }

    #[inline]
    fn slot(&self, thread: ThreadId, bank: BankId) -> usize {
        thread.index() * self.banks_per_channel + bank.index()
    }

    /// Records an access by `thread` to `(bank, row)` and returns whether
    /// it was a shadow hit (the thread's previous access to this bank
    /// touched the same row).
    pub fn access(&mut self, thread: ThreadId, bank: BankId, row: Row) -> bool {
        let slot = self.slot(thread, bank);
        let hit = self.rows[slot] == Some(row);
        self.rows[slot] = Some(row);
        self.accesses[slot] += 1;
        if hit {
            self.hits[slot] += 1;
        }
        hit
    }

    /// The row `thread`'s shadow row-buffer currently holds for `bank`.
    pub fn shadow_row(&self, thread: ThreadId, bank: BankId) -> Option<Row> {
        self.rows[self.slot(thread, bank)]
    }

    /// `(shadow hits, accesses)` recorded for `thread` across all banks
    /// since the last [`ShadowRowBuffer::reset_counters`].
    pub fn thread_counts(&self, thread: ThreadId) -> (u64, u64) {
        let base = thread.index() * self.banks_per_channel;
        let mut hits = 0;
        let mut accesses = 0;
        for i in 0..self.banks_per_channel {
            hits += self.hits[base + i];
            accesses += self.accesses[base + i];
        }
        (hits, accesses)
    }

    /// Inherent row-buffer locality of `thread` over the counting window:
    /// shadow hits / accesses, or `None` if the thread made no accesses.
    pub fn thread_rbl(&self, thread: ThreadId) -> Option<f64> {
        let (hits, accesses) = self.thread_counts(thread);
        if accesses == 0 {
            None
        } else {
            Some(hits as f64 / accesses as f64)
        }
    }

    /// Clears hit/access counters (start of a new quantum) while keeping
    /// the shadow row indices, mirroring the hardware structure.
    pub fn reset_counters(&mut self) {
        self.hits.iter_mut().for_each(|h| *h = 0);
        self.accesses.iter_mut().for_each(|a| *a = 0);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn shadow_hits_are_per_thread_not_physical() {
        let mut s = ShadowRowBuffer::new(2, 4);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let b = BankId::new(2);

        assert!(!s.access(t0, b, Row::new(5))); // first touch: miss
        assert!(!s.access(t1, b, Row::new(9))); // other thread, own shadow
        assert!(s.access(t0, b, Row::new(5))); // t0 still sees its row
        assert!(s.access(t1, b, Row::new(9)));

        assert_eq!(s.thread_counts(t0), (1, 2));
        assert_eq!(s.thread_rbl(t0), Some(0.5));
    }

    #[test]
    fn rbl_none_without_accesses() {
        let s = ShadowRowBuffer::new(1, 1);
        assert_eq!(s.thread_rbl(ThreadId::new(0)), None);
    }

    #[test]
    fn counters_reset_but_rows_persist() {
        let mut s = ShadowRowBuffer::new(1, 2);
        let t = ThreadId::new(0);
        s.access(t, BankId::new(0), Row::new(3));
        s.access(t, BankId::new(0), Row::new(3));
        s.reset_counters();
        assert_eq!(s.thread_counts(t), (0, 0));
        assert_eq!(s.shadow_row(t, BankId::new(0)), Some(Row::new(3)));
        // Hit streak continues across the quantum boundary.
        assert!(s.access(t, BankId::new(0), Row::new(3)));
    }

    #[test]
    fn different_banks_have_independent_shadows() {
        let mut s = ShadowRowBuffer::new(1, 2);
        let t = ThreadId::new(0);
        s.access(t, BankId::new(0), Row::new(1));
        assert!(!s.access(t, BankId::new(1), Row::new(1)));
        assert_eq!(s.shadow_row(t, BankId::new(0)), Some(Row::new(1)));
        assert_eq!(s.shadow_row(t, BankId::new(1)), Some(Row::new(1)));
    }
}
